//===- MatrixOps.cpp - Bulk matrix kernels ---------------------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "interp/MatrixOps.h"

#include <algorithm>
#include <cmath>

using namespace mvec;

namespace {

double applyScalarOp(BinaryOp Op, double A, double B, OpError &Err) {
  switch (Op) {
  case BinaryOp::Add:
    return A + B;
  case BinaryOp::Sub:
    return A - B;
  case BinaryOp::Mul:
  case BinaryOp::DotMul:
    return A * B;
  case BinaryOp::Div:
  case BinaryOp::DotDiv:
    return A / B; // MATLAB yields Inf/NaN on division by zero.
  case BinaryOp::Pow:
  case BinaryOp::DotPow:
    return std::pow(A, B);
  case BinaryOp::Lt:
    return A < B ? 1.0 : 0.0;
  case BinaryOp::Gt:
    return A > B ? 1.0 : 0.0;
  case BinaryOp::Le:
    return A <= B ? 1.0 : 0.0;
  case BinaryOp::Ge:
    return A >= B ? 1.0 : 0.0;
  case BinaryOp::Eq:
    return A == B ? 1.0 : 0.0;
  case BinaryOp::Ne:
    return A != B ? 1.0 : 0.0;
  case BinaryOp::And:
    return (A != 0.0 && B != 0.0) ? 1.0 : 0.0;
  case BinaryOp::Or:
    return (A != 0.0 || B != 0.0) ? 1.0 : 0.0;
  case BinaryOp::AndAnd:
  case BinaryOp::OrOr:
    Err.set("short-circuit operators require scalar operands");
    return 0.0;
  }
  return 0.0;
}

} // namespace

namespace {

/// Comparisons and elementwise logic produce MATLAB logical values.
bool producesLogical(BinaryOp Op) {
  return isElementwiseRelOp(Op);
}

} // namespace

Value mvec::elementwiseBinary(BinaryOp Op, const Value &A, const Value &B,
                              OpError &Err) {
  if (A.isScalar() && !B.isScalar()) {
    Value Result(B.rows(), B.cols());
    double S = A.scalarValue();
    const std::vector<double> &BD = B.data();
    std::vector<double> &RD = Result.data();
    for (size_t I = 0, E = BD.size(); I != E; ++I)
      RD[I] = applyScalarOp(Op, S, BD[I], Err);
    Result.setLogical(producesLogical(Op));
    return Result;
  }
  if (B.isScalar() && !A.isScalar()) {
    Value Result(A.rows(), A.cols());
    double S = B.scalarValue();
    const std::vector<double> &AD = A.data();
    std::vector<double> &RD = Result.data();
    for (size_t I = 0, E = AD.size(); I != E; ++I)
      RD[I] = applyScalarOp(Op, AD[I], S, Err);
    Result.setLogical(producesLogical(Op));
    return Result;
  }
  if (A.rows() != B.rows() || A.cols() != B.cols()) {
    Err.set("matrix dimensions must agree (" + std::to_string(A.rows()) +
            "x" + std::to_string(A.cols()) + " vs " +
            std::to_string(B.rows()) + "x" + std::to_string(B.cols()) + ")");
    return Value();
  }
  Value Result(A.rows(), A.cols());
  const std::vector<double> &AD = A.data();
  const std::vector<double> &BD = B.data();
  std::vector<double> &RD = Result.data();
  for (size_t I = 0, E = AD.size(); I != E; ++I)
    RD[I] = applyScalarOp(Op, AD[I], BD[I], Err);
  Result.setLogical(producesLogical(Op));
  return Result;
}

Value mvec::matMul(const Value &A, const Value &B, OpError &Err) {
  if (A.cols() != B.rows()) {
    Err.set("inner matrix dimensions must agree (" +
            std::to_string(A.rows()) + "x" + std::to_string(A.cols()) +
            " * " + std::to_string(B.rows()) + "x" + std::to_string(B.cols()) +
            ")");
    return Value();
  }
  size_t M = A.rows(), K = A.cols(), N = B.cols();
  Value Result(M, N);
  const double *AD = A.data().data();
  const double *BD = B.data().data();
  double *RD = Result.data().data();
  // Column-major jki loop order keeps the inner loop unit-stride.
  for (size_t J = 0; J != N; ++J) {
    double *RCol = RD + J * M;
    for (size_t P = 0; P != K; ++P) {
      double BV = BD[J * K + P];
      if (BV == 0.0)
        continue;
      const double *ACol = AD + P * M;
      for (size_t I = 0; I != M; ++I)
        RCol[I] += ACol[I] * BV;
    }
  }
  return Result;
}

Value mvec::mulOp(const Value &A, const Value &B, OpError &Err) {
  if (A.isScalar() || B.isScalar())
    return elementwiseBinary(BinaryOp::DotMul, A, B, Err);
  return matMul(A, B, Err);
}

Value mvec::divOp(const Value &A, const Value &B, OpError &Err) {
  if (B.isScalar())
    return elementwiseBinary(BinaryOp::DotDiv, A, B, Err);
  Err.set("matrix right division is only supported with a scalar divisor");
  return Value();
}

Value mvec::powOp(const Value &A, const Value &B, OpError &Err) {
  if (A.isScalar() && B.isScalar())
    return Value::scalar(std::pow(A.scalarValue(), B.scalarValue()));
  if (B.isScalar()) {
    double E = B.scalarValue();
    if (A.rows() != A.cols()) {
      Err.set("matrix power requires a square matrix");
      return Value();
    }
    if (E != std::floor(E) || E < 0) {
      Err.set("matrix power supports nonnegative integer exponents only");
      return Value();
    }
    // Identity.
    Value Result(A.rows(), A.cols());
    for (size_t I = 0; I != A.rows(); ++I)
      Result.at(I, I) = 1.0;
    Value Base = A;
    auto Exp = static_cast<unsigned long long>(E);
    while (Exp != 0 && !Err.failed()) {
      if (Exp & 1)
        Result = matMul(Result, Base, Err);
      Exp >>= 1;
      if (Exp)
        Base = matMul(Base, Base, Err);
    }
    return Result;
  }
  Err.set("unsupported '^' operand shapes");
  return Value();
}

Value mvec::unaryMinus(const Value &A) {
  Value Result(A.rows(), A.cols());
  for (size_t I = 0, E = A.numel(); I != E; ++I)
    Result.linear(I) = -A.linear(I);
  return Result;
}

Value mvec::unaryNot(const Value &A) {
  Value Result(A.rows(), A.cols());
  for (size_t I = 0, E = A.numel(); I != E; ++I)
    Result.linear(I) = A.linear(I) == 0.0 ? 1.0 : 0.0;
  Result.setLogical(true);
  return Result;
}

Value mvec::makeRange(double Start, double Step, double Stop, OpError &Err) {
  if (Step == 0.0) {
    Err.set("range step must be nonzero");
    return Value();
  }
  if (!std::isfinite(Start) || !std::isfinite(Step) ||
      !std::isfinite(Stop)) {
    // A NaN/Inf count would be cast to size_t below, which is undefined
    // behavior, not merely a huge allocation.
    Err.set("range endpoints must be finite");
    return Value();
  }
  double CountF = std::floor((Stop - Start) / Step + 1e-10) + 1.0;
  if (CountF < 1.0)
    return Value(1, 0); // empty row
  if (CountF > 1e9) {
    Err.set("range is too large");
    return Value();
  }
  auto Count = static_cast<size_t>(CountF);
  Value Result(1, Count);
  for (size_t I = 0; I != Count; ++I)
    Result.linear(I) = Start + static_cast<double>(I) * Step;
  return Result;
}

Value mvec::horzcat(const Value &A, const Value &B, OpError &Err) {
  if (A.isEmpty())
    return B;
  if (B.isEmpty())
    return A;
  if (A.rows() != B.rows()) {
    Err.set("horizontal concatenation requires equal row counts");
    return Value();
  }
  Value Result(A.rows(), A.cols() + B.cols());
  std::copy(A.data().begin(), A.data().end(), Result.data().begin());
  std::copy(B.data().begin(), B.data().end(),
            Result.data().begin() + static_cast<long>(A.numel()));
  return Result;
}

Value mvec::vertcat(const Value &A, const Value &B, OpError &Err) {
  if (A.isEmpty())
    return B;
  if (B.isEmpty())
    return A;
  if (A.cols() != B.cols()) {
    Err.set("vertical concatenation requires equal column counts");
    return Value();
  }
  Value Result(A.rows() + B.rows(), A.cols());
  for (size_t C = 0; C != A.cols(); ++C) {
    for (size_t R = 0; R != A.rows(); ++R)
      Result.at(R, C) = A.at(R, C);
    for (size_t R = 0; R != B.rows(); ++R)
      Result.at(A.rows() + R, C) = B.at(R, C);
  }
  return Result;
}

Value mvec::sumAlong(const Value &A, unsigned Dim) {
  if (A.isEmpty())
    return Dim == 1 ? Value(1, A.cols(), 0.0) : Value(A.rows(), 1, 0.0);
  if (Dim == 1) {
    Value Result(1, A.cols());
    for (size_t C = 0; C != A.cols(); ++C) {
      double Acc = 0;
      for (size_t R = 0; R != A.rows(); ++R)
        Acc += A.at(R, C);
      Result.at(0, C) = Acc;
    }
    return Result;
  }
  Value Result(A.rows(), 1);
  for (size_t R = 0; R != A.rows(); ++R) {
    double Acc = 0;
    for (size_t C = 0; C != A.cols(); ++C)
      Acc += A.at(R, C);
    Result.at(R, 0) = Acc;
  }
  return Result;
}

Value mvec::sumDefault(const Value &A) {
  if (A.isVector()) {
    double Acc = 0;
    for (double D : A.data())
      Acc += D;
    return Value::scalar(Acc);
  }
  return sumAlong(A, 1);
}

Value mvec::cumsumAlong(const Value &A, unsigned Dim) {
  Value Result(A.rows(), A.cols());
  if (Dim == 1) {
    for (size_t C = 0; C != A.cols(); ++C) {
      double Acc = 0;
      for (size_t R = 0; R != A.rows(); ++R) {
        Acc += A.at(R, C);
        Result.at(R, C) = Acc;
      }
    }
    return Result;
  }
  for (size_t R = 0; R != A.rows(); ++R) {
    double Acc = 0;
    for (size_t C = 0; C != A.cols(); ++C) {
      Acc += A.at(R, C);
      Result.at(R, C) = Acc;
    }
  }
  return Result;
}

Value mvec::cumsumDefault(const Value &A) {
  if (A.isRow())
    return cumsumAlong(A, 2);
  return cumsumAlong(A, 1);
}

Value mvec::prodDefault(const Value &A) {
  if (A.isVector()) {
    double Acc = 1;
    for (double D : A.data())
      Acc *= D;
    return Value::scalar(Acc);
  }
  Value Result(1, A.cols());
  for (size_t C = 0; C != A.cols(); ++C) {
    double Acc = 1;
    for (size_t R = 0; R != A.rows(); ++R)
      Acc *= A.at(R, C);
    Result.at(0, C) = Acc;
  }
  return Result;
}

Value mvec::repmat(const Value &A, size_t R, size_t C) {
  Value Result(A.rows() * R, A.cols() * C);
  for (size_t BC = 0; BC != C; ++BC)
    for (size_t BR = 0; BR != R; ++BR)
      for (size_t AC = 0; AC != A.cols(); ++AC)
        for (size_t AR = 0; AR != A.rows(); ++AR)
          Result.at(BR * A.rows() + AR, BC * A.cols() + AC) = A.at(AR, AC);
  return Result;
}

Value mvec::histCounts(const Value &X, const Value &Centers, OpError &Err) {
  if (!Centers.isVector() || Centers.isEmpty()) {
    Err.set("hist requires a nonempty vector of bin centers");
    return Value();
  }
  size_t NumBins = Centers.numel();
  Value Counts(1, NumBins);
  // Edges midway between consecutive centers; the outer bins catch
  // everything beyond (MATLAB hist semantics).
  for (double Sample : X.data()) {
    if (std::isnan(Sample))
      continue;
    size_t Bin = 0;
    while (Bin + 1 < NumBins) {
      double Edge =
          0.5 * (Centers.linear(Bin) + Centers.linear(Bin + 1));
      if (Sample < Edge)
        break;
      ++Bin;
    }
    Counts.linear(Bin) += 1.0;
  }
  return Counts;
}
