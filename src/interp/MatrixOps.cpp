//===- MatrixOps.cpp - Bulk matrix kernels ---------------------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "interp/MatrixOps.h"

#include "interp/simd/SimdDispatch.h"
#include "resilience/ResourceGovernor.h"

#include <algorithm>
#include <cmath>

using namespace mvec;

namespace {
// Shorthand for the relaxed dispatch-counter bumps at each kernel call
// site (one bump per kernel invocation, not per element).
inline void countDispatch(std::atomic<uint64_t> &C) {
  C.fetch_add(1, std::memory_order_relaxed);
}
} // namespace

namespace {
/// Elements of kernel arithmetic between poll-hook checks. Small enough
/// that a deadline lands within tens of microseconds even on a slow
/// machine, large enough that the poll is free on the profiles the
/// benchmarks measure.
constexpr size_t PollGrainElems = 32768;
} // namespace

//===----------------------------------------------------------------------===//
// OpWorkspace
//===----------------------------------------------------------------------===//

std::shared_ptr<PayloadBuffer> OpWorkspace::acquire(size_t N) {
  // Budget accounting is cumulative-by-design: pooled reuse charges the
  // same as a fresh allocation, so a job's measured footprint does not
  // depend on what earlier jobs left in the pool.
  chargeMemory(N * sizeof(double));
  if (!Free.empty()) {
    std::shared_ptr<PayloadBuffer> Buf = std::move(Free.back());
    Free.pop_back();
    Buf->resize(N);
    return Buf;
  }
  return std::make_shared<PayloadBuffer>(N);
}

std::shared_ptr<PayloadBuffer> OpWorkspace::acquireZeroed(size_t N) {
  std::shared_ptr<PayloadBuffer> Buf = acquire(N);
  std::fill(Buf->begin(), Buf->end(), 0.0);
  return Buf;
}

void OpWorkspace::recycle(Value &&V) {
  recycleBuffer(V.releaseBuffer());
}

void OpWorkspace::recycleBuffer(std::shared_ptr<PayloadBuffer> Buf) {
  if (Buf && Buf.use_count() == 1 && Free.size() < MaxPooled)
    Free.push_back(std::move(Buf));
}

namespace {

/// Destination value of the given shape with unspecified contents.
Value makeDest(OpWorkspace *WS, size_t R, size_t C) {
  if (WS && R * C > 1)
    return Value::adoptBuffer(WS->acquire(R * C), R, C);
  return Value(R, C);
}

/// Destination value of the given shape, zero-filled.
Value makeDestZeroed(OpWorkspace *WS, size_t R, size_t C) {
  if (WS && R * C > 1)
    return Value::adoptBuffer(WS->acquireZeroed(R * C), R, C);
  return Value(R, C);
}

double applyScalarOp(BinaryOp Op, double A, double B, OpError &Err) {
  switch (Op) {
  case BinaryOp::Add:
    return A + B;
  case BinaryOp::Sub:
    return A - B;
  case BinaryOp::Mul:
  case BinaryOp::DotMul:
    return A * B;
  case BinaryOp::Div:
  case BinaryOp::DotDiv:
    return A / B; // MATLAB yields Inf/NaN on division by zero.
  case BinaryOp::Pow:
  case BinaryOp::DotPow:
    return std::pow(A, B);
  case BinaryOp::Lt:
    return A < B ? 1.0 : 0.0;
  case BinaryOp::Gt:
    return A > B ? 1.0 : 0.0;
  case BinaryOp::Le:
    return A <= B ? 1.0 : 0.0;
  case BinaryOp::Ge:
    return A >= B ? 1.0 : 0.0;
  case BinaryOp::Eq:
    return A == B ? 1.0 : 0.0;
  case BinaryOp::Ne:
    return A != B ? 1.0 : 0.0;
  case BinaryOp::And:
    return (A != 0.0 && B != 0.0) ? 1.0 : 0.0;
  case BinaryOp::Or:
    return (A != 0.0 || B != 0.0) ? 1.0 : 0.0;
  case BinaryOp::AndAnd:
  case BinaryOp::OrOr:
    Err.set("short-circuit operators require scalar operands");
    return 0.0;
  }
  return 0.0;
}

/// Comparisons and elementwise logic produce MATLAB logical values.
bool producesLogical(BinaryOp Op) {
  return isElementwiseRelOp(Op);
}

/// Routes the elementwise loop to the runtime-dispatched SIMD kernel
/// table (simd::kernels()) for the operators with vector forms; Pow and
/// the short-circuit pseudo-ops keep the scalar fallback loop.
/// \p SA / \p SB are operand strides: 0 replays a scalar, 1 walks a matrix.
void ewLoop(BinaryOp Op, const double *AD, size_t SA, const double *BD,
            size_t SB, double *RD, size_t N, OpError &Err) {
  const simd::KernelTable &K = simd::kernels();
  simd::DispatchCounters &Counters = simd::dispatchCounters();
  switch (Op) {
  case BinaryOp::Add:
    countDispatch(Counters.Elementwise);
    K.EwAdd(AD, SA, BD, SB, RD, N);
    return;
  case BinaryOp::Sub:
    countDispatch(Counters.Elementwise);
    K.EwSub(AD, SA, BD, SB, RD, N);
    return;
  case BinaryOp::Mul:
  case BinaryOp::DotMul:
    countDispatch(Counters.Elementwise);
    K.EwMul(AD, SA, BD, SB, RD, N);
    return;
  case BinaryOp::Div:
  case BinaryOp::DotDiv:
    countDispatch(Counters.Elementwise);
    K.EwDiv(AD, SA, BD, SB, RD, N);
    return;
  case BinaryOp::Lt:
  case BinaryOp::Gt:
  case BinaryOp::Le:
  case BinaryOp::Ge:
  case BinaryOp::Eq:
  case BinaryOp::Ne:
  case BinaryOp::And:
  case BinaryOp::Or: {
    simd::CmpPred Pred;
    switch (Op) {
    case BinaryOp::Lt:
      Pred = simd::CmpPred::Lt;
      break;
    case BinaryOp::Gt:
      Pred = simd::CmpPred::Gt;
      break;
    case BinaryOp::Le:
      Pred = simd::CmpPred::Le;
      break;
    case BinaryOp::Ge:
      Pred = simd::CmpPred::Ge;
      break;
    case BinaryOp::Eq:
      Pred = simd::CmpPred::Eq;
      break;
    case BinaryOp::Ne:
      Pred = simd::CmpPred::Ne;
      break;
    case BinaryOp::And:
      Pred = simd::CmpPred::And;
      break;
    default:
      Pred = simd::CmpPred::Or;
      break;
    }
    countDispatch(Counters.Compare);
    K.EwCmp(Pred, AD, SA, BD, SB, RD, N);
    return;
  }
  default:
    for (size_t I = 0; I != N; ++I)
      RD[I] = applyScalarOp(Op, AD[I * SA], BD[I * SB], Err);
    return;
  }
}

} // namespace

Value mvec::elementwiseBinary(BinaryOp Op, const Value &A, const Value &B,
                              OpError &Err, OpWorkspace *WS) {
  size_t SA = 1, SB = 1;
  size_t R, C;
  if (A.isScalar() && !B.isScalar()) {
    SA = 0;
    R = B.rows();
    C = B.cols();
  } else if (B.isScalar() && !A.isScalar()) {
    SB = 0;
    R = A.rows();
    C = A.cols();
  } else if (A.rows() == B.rows() && A.cols() == B.cols()) {
    R = A.rows();
    C = A.cols();
  } else {
    Err.set("matrix dimensions must agree (" + std::to_string(A.rows()) +
            "x" + std::to_string(A.cols()) + " vs " +
            std::to_string(B.rows()) + "x" + std::to_string(B.cols()) + ")");
    return Value();
  }
  Value Result = makeDest(WS, R, C);
  ewLoop(Op, A.raw(), SA, B.raw(), SB, Result.mutableRaw(), R * C, Err);
  Result.setLogical(producesLogical(Op));
  return Result;
}

bool mvec::fusableMulAddShapes(const Value &A, const Value &B,
                               const Value &C) {
  // Step 1: T = A .* B must conform.
  size_t TR, TC;
  if (A.isScalar()) {
    TR = B.rows();
    TC = B.cols();
  } else if (B.isScalar()) {
    TR = A.rows();
    TC = A.cols();
  } else if (A.rows() == B.rows() && A.cols() == B.cols()) {
    TR = A.rows();
    TC = A.cols();
  } else {
    return false;
  }
  // Step 2: T +/- C must conform.
  bool TScalar = TR == 1 && TC == 1;
  return TScalar || C.isScalar() || (C.rows() == TR && C.cols() == TC);
}

Value mvec::fusedMulAdd(const Value &A, const Value &B, const Value &C,
                        bool Subtract, bool ProductOnLeft, OpWorkspace *WS) {
  size_t SA = A.isScalar() ? 0 : 1;
  size_t SB = B.isScalar() ? 0 : 1;
  size_t SC = C.isScalar() ? 0 : 1;
  // Result shape: the widest operand (fusableMulAddShapes guarantees all
  // non-scalars agree).
  size_t R = 1, Cn = 1;
  for (const Value *V : {&A, &B, &C})
    if (!V->isScalar()) {
      R = V->rows();
      Cn = V->cols();
      break;
    }
  Value Result = makeDest(WS, R, Cn);
  const double *AD = A.raw(), *BD = B.raw(), *CD = C.raw();
  double *RD = Result.mutableRaw();
  size_t N = R * Cn;
  simd::FmaMode Mode = !Subtract        ? simd::FmaMode::MulAdd
                       : ProductOnLeft  ? simd::FmaMode::MulSub
                                        : simd::FmaMode::RevSub;
  const simd::KernelTable &K = simd::kernels();
  countDispatch(simd::dispatchCounters().FusedMulAdd);
  // The deadline poll stays here, between bounded chunks, so resilience
  // behavior is identical on every dispatch level; the kernel leaf itself
  // never polls or allocates.
  for (size_t I0 = 0; I0 < N; I0 += PollGrainElems) {
    if (I0 != 0 && WS && WS->poll())
      break;
    size_t I1 = std::min(I0 + PollGrainElems, N);
    K.FusedMulAdd(Mode, AD + I0 * SA, SA, BD + I0 * SB, SB, CD + I0 * SC, SC,
                  RD + I0, I1 - I0);
  }
  return Result;
}

namespace {

/// C += A * B on raw column-major payloads, blocked over the inner
/// dimension so a panel of A stays cache-resident across all columns of
/// the result. Per output element the accumulation order over P is still
/// strictly ascending — identical results to the naive jki loop.
void matMulCore(const double *AD, const double *BD, double *RD, size_t M,
                size_t K, size_t N, OpWorkspace *WS) {
  constexpr size_t PBlock = 128;
  // Column tile matching the SIMD micro-kernel's register blocking (4
  // result columns held in accumulators across a P panel).
  constexpr size_t JTile = 4;
  const simd::KernelTable &Kern = simd::kernels();
  countDispatch(simd::dispatchCounters().MatMul);
  // Accumulated multiply-adds since the last interrupt poll; an O(M*K*N)
  // product can run for seconds, far past any deadline, without this. The
  // poll lives here between tile calls — never inside the kernel leaf —
  // so every dispatch level has identical resilience behavior.
  size_t SincePoll = 0;
  for (size_t P0 = 0; P0 < K; P0 += PBlock) {
    size_t P1 = std::min(P0 + PBlock, K);
    for (size_t J0 = 0; J0 < N; J0 += JTile) {
      size_t J1 = std::min(J0 + JTile, N);
      if (SincePoll >= PollGrainElems) {
        SincePoll = 0;
        if (WS && WS->poll())
          return;
      }
      SincePoll += (P1 - P0) * M * (J1 - J0);
      Kern.MatMulTile(AD, BD, RD, M, K, P0, P1, J0, J1);
    }
  }
}

} // namespace

Value mvec::matMul(const Value &A, const Value &B, OpError &Err,
                   OpWorkspace *WS) {
  if (A.cols() != B.rows()) {
    Err.set("inner matrix dimensions must agree (" +
            std::to_string(A.rows()) + "x" + std::to_string(A.cols()) +
            " * " + std::to_string(B.rows()) + "x" + std::to_string(B.cols()) +
            ")");
    return Value();
  }
  size_t M = A.rows(), K = A.cols(), N = B.cols();
  Value Result = makeDestZeroed(WS, M, N);
  if (M * N != 0)
    matMulCore(A.raw(), B.raw(), Result.mutableRaw(), M, K, N, WS);
  return Result;
}

Value mvec::matMulTransB(const Value &A, const Value &B, OpError &Err,
                         OpWorkspace *WS) {
  if (A.cols() != B.cols()) {
    Err.set("inner matrix dimensions must agree (" +
            std::to_string(A.rows()) + "x" + std::to_string(A.cols()) +
            " * " + std::to_string(B.cols()) + "x" + std::to_string(B.rows()) +
            ")");
    return Value();
  }
  size_t M = A.rows(), K = A.cols(), N = B.rows();
  Value Result = makeDestZeroed(WS, M, N);
  if (M * N == 0)
    return Result;
  // Pack B' (K x N, column-major) into scratch, then run the blocked
  // kernel. The packed copy is what makes the inner loop unit-stride; the
  // scratch comes from (and returns to) the pool, so no Value temporary is
  // allocated for the transpose.
  std::shared_ptr<PayloadBuffer> Scratch;
  std::vector<double> Local;
  double *BT;
  if (WS) {
    Scratch = WS->acquire(K * N);
    BT = Scratch->data();
  } else {
    Local.resize(K * N);
    BT = Local.data();
  }
  const double *BD = B.raw();
  for (size_t P = 0; P != K; ++P)
    for (size_t J = 0; J != N; ++J)
      BT[J * K + P] = BD[P * N + J];
  matMulCore(A.raw(), BT, Result.mutableRaw(), M, K, N, WS);
  if (Scratch)
    WS->recycleBuffer(std::move(Scratch));
  return Result;
}

Value mvec::mulOp(const Value &A, const Value &B, OpError &Err,
                  OpWorkspace *WS) {
  if (A.isScalar() || B.isScalar())
    return elementwiseBinary(BinaryOp::DotMul, A, B, Err, WS);
  return matMul(A, B, Err, WS);
}

Value mvec::divOp(const Value &A, const Value &B, OpError &Err,
                  OpWorkspace *WS) {
  if (B.isScalar())
    return elementwiseBinary(BinaryOp::DotDiv, A, B, Err, WS);
  Err.set("matrix right division is only supported with a scalar divisor");
  return Value();
}

Value mvec::powOp(const Value &A, const Value &B, OpError &Err) {
  if (A.isScalar() && B.isScalar())
    return Value::scalar(std::pow(A.scalarValue(), B.scalarValue()));
  if (B.isScalar()) {
    double E = B.scalarValue();
    if (A.rows() != A.cols()) {
      Err.set("matrix power requires a square matrix");
      return Value();
    }
    if (E != std::floor(E) || E < 0) {
      Err.set("matrix power supports nonnegative integer exponents only");
      return Value();
    }
    // Identity.
    Value Result(A.rows(), A.cols());
    for (size_t I = 0; I != A.rows(); ++I)
      Result.at(I, I) = 1.0;
    Value Base = A;
    auto Exp = static_cast<unsigned long long>(E);
    while (Exp != 0 && !Err.failed()) {
      if (Exp & 1)
        Result = matMul(Result, Base, Err);
      Exp >>= 1;
      if (Exp)
        Base = matMul(Base, Base, Err);
    }
    return Result;
  }
  Err.set("unsupported '^' operand shapes");
  return Value();
}

Value mvec::unaryMinus(const Value &A, OpWorkspace *WS) {
  Value Result = makeDest(WS, A.rows(), A.cols());
  countDispatch(simd::dispatchCounters().Unary);
  simd::kernels().UnaryNeg(A.raw(), Result.mutableRaw(), A.numel());
  return Result;
}

Value mvec::unaryNot(const Value &A, OpWorkspace *WS) {
  Value Result = makeDest(WS, A.rows(), A.cols());
  countDispatch(simd::dispatchCounters().Unary);
  simd::kernels().UnaryNot(A.raw(), Result.mutableRaw(), A.numel());
  Result.setLogical(true);
  return Result;
}

Value mvec::makeRange(double Start, double Step, double Stop, OpError &Err) {
  if (Step == 0.0) {
    Err.set("range step must be nonzero");
    return Value();
  }
  if (!std::isfinite(Start) || !std::isfinite(Step) ||
      !std::isfinite(Stop)) {
    // A NaN/Inf count would be cast to size_t below, which is undefined
    // behavior, not merely a huge allocation.
    Err.set("range endpoints must be finite");
    return Value();
  }
  double CountF = std::floor((Stop - Start) / Step + 1e-10) + 1.0;
  if (CountF < 1.0)
    return Value(1, 0); // empty row
  if (CountF > 1e9) {
    Err.set("range is too large");
    return Value();
  }
  auto Count = static_cast<size_t>(CountF);
  Value Result(1, Count);
  double *RD = Result.mutableRaw();
  for (size_t I = 0; I != Count; ++I)
    RD[I] = Start + static_cast<double>(I) * Step;
  return Result;
}

Value mvec::horzcat(const Value &A, const Value &B, OpError &Err) {
  if (A.isEmpty())
    return B;
  if (B.isEmpty())
    return A;
  if (A.rows() != B.rows()) {
    Err.set("horizontal concatenation requires equal row counts");
    return Value();
  }
  Value Result(A.rows(), A.cols() + B.cols());
  double *RD = Result.mutableRaw();
  std::copy(A.begin(), A.end(), RD);
  std::copy(B.begin(), B.end(), RD + A.numel());
  return Result;
}

Value mvec::vertcat(const Value &A, const Value &B, OpError &Err) {
  if (A.isEmpty())
    return B;
  if (B.isEmpty())
    return A;
  if (A.cols() != B.cols()) {
    Err.set("vertical concatenation requires equal column counts");
    return Value();
  }
  Value Result(A.rows() + B.rows(), A.cols());
  for (size_t C = 0; C != A.cols(); ++C) {
    for (size_t R = 0; R != A.rows(); ++R)
      Result.at(R, C) = A.at(R, C);
    for (size_t R = 0; R != B.rows(); ++R)
      Result.at(A.rows() + R, C) = B.at(R, C);
  }
  return Result;
}

Value mvec::sumAlong(const Value &A, unsigned Dim) {
  if (A.isEmpty())
    return Dim == 1 ? Value(1, A.cols(), 0.0) : Value(A.rows(), 1, 0.0);
  countDispatch(simd::dispatchCounters().Reduce);
  if (Dim == 1) {
    Value Result(1, A.cols());
    simd::kernels().ColSums(A.raw(), A.rows(), A.cols(), Result.mutableRaw());
    return Result;
  }
  Value Result(A.rows(), 1);
  simd::kernels().RowSums(A.raw(), A.rows(), A.cols(), Result.mutableRaw());
  return Result;
}

Value mvec::sumDefault(const Value &A) {
  if (A.isVector()) {
    double Acc = 0;
    for (double D : A)
      Acc += D;
    return Value::scalar(Acc);
  }
  return sumAlong(A, 1);
}

Value mvec::cumsumAlong(const Value &A, unsigned Dim) {
  Value Result(A.rows(), A.cols());
  if (A.isEmpty())
    return Result;
  countDispatch(simd::dispatchCounters().Cumsum);
  if (Dim == 1)
    simd::kernels().CumsumDim1(A.raw(), A.rows(), A.cols(),
                               Result.mutableRaw());
  else
    simd::kernels().CumsumDim2(A.raw(), A.rows(), A.cols(),
                               Result.mutableRaw());
  return Result;
}

Value mvec::cumsumDefault(const Value &A) {
  if (A.isRow())
    return cumsumAlong(A, 2);
  return cumsumAlong(A, 1);
}

Value mvec::prodDefault(const Value &A) {
  if (A.isVector()) {
    double Acc = 1;
    for (double D : A)
      Acc *= D;
    return Value::scalar(Acc);
  }
  if (A.isEmpty())
    return Value(1, A.cols(), 1.0);
  countDispatch(simd::dispatchCounters().Reduce);
  Value Result(1, A.cols());
  simd::kernels().ColProds(A.raw(), A.rows(), A.cols(), Result.mutableRaw());
  return Result;
}

Value mvec::repmat(const Value &A, size_t R, size_t C) {
  Value Result(A.rows() * R, A.cols() * C);
  for (size_t BC = 0; BC != C; ++BC)
    for (size_t BR = 0; BR != R; ++BR)
      for (size_t AC = 0; AC != A.cols(); ++AC)
        for (size_t AR = 0; AR != A.rows(); ++AR)
          Result.at(BR * A.rows() + AR, BC * A.cols() + AC) = A.at(AR, AC);
  return Result;
}

Value mvec::histCounts(const Value &X, const Value &Centers, OpError &Err) {
  if (!Centers.isVector() || Centers.isEmpty()) {
    Err.set("hist requires a nonempty vector of bin centers");
    return Value();
  }
  size_t NumBins = Centers.numel();
  Value Counts(1, NumBins);
  // Edges midway between consecutive centers; the outer bins catch
  // everything beyond (MATLAB hist semantics).
  for (double Sample : X) {
    if (std::isnan(Sample))
      continue;
    size_t Bin = 0;
    while (Bin + 1 < NumBins) {
      double Edge =
          0.5 * (Centers.linear(Bin) + Centers.linear(Bin + 1));
      if (Sample < Edge)
        break;
      ++Bin;
    }
    Counts.linear(Bin) += 1.0;
  }
  return Counts;
}
