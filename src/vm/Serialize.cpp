//===- Serialize.cpp - Bytecode (de)serialization and disassembly ---------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "vm/Serialize.h"

#include "frontend/AST.h"
#include "support/ContentHash.h"

#include <cstdio>
#include <cstring>

using namespace mvec;
using namespace mvec::vm;

//===----------------------------------------------------------------------===//
// Cache key
//===----------------------------------------------------------------------===//

uint64_t vm::codeKeyFor(const std::string &Source) {
  return fnv1aMix(kBytecodeFormatVersion, fnv1aHash(Source));
}

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

namespace {

constexpr char kMagic[4] = {'M', 'V', 'B', 'C'};

// Size sanity caps: far above anything the compiler produces, low enough
// that a corrupt length field cannot drive a giant allocation.
constexpr uint32_t kMaxPoolEntries = 1u << 22;
constexpr uint32_t kMaxStringBytes = 1u << 20;
constexpr uint32_t kMaxRegs = 1u << 20;

void putU32(std::string &Out, uint32_t V) {
  for (int I = 0; I != 4; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xFF));
}

void putU64(std::string &Out, uint64_t V) {
  for (int I = 0; I != 8; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xFF));
}

void putI32(std::string &Out, int32_t V) { putU32(Out, static_cast<uint32_t>(V)); }

void putStr(std::string &Out, const std::string &S) {
  putU32(Out, static_cast<uint32_t>(S.size()));
  Out.append(S);
}

struct Reader {
  const std::string &Bytes;
  size_t Pos = 0;
  bool Ok = true;

  bool take(void *Dst, size_t N) {
    if (!Ok || Bytes.size() - Pos < N) {
      Ok = false;
      return false;
    }
    std::memcpy(Dst, Bytes.data() + Pos, N);
    Pos += N;
    return true;
  }

  uint32_t u32() {
    unsigned char B[4] = {};
    take(B, 4);
    return static_cast<uint32_t>(B[0]) | (static_cast<uint32_t>(B[1]) << 8) |
           (static_cast<uint32_t>(B[2]) << 16) |
           (static_cast<uint32_t>(B[3]) << 24);
  }

  uint64_t u64() {
    uint64_t Lo = u32(), Hi = u32();
    return Lo | (Hi << 32);
  }

  int32_t i32() { return static_cast<int32_t>(u32()); }

  uint8_t u8() {
    unsigned char B = 0;
    take(&B, 1);
    return B;
  }

  std::string str() {
    uint32_t N = u32();
    if (!Ok || N > kMaxStringBytes || Bytes.size() - Pos < N) {
      Ok = false;
      return std::string();
    }
    std::string S(Bytes.data() + Pos, N);
    Pos += N;
    return S;
  }
};

} // namespace

std::string vm::serializeProgram(const CompiledProgram &P) {
  std::string Out;
  Out.append(kMagic, sizeof(kMagic));
  putU32(Out, kBytecodeFormatVersion);
  putU64(Out, P.SourceHash);
  putU32(Out, static_cast<uint32_t>(P.Constants.size()));
  for (double C : P.Constants) {
    uint64_t Bits;
    std::memcpy(&Bits, &C, sizeof(Bits));
    putU64(Out, Bits);
  }
  putU32(Out, static_cast<uint32_t>(P.Strings.size()));
  for (const std::string &S : P.Strings)
    putStr(Out, S);
  putU32(Out, static_cast<uint32_t>(P.VarNames.size()));
  for (const std::string &S : P.VarNames)
    putStr(Out, S);
  putU32(Out, static_cast<uint32_t>(P.ForInfos.size()));
  for (const ForInfo &FI : P.ForInfos) {
    putI32(Out, FI.IdxVar);
    putU32(Out, static_cast<uint32_t>(FI.HintVars.size()));
    for (int32_t H : FI.HintVars)
      putI32(Out, H);
  }
  putU32(Out, P.NumRegs);
  putU32(Out, static_cast<uint32_t>(P.Instrs.size()));
  for (const Instr &I : P.Instrs) {
    Out.push_back(static_cast<char>(I.Opcode));
    Out.push_back(static_cast<char>(I.Flags));
    putI32(Out, I.A);
    putI32(Out, I.B);
    putI32(Out, I.C);
    putI32(Out, I.D);
    putU32(Out, I.Loc.Line);
    putU32(Out, I.Loc.Col);
    putU32(Out, I.Loc2.Line);
    putU32(Out, I.Loc2.Col);
  }
  return Out;
}

std::optional<CompiledProgram> vm::deserializeProgram(const std::string &Bytes) {
  Reader R{Bytes};
  char Magic[4] = {};
  if (!R.take(Magic, 4) || std::memcmp(Magic, kMagic, 4) != 0)
    return std::nullopt;
  if (R.u32() != kBytecodeFormatVersion)
    return std::nullopt;

  CompiledProgram P;
  P.SourceHash = R.u64();

  uint32_t NumConsts = R.u32();
  if (!R.Ok || NumConsts > kMaxPoolEntries)
    return std::nullopt;
  P.Constants.reserve(NumConsts);
  for (uint32_t I = 0; I != NumConsts && R.Ok; ++I) {
    uint64_t Bits = R.u64();
    double D;
    std::memcpy(&D, &Bits, sizeof(D));
    P.Constants.push_back(D);
  }

  uint32_t NumStrings = R.u32();
  if (!R.Ok || NumStrings > kMaxPoolEntries)
    return std::nullopt;
  for (uint32_t I = 0; I != NumStrings && R.Ok; ++I)
    P.Strings.push_back(R.str());

  uint32_t NumVars = R.u32();
  if (!R.Ok || NumVars > kMaxPoolEntries)
    return std::nullopt;
  for (uint32_t I = 0; I != NumVars && R.Ok; ++I)
    P.VarNames.push_back(R.str());

  uint32_t NumFors = R.u32();
  if (!R.Ok || NumFors > kMaxPoolEntries)
    return std::nullopt;
  for (uint32_t I = 0; I != NumFors && R.Ok; ++I) {
    ForInfo FI;
    FI.IdxVar = R.i32();
    uint32_t NumHints = R.u32();
    if (!R.Ok || NumHints > kMaxPoolEntries)
      return std::nullopt;
    for (uint32_t H = 0; H != NumHints && R.Ok; ++H)
      FI.HintVars.push_back(R.i32());
    P.ForInfos.push_back(std::move(FI));
  }

  P.NumRegs = R.u32();
  uint32_t NumInstrs = R.u32();
  if (!R.Ok || P.NumRegs > kMaxRegs || NumInstrs > kMaxPoolEntries)
    return std::nullopt;
  P.Instrs.reserve(NumInstrs);
  for (uint32_t I = 0; I != NumInstrs && R.Ok; ++I) {
    Instr In;
    uint8_t OpByte = R.u8();
    if (OpByte >= kNumOps)
      return std::nullopt;
    In.Opcode = static_cast<Op>(OpByte);
    In.Flags = R.u8();
    In.A = R.i32();
    In.B = R.i32();
    In.C = R.i32();
    In.D = R.i32();
    In.Loc.Line = R.u32();
    In.Loc.Col = R.u32();
    In.Loc2.Line = R.u32();
    In.Loc2.Col = R.u32();
    P.Instrs.push_back(In);
  }

  if (!R.Ok || R.Pos != Bytes.size())
    return std::nullopt;
  if (!validateProgram(P).empty())
    return std::nullopt;
  return P;
}

//===----------------------------------------------------------------------===//
// Validation
//===----------------------------------------------------------------------===//

namespace {

bool validOperand(const CompiledProgram &P, OperandClass Cls, int32_t V,
                  uint8_t Flags) {
  switch (Cls) {
  case OperandClass::None:
    return true; // unused fields carry whatever the compiler left (zero)
  case OperandClass::Reg:
    return V >= 0 && static_cast<uint32_t>(V) < P.NumRegs;
  case OperandClass::Var:
    return V >= 0 && static_cast<size_t>(V) < P.VarNames.size();
  case OperandClass::Const:
    return V >= 0 && static_cast<size_t>(V) < P.Constants.size();
  case OperandClass::Str:
    return V >= 0 && static_cast<size_t>(V) < P.Strings.size();
  case OperandClass::Target:
    return V >= 0 && static_cast<size_t>(V) < P.Instrs.size();
  case OperandClass::ForIdx:
    return V >= 0 && static_cast<size_t>(V) < P.ForInfos.size();
  case OperandClass::Count:
    return V >= 0;
  case OperandClass::BaseRC:
    if (Flags & flags::BaseIsSlot)
      return V >= 0 && static_cast<size_t>(V) < P.VarNames.size();
    return V >= 0 && static_cast<uint32_t>(V) < P.NumRegs;
  case OperandClass::DstRS:
    if (Flags & flags::StoreToSlot)
      return V >= 0 && static_cast<size_t>(V) < P.VarNames.size();
    return V >= 0 && static_cast<uint32_t>(V) < P.NumRegs;
  case OperandClass::Src:
    if (V >= 0)
      return static_cast<uint32_t>(V) < P.NumRegs;
    if (V == kNoOperand)
      return false;
    return foldedIsConst(V)
               ? static_cast<size_t>(foldedIndex(V)) < P.Constants.size()
               : static_cast<size_t>(foldedIndex(V)) < P.VarNames.size();
  case OperandClass::OptSrc:
    return V == kNoOperand || validOperand(P, OperandClass::Src, V, Flags);
  }
  return false;
}

bool validFlags(Op O, uint8_t F) {
  switch (O) {
  case Op::JumpIfTrue:
  case Op::JumpIfFalse:
    return F <= flags::Release;
  case Op::CmpJump: {
    BinaryOp B = static_cast<BinaryOp>(F);
    return B == BinaryOp::Lt || B == BinaryOp::Gt || B == BinaryOp::Le ||
           B == BinaryOp::Ge || B == BinaryOp::Eq || B == BinaryOp::Ne;
  }
  case Op::Binary:
    return (F & ~flags::StoreToSlot) <= static_cast<uint8_t>(BinaryOp::OrOr);
  case Op::FusedMulAdd:
    return (F & ~flags::StoreToSlot) <=
           (flags::FmaSubtract | flags::FmaProductOnLeft | flags::FmaDotMul);
  case Op::LoadExtent:
  case Op::MakeColon:
    return (F & flags::DimMask) != flags::DimMask &&
           F <= (flags::DimMask | flags::BaseIsSlot);
  case Op::IndexReadAll:
  case Op::IndexRead1:
  case Op::IndexRead2:
    return (F & ~flags::BaseIsSlot) == 0;
  case Op::CallBuiltin:
    return true; // flags carry the argument-scratch depth
  default:
    return F == 0;
  }
}

} // namespace

std::string vm::validateProgram(const CompiledProgram &P) {
  if (P.Instrs.empty())
    return "empty instruction stream";
  if (P.Instrs.back().Opcode != Op::Halt)
    return "missing trailing Halt";
  for (size_t I = 0, E = P.Instrs.size(); I != E; ++I) {
    const Instr &In = P.Instrs[I];
    const OpInfo &Info = opInfo(In.Opcode);
    std::string Where =
        "instr " + std::to_string(I) + " (" + std::string(Info.Name) + "): ";
    if (!validFlags(In.Opcode, In.Flags))
      return Where + "bad flags";
    if (!validOperand(P, Info.A, In.A, In.Flags))
      return Where + "bad operand A";
    if (!validOperand(P, Info.B, In.B, In.Flags))
      return Where + "bad operand B";
    if (!validOperand(P, Info.C, In.C, In.Flags))
      return Where + "bad operand C";
    if (!validOperand(P, Info.D, In.D, In.Flags))
      return Where + "bad operand D";
    if (In.Opcode == Op::CallBuiltin &&
        (In.D < 0 ||
         static_cast<uint64_t>(In.C) + static_cast<uint64_t>(In.D) > P.NumRegs))
      return Where + "argument window out of range";
    if (In.Opcode == Op::ForNext || In.Opcode == Op::ForPrep) {
      const ForInfo &FI = P.ForInfos[In.B];
      if (FI.IdxVar < 0 || static_cast<size_t>(FI.IdxVar) >= P.VarNames.size())
        return Where + "bad loop variable";
      for (int32_t H : FI.HintVars)
        if (H < 0 || static_cast<size_t>(H) >= P.VarNames.size())
          return Where + "bad hint variable";
    }
  }
  return std::string();
}

//===----------------------------------------------------------------------===//
// Disassembly
//===----------------------------------------------------------------------===//

namespace {

const char *binaryOpName(uint8_t F) {
  static const char *Names[] = {"Add", "Sub",    "Mul",    "Div",  "Pow",
                                "DotMul", "DotDiv", "DotPow", "Lt",   "Gt",
                                "Le",  "Ge",     "Eq",     "Ne",   "And",
                                "Or",  "AndAnd", "OrOr"};
  return F < sizeof(Names) / sizeof(Names[0]) ? Names[F] : "?";
}

const char *dimName(uint8_t F) {
  switch (F & flags::DimMask) {
  case flags::DimRows:
    return "rows";
  case flags::DimCols:
    return "cols";
  default:
    return "numel";
  }
}

void renderOperand(std::string &Out, const CompiledProgram &P,
                   OperandClass Cls, int32_t V, uint8_t Flags, bool &First) {
  if (Cls == OperandClass::None)
    return;
  Out += First ? " " : ", ";
  First = false;
  switch (Cls) {
  case OperandClass::Reg:
    Out += "r" + std::to_string(V);
    break;
  case OperandClass::Src:
  case OperandClass::OptSrc:
    if (V == kNoOperand) {
      Out += "one";
    } else if (V >= 0) {
      Out += "r" + std::to_string(V);
    } else if (foldedIsConst(V)) {
      char Buf[40];
      std::snprintf(Buf, sizeof(Buf), "%.17g", P.Constants[foldedIndex(V)]);
      Out += "c" + std::to_string(foldedIndex(V)) + "=" + Buf;
    } else {
      Out += "v" + std::to_string(foldedIndex(V)) + ":" +
             P.VarNames[foldedIndex(V)];
    }
    break;
  case OperandClass::Var:
    Out += "v" + std::to_string(V) + ":" + P.VarNames[V];
    break;
  case OperandClass::Const: {
    char Buf[40];
    std::snprintf(Buf, sizeof(Buf), "%.17g", P.Constants[V]);
    Out += "c" + std::to_string(V) + "=" + Buf;
    break;
  }
  case OperandClass::Str:
    Out += "s" + std::to_string(V) + "=\"" + P.Strings[V] + "\"";
    break;
  case OperandClass::Target:
    Out += "->" + std::to_string(V);
    break;
  case OperandClass::ForIdx:
    Out += "f" + std::to_string(V) + ":" + P.VarNames[P.ForInfos[V].IdxVar];
    break;
  case OperandClass::Count:
    Out += "#" + std::to_string(V);
    break;
  case OperandClass::BaseRC:
    if (Flags & flags::BaseIsSlot)
      Out += "v" + std::to_string(V) + ":" + P.VarNames[V];
    else
      Out += "r" + std::to_string(V);
    break;
  case OperandClass::DstRS:
    if (Flags & flags::StoreToSlot)
      Out += "v" + std::to_string(V) + ":" + P.VarNames[V];
    else
      Out += "r" + std::to_string(V);
    break;
  case OperandClass::None:
    break;
  }
}

} // namespace

std::string vm::disassemble(const CompiledProgram &P) {
  std::string Out;
  Out += "; regs=" + std::to_string(P.NumRegs) +
         " consts=" + std::to_string(P.Constants.size()) +
         " strings=" + std::to_string(P.Strings.size()) +
         " vars=" + std::to_string(P.VarNames.size()) +
         " loops=" + std::to_string(P.ForInfos.size()) +
         " instrs=" + std::to_string(P.Instrs.size()) + "\n";
  for (size_t I = 0, E = P.Instrs.size(); I != E; ++I) {
    const Instr &In = P.Instrs[I];
    const OpInfo &Info = opInfo(In.Opcode);
    char Head[32];
    std::snprintf(Head, sizeof(Head), "%4zu  %-13s", I, Info.Name);
    Out += Head;
    bool First = true;
    renderOperand(Out, P, Info.A, In.A, In.Flags, First);
    renderOperand(Out, P, Info.B, In.B, In.Flags, First);
    renderOperand(Out, P, Info.C, In.C, In.Flags, First);
    renderOperand(Out, P, Info.D, In.D, In.Flags, First);
    switch (In.Opcode) {
    case Op::Binary:
    case Op::CmpJump:
      Out += " [";
      Out += binaryOpName(In.Flags & ~flags::StoreToSlot);
      if (In.Flags & flags::StoreToSlot)
        Out += ",store";
      Out += "]";
      break;
    case Op::FusedMulAdd:
      Out += " [";
      Out += (In.Flags & flags::FmaSubtract) ? "sub" : "add";
      Out += (In.Flags & flags::FmaProductOnLeft) ? ",prod-left" : ",prod-right";
      if (In.Flags & flags::FmaDotMul)
        Out += ",dotmul";
      if (In.Flags & flags::StoreToSlot)
        Out += ",store";
      Out += "]";
      break;
    case Op::LoadExtent:
    case Op::MakeColon:
      Out += " [";
      Out += dimName(In.Flags);
      Out += "]";
      break;
    case Op::JumpIfTrue:
    case Op::JumpIfFalse:
      if (In.Flags & flags::Release)
        Out += " [release]";
      break;
    case Op::CallBuiltin:
      if (In.Flags)
        Out += " [depth=" + std::to_string(In.Flags) + "]";
      break;
    default:
      break;
    }
    if (In.Loc.isValid())
      Out += " @" + std::to_string(In.Loc.Line) + ":" +
             std::to_string(In.Loc.Col);
    if (In.Loc2.isValid())
      Out += " /@" + std::to_string(In.Loc2.Line) + ":" +
             std::to_string(In.Loc2.Col);
    Out += "\n";
  }
  return Out;
}
