//===- Compiler.h - AST -> bytecode lowering --------------------*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a parsed program to vm bytecode. The lowering is total: every
/// program that parses compiles, with statically detectable runtime errors
/// (':' outside a subscript, N-d indexing, ...) lowered to Fail
/// instructions carrying the exact message and location the tree-walker
/// would produce. Compilation is deterministic — same source, same bytes —
/// which is what lets the CodeCache content-address compiled programs by
/// source hash alone.
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_VM_COMPILER_H
#define MVEC_VM_COMPILER_H

#include "frontend/AST.h"
#include "vm/Bytecode.h"

#include <string>

namespace mvec {
namespace vm {

/// Lowers \p P to bytecode. \p Source is the text \p P was parsed from;
/// it is hashed into CompiledProgram::SourceHash for cache addressing.
CompiledProgram compileProgram(const Program &P, const std::string &Source);

} // namespace vm
} // namespace mvec

#endif // MVEC_VM_COMPILER_H
