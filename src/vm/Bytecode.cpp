//===- Bytecode.cpp - Operand metadata table ------------------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "vm/Bytecode.h"

namespace mvec {
namespace vm {

static const OpInfo OpTable[kNumOps] = {
    // clang-format off
    {"Halt",          OperandClass::None,   OperandClass::None,   OperandClass::None,   OperandClass::None},
    {"Step",          OperandClass::None,   OperandClass::None,   OperandClass::None,   OperandClass::None},
    {"Drop",          OperandClass::Reg,    OperandClass::None,   OperandClass::None,   OperandClass::None},
    {"LoadConst",     OperandClass::Reg,    OperandClass::Const,  OperandClass::None,   OperandClass::None},
    {"LoadEmpty",     OperandClass::Reg,    OperandClass::None,   OperandClass::None,   OperandClass::None},
    {"LoadString",    OperandClass::Reg,    OperandClass::Str,    OperandClass::None,   OperandClass::None},
    {"LoadIdent",     OperandClass::Reg,    OperandClass::Var,    OperandClass::None,   OperandClass::None},
    {"StoreVar",      OperandClass::Var,    OperandClass::Src,    OperandClass::None,   OperandClass::None},
    {"Move",          OperandClass::Reg,    OperandClass::Reg,    OperandClass::None,   OperandClass::None},
    {"Jump",          OperandClass::Target, OperandClass::None,   OperandClass::None,   OperandClass::None},
    {"JumpIfTrue",    OperandClass::Reg,    OperandClass::Target, OperandClass::None,   OperandClass::None},
    {"JumpIfFalse",   OperandClass::Reg,    OperandClass::Target, OperandClass::None,   OperandClass::None},
    {"CastBool",      OperandClass::Reg,    OperandClass::None,   OperandClass::None,   OperandClass::None},
    {"CmpJump",       OperandClass::Src,    OperandClass::Src,    OperandClass::Target, OperandClass::None},
    {"MakeRange",     OperandClass::Reg,    OperandClass::Src,    OperandClass::OptSrc, OperandClass::Src},
    {"UnaryMinus",    OperandClass::Reg,    OperandClass::Reg,    OperandClass::None,   OperandClass::None},
    {"UnaryNot",      OperandClass::Reg,    OperandClass::Reg,    OperandClass::None,   OperandClass::None},
    {"Transpose",     OperandClass::Reg,    OperandClass::Reg,    OperandClass::None,   OperandClass::None},
    {"Binary",        OperandClass::DstRS,  OperandClass::Src,    OperandClass::Src,    OperandClass::None},
    {"FusedMulAdd",   OperandClass::DstRS,  OperandClass::Src,    OperandClass::Src,    OperandClass::Src},
    {"MulTransB",     OperandClass::Reg,    OperandClass::Reg,    OperandClass::Reg,    OperandClass::None},
    {"LoadExtent",    OperandClass::Reg,    OperandClass::BaseRC, OperandClass::None,   OperandClass::None},
    {"MakeColon",     OperandClass::Reg,    OperandClass::BaseRC, OperandClass::None,   OperandClass::None},
    {"TestDefined",   OperandClass::Var,    OperandClass::Target, OperandClass::None,   OperandClass::None},
    {"CheckCallable", OperandClass::Var,    OperandClass::Str,    OperandClass::None,   OperandClass::None},
    {"CallBuiltin",   OperandClass::Reg,    OperandClass::Var,    OperandClass::Reg,    OperandClass::Count},
    {"Fail",          OperandClass::Str,    OperandClass::None,   OperandClass::None,   OperandClass::None},
    {"IndexRead0",    OperandClass::Reg,    OperandClass::Var,    OperandClass::None,   OperandClass::None},
    {"IndexReadAll",  OperandClass::Reg,    OperandClass::BaseRC, OperandClass::None,   OperandClass::None},
    {"IndexRead1",    OperandClass::Reg,    OperandClass::BaseRC, OperandClass::Src,    OperandClass::None},
    {"IndexRead2",    OperandClass::Reg,    OperandClass::BaseRC, OperandClass::Src,    OperandClass::Src},
    {"DefineRef",     OperandClass::Var,    OperandClass::None,   OperandClass::None,   OperandClass::None},
    {"IndexWriteAll", OperandClass::Var,    OperandClass::Src,    OperandClass::None,   OperandClass::None},
    {"IndexWrite1",   OperandClass::Var,    OperandClass::Src,    OperandClass::Src,    OperandClass::None},
    {"IndexWrite2",   OperandClass::Var,    OperandClass::Src,    OperandClass::Src,    OperandClass::Src},
    {"MatBegin",      OperandClass::None,   OperandClass::None,   OperandClass::None,   OperandClass::None},
    {"HorzCat",       OperandClass::Reg,    OperandClass::Reg,    OperandClass::None,   OperandClass::None},
    {"VertCat",       OperandClass::Reg,    OperandClass::Reg,    OperandClass::None,   OperandClass::None},
    {"MatEnd",        OperandClass::Reg,    OperandClass::None,   OperandClass::None,   OperandClass::None},
    {"ForPrep",       OperandClass::Reg,    OperandClass::ForIdx, OperandClass::None,   OperandClass::None},
    {"ForNext",       OperandClass::Reg,    OperandClass::ForIdx, OperandClass::Target, OperandClass::None},
    {"ForBreak",      OperandClass::Target, OperandClass::None,   OperandClass::None,   OperandClass::None},
    // clang-format on
};

const OpInfo &opInfo(Op Opcode) { return OpTable[static_cast<uint8_t>(Opcode)]; }

} // namespace vm
} // namespace mvec
