//===- Serialize.h - Bytecode (de)serialization and disassembly -*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Flat little-endian serialization of CompiledProgram, the cache-key
/// derivation that addresses compiled programs, and a textual
/// disassembler for tests and diagnostics. Deserialization performs full
/// structural validation (operand ranges, jump targets, pool indices):
/// anything that does not prove out is a nullopt — the CodeCache treats
/// it as a miss and re-lowers, mirroring how the daemon's DiskStore
/// treats torn result entries.
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_VM_SERIALIZE_H
#define MVEC_VM_SERIALIZE_H

#include "vm/Bytecode.h"

#include <optional>
#include <string>

namespace mvec {
namespace vm {

/// Bumped whenever the serialized layout or opcode numbering changes.
/// Part of the cache key, so stale persisted programs from an older
/// format version can never be loaded — they simply miss.
constexpr uint32_t kBytecodeFormatVersion = 3;

/// The content-address of the compiled form of \p Source: the source
/// hash mixed with the format version. Pure function of the source text,
/// so cache lookups don't need to lower first.
uint64_t codeKeyFor(const std::string &Source);

/// Serializes \p P ("MVBC" magic, version, pools, instructions). The
/// encoding is deterministic: equal programs produce equal bytes.
std::string serializeProgram(const CompiledProgram &P);

/// Parses and validates serialized bytes. Returns nullopt on any
/// malformation — wrong magic/version, truncation, trailing garbage, or
/// an instruction whose operands fail validateProgram.
std::optional<CompiledProgram> deserializeProgram(const std::string &Bytes);

/// Structural validation: every operand index in range for its class,
/// jump targets inside the instruction stream, flags meaningful for
/// their opcode. Returns an empty string when valid, else a diagnostic.
std::string validateProgram(const CompiledProgram &P);

/// Human-readable listing, one instruction per line — stable output,
/// pinned by golden tests.
std::string disassemble(const CompiledProgram &P);

} // namespace vm
} // namespace mvec

#endif // MVEC_VM_SERIALIZE_H
