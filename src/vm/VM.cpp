//===- VM.cpp - Bytecode dispatch loop ------------------------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Every case below is a verbatim transliteration of one step of the
// tree-walker, calling the same Interpreter engine-support primitives the
// walker itself runs on. Where the walker holds a temporary and recycles
// it into the kernel pool, the VM recycles the operand register; where the
// walker lets a value destruct un-pooled (loop conditions, concatenation
// elements, range operands), the VM clears the register instead. Keeping
// that distinction is what makes buffer-pool behavior — and therefore
// allocation order and governor accounting — identical across engines.
//
// Two speed mechanisms, neither observable:
//
//   Unboxed scalar registers. A plain (non-logical) 1x1 value lives as a
//   raw double in Sca[] with IsSca[] set; Regs[] holds the boxed Value
//   only when an op actually needs one. Scalar Values carry no heap
//   buffer — recycling one is a no-op and constructing one charges
//   nothing — so this changes representation, not behavior. Logical
//   scalars (comparison results) stay boxed so mask-indexing semantics
//   survive; the scalar fast paths below mirror applyBinary's scalar
//   cases and applyFusedMulAdd's all-scalar case bit-for-bit.
//
//   Threaded dispatch. With GNU extensions, each handler jumps straight
//   to the next opcode's handler (computed goto), and handlers that
//   provably cannot enter the failed state skip the per-instruction
//   failure check (VM_NEXT_NOFAIL). A portable switch fallback keeps the
//   exact same handler bodies via the VM_CASE/VM_NEXT macros.
//
// Scope discipline for threaded mode: computed goto does NOT run
// destructors when it jumps out of a scope (unlike plain goto), so any
// handler local with a nontrivial destructor must be dead — destroyed by
// an inner scope or moved-from — before VM_NEXT()/VM_NEXT_NOFAIL() runs.
// Handlers that materialize Values therefore do their work inside a
// nested block and dispatch after it closes.
//
//===----------------------------------------------------------------------===//

#include "vm/VM.h"

#include "interp/Builtins.h"
#include "interp/Interpreter.h"
#include "interp/MatrixOps.h"
#include "interp/Workspace.h"

#include <algorithm>
#include <cmath>

using namespace mvec;
using namespace mvec::vm;

namespace {

/// Per-execution binding of a VarNames entry to the host workspace, with
/// the same variable -> pi -> builtin resolution prepare() caches.
struct BoundVar {
  unsigned Slot = 0;
  BuiltinId Builtin = InvalidBuiltinId;
  bool IsPi = false;
};

/// Runtime state of one active for loop. IdxSlot and the range register
/// are resolved once at ForPrep so each ForNext iteration touches only
/// this frame.
struct ForFrame {
  int32_t RangeReg = 0;
  unsigned IdxSlot = 0;
  size_t Col = 0;
  size_t NumIters = 0;
  size_t HintsBefore = 0;
};

const std::vector<Value> &noArgs() {
  static const std::vector<Value> Empty;
  return Empty;
}

/// A 1x1 logical Value (comparison / logical-op result). Free of heap
/// allocation, same as Interpreter::applyBinary's scalar path builds.
Value logicalScalar(bool V) {
  Value R = Value::scalar(V ? 1.0 : 0.0);
  R.setLogical(true);
  return R;
}

} // namespace

#if defined(MVEC_VM_FORCE_PORTABLE)
#define MVEC_VM_THREADED 0 // test hook: exercise the switch dispatcher
#elif defined(__GNUC__) || defined(__clang__)
#define MVEC_VM_THREADED 1
#else
#define MVEC_VM_THREADED 0
#endif

#if MVEC_VM_THREADED
// Threaded mode: VM_CASE opens a label, VM_NEXT re-dispatches directly.
// The failed() check runs only after handlers that can fail — a handler
// that never calls fail()/stmtStep leaves the flag exactly as the
// previous check saw it.
#define VM_CASE(name) Lbl_##name
#define VM_DISPATCH()                                                          \
  do {                                                                         \
    IP = NextIP;                                                               \
    In = &P.Instrs[IP];                                                        \
    NextIP = IP + 1;                                                           \
    goto *Table[static_cast<uint8_t>(In->Opcode)];                             \
  } while (0)
#define VM_NEXT()                                                              \
  do {                                                                         \
    if (Host.failed())                                                         \
      goto Lbl_Stop;                                                           \
    VM_DISPATCH();                                                             \
  } while (0)
#define VM_NEXT_NOFAIL() VM_DISPATCH()
#else
// Portable mode: plain switch in a loop; the postlude always checks.
#define VM_CASE(name) case Op::name
#define VM_NEXT() break
#define VM_NEXT_NOFAIL() break
#endif

bool vm::execute(const CompiledProgram &P, Interpreter &Host) {
  Workspace &Env = Host.env();
  OpWorkspace &Pool = Host.pool();

  std::vector<BoundVar> Bound;
  Bound.reserve(P.VarNames.size());
  for (const std::string &Name : P.VarNames) {
    BoundVar V;
    V.Slot = Env.intern(Name);
    V.Builtin = builtinIdFor(Name);
    V.IsPi = (Name == "pi");
    Bound.push_back(V);
  }

  std::vector<Value> Regs(P.NumRegs);
  std::vector<double> Sca(P.NumRegs, 0.0);
  std::vector<uint8_t> IsSca(P.NumRegs, 0);
  std::vector<ForFrame> Frames;
  std::vector<OpError> MatErrs;
  // Mirrors the walker's ArgPool: one scratch vector per syntactic
  // call-nesting depth, each holding its last call's arguments until the
  // next call at that depth — argument lifetimes (and the memory the
  // governor sees charged) match the walker's.
  std::vector<std::vector<Value>> ArgPool;

  // Invariant: IsSca[R] implies Regs[R] is empty. box() materializes the
  // Value form; setSca/setVal overwrite a register in either form.
  auto box = [&](int32_t R) -> Value & {
    if (IsSca[R]) {
      IsSca[R] = 0;
      Regs[R] = Value::scalar(Sca[R]);
    }
    return Regs[R];
  };
  auto setSca = [&](int32_t R, double V) {
    if (!IsSca[R]) {
      IsSca[R] = 1;
      Regs[R] = Value();
    }
    Sca[R] = V;
  };
  auto setVal = [&](int32_t R, Value V) {
    IsSca[R] = 0;
    Regs[R] = std::move(V);
  };
  // Releases a register whose value would simply destruct in the walker
  // (a scalar's "recycle" is also a destruct: it has no buffer to pool).
  auto clearReg = [&](int32_t R) {
    if (IsSca[R])
      IsSca[R] = 0;
    else
      Regs[R] = Value();
  };
  auto isScalarReg = [&](int32_t R) {
    return IsSca[R] || Regs[R].isScalar();
  };
  auto scalarOf = [&](int32_t R) {
    return IsSca[R] ? Sca[R] : Regs[R].scalarValue();
  };
  // Src-operand accessors (register >= 0, folded slot/const < 0; see
  // Bytecode.h). srcSca reads the operand as a raw double when it is any
  // 1x1 value — the exact trigger of applyBinary's scalar fast path,
  // logical scalars included. srcScaPlain additionally requires
  // non-logical (subscript fast paths, where a logical 1x1 selects by
  // mask instead). srcLoad materializes the operand as a Value for the
  // generic kernels: registers move out (then get recycled by the
  // caller, as the walker recycles its operand temporaries), folded
  // sources build the same COW copy / fresh scalar the elided
  // LoadIdent/LoadConst would have built.
  auto srcSca = [&](int32_t X, double &Out) -> bool {
    if (X >= 0) {
      if (IsSca[X]) {
        Out = Sca[X];
        return true;
      }
      const Value &V = Regs[X];
      if (!V.isScalar())
        return false;
      Out = V.scalarValue();
      return true;
    }
    if (foldedIsConst(X)) {
      Out = P.Constants[foldedIndex(X)];
      return true;
    }
    const BoundVar &BV = Bound[foldedIndex(X)];
    if (!Env.isDefined(BV.Slot))
      return false; // malformed bytecode; the generic path reports it
    const Value &V = Env.slotValue(BV.Slot);
    if (!V.isScalar())
      return false;
    Out = V.scalarValue();
    return true;
  };
  auto srcScaPlain = [&](int32_t X, double &Out) -> bool {
    if (X >= 0 && IsSca[X]) {
      Out = Sca[X];
      return true;
    }
    if (X < 0 && foldedIsConst(X)) {
      Out = P.Constants[foldedIndex(X)];
      return true;
    }
    const Value *V;
    if (X >= 0) {
      V = &Regs[X];
    } else {
      const BoundVar &BV = Bound[foldedIndex(X)];
      if (!Env.isDefined(BV.Slot))
        return false;
      V = &Env.slotValue(BV.Slot);
    }
    if (!V->isScalar() || V->isLogical())
      return false;
    Out = V->scalarValue();
    return true;
  };
  auto srcLoad = [&](int32_t X, SourceLoc Loc) -> Value {
    if (X >= 0) {
      if (IsSca[X]) {
        IsSca[X] = 0;
        return Value::scalar(Sca[X]);
      }
      return std::move(Regs[X]);
    }
    if (foldedIsConst(X))
      return Value::scalar(P.Constants[foldedIndex(X)]);
    const BoundVar &BV = Bound[foldedIndex(X)];
    if (Env.isDefined(BV.Slot))
      return Env.slotValue(BV.Slot);
    // The compiler folds only proven-defined names; this tail exists so
    // hand-crafted bytecode still behaves like the LoadIdent it elides.
    if (BV.IsPi)
      return Value::scalar(3.14159265358979323846);
    if (BV.Builtin != InvalidBuiltinId)
      return callBuiltin(Host, BV.Builtin, noArgs(), Loc);
    Host.fail(Loc, "undefined variable '" + P.VarNames[foldedIndex(X)] + "'");
    return Value();
  };
  // Releases the register behind a Src operand after a scalar fast path
  // consumed it (folded sources occupy no register).
  auto clearSrc = [&](int32_t X) {
    if (X >= 0)
      clearReg(X);
  };

  Host.engineBegin();

  auto internalFail = [&](SourceLoc Loc) {
    Host.fail(Loc, "internal error: malformed bytecode");
  };

  size_t IP = 0;
  size_t NextIP = 1;
  const Instr *In = &P.Instrs[0];
  // The enclosing statement's location, maintained by Step. Fused stores
  // (flags::StoreToSlot) run their shape-cap check against it — the same
  // loc the StoreVar they replace carried, since the compiler emits Step
  // and StoreVar with the identical statement loc.
  SourceLoc CurStmt;
  try {
#if MVEC_VM_THREADED
    // Label-address table; order must match the Op enum exactly.
    static const void *Table[] = {
        &&Lbl_Halt,        &&Lbl_Step,        &&Lbl_Drop,
        &&Lbl_LoadConst,   &&Lbl_LoadEmpty,   &&Lbl_LoadString,
        &&Lbl_LoadIdent,   &&Lbl_StoreVar,    &&Lbl_Move,
        &&Lbl_Jump,        &&Lbl_JumpIfTrue,  &&Lbl_JumpIfFalse,
        &&Lbl_CastBool,    &&Lbl_CmpJump,     &&Lbl_MakeRange,
        &&Lbl_UnaryMinus,  &&Lbl_UnaryNot,    &&Lbl_Transpose,
        &&Lbl_Binary,      &&Lbl_FusedMulAdd, &&Lbl_MulTransB,
        &&Lbl_LoadExtent,  &&Lbl_MakeColon,   &&Lbl_TestDefined,
        &&Lbl_CheckCallable, &&Lbl_CallBuiltin, &&Lbl_Fail,
        &&Lbl_IndexRead0,  &&Lbl_IndexReadAll, &&Lbl_IndexRead1,
        &&Lbl_IndexRead2,  &&Lbl_DefineRef,   &&Lbl_IndexWriteAll,
        &&Lbl_IndexWrite1, &&Lbl_IndexWrite2, &&Lbl_MatBegin,
        &&Lbl_HorzCat,     &&Lbl_VertCat,     &&Lbl_MatEnd,
        &&Lbl_ForPrep,     &&Lbl_ForNext,     &&Lbl_ForBreak,
    };
    static_assert(sizeof(Table) / sizeof(Table[0]) == kNumOps,
                  "dispatch table out of sync with the opcode list");
    goto *Table[static_cast<uint8_t>(In->Opcode)];
#else
    for (;;) {
      In = &P.Instrs[IP];
      NextIP = IP + 1;
      switch (In->Opcode) {
#endif

      VM_CASE(Halt) : { goto Lbl_Stop; }
      VM_CASE(Step) : {
        CurStmt = In->Loc;
        Host.stmtStep(In->Loc); // sets the failed state on limit/interrupt
        VM_NEXT();
      }
      VM_CASE(Drop) : {
        clearReg(In->A);
        VM_NEXT_NOFAIL();
      }
      VM_CASE(LoadConst) : {
        setSca(In->A, P.Constants[In->B]);
        VM_NEXT_NOFAIL();
      }
      VM_CASE(LoadEmpty) : {
        setVal(In->A, Value());
        VM_NEXT_NOFAIL();
      }
      VM_CASE(LoadString) : {
        // Built per execution (not constant-pooled) so allocation and
        // memory charging happen exactly where the walker's do.
        const std::string &S = P.Strings[In->B];
        std::vector<double> Codes(S.begin(), S.end());
        setVal(In->A, Value::vector(std::move(Codes), /*Row=*/true));
        VM_NEXT_NOFAIL();
      }
      VM_CASE(LoadIdent) : {
        const BoundVar &V = Bound[In->B];
        if (Env.isDefined(V.Slot)) {
          const Value &SV = Env.slotValue(V.Slot);
          if (SV.isScalar() && !SV.isLogical())
            setSca(In->A, SV.scalarValue());
          else
            setVal(In->A, SV);
          VM_NEXT_NOFAIL();
        }
        if (V.IsPi) {
          setSca(In->A, 3.14159265358979323846);
          VM_NEXT_NOFAIL();
        }
        if (V.Builtin != InvalidBuiltinId)
          setVal(In->A, callBuiltin(Host, V.Builtin, noArgs(), In->Loc));
        else
          Host.fail(In->Loc,
                    "undefined variable '" + P.VarNames[In->B] + "'");
        VM_NEXT();
      }
      VM_CASE(StoreVar) : {
        unsigned Slot = Bound[In->A].Slot;
        int32_t B = In->B;
        if (B >= 0 && IsSca[B]) {
          IsSca[B] = 0;
          Env.define(Slot, Value::scalar(Sca[B]));
        } else if (B >= 0) {
          Env.define(Slot, std::move(Regs[B]));
        } else {
          Value V = srcLoad(B, In->Loc);
          if (!Host.failed())
            Env.define(Slot, std::move(V));
        }
        if (Host.failed())
          VM_NEXT();
        if (!Host.hasShapeCaps())
          VM_NEXT_NOFAIL();
        Host.checkShapeCap(Slot, In->Loc);
        VM_NEXT();
      }
      VM_CASE(Move) : {
        if (IsSca[In->B])
          setSca(In->A, Sca[In->B]);
        else
          setVal(In->A, Regs[In->B]); // COW copy; the source stays live
        VM_NEXT_NOFAIL();
      }
      VM_CASE(Jump) : {
        NextIP = static_cast<size_t>(In->A);
        // A backward jump is a loop back-edge; poll so a bodiless loop
        // (whose body never reaches a Step) stays interruptible.
        if (NextIP <= IP) {
          Host.backEdgePoll(CurStmt);
          VM_NEXT();
        } else {
          VM_NEXT_NOFAIL();
        }
      }
      VM_CASE(JumpIfTrue) : {
        bool T = IsSca[In->A] ? Sca[In->A] != 0.0 : Regs[In->A].isTrue();
        if (In->Flags & flags::Release)
          clearReg(In->A); // conditions destruct, un-pooled
        if (T)
          NextIP = static_cast<size_t>(In->B);
        VM_NEXT_NOFAIL();
      }
      VM_CASE(JumpIfFalse) : {
        bool T = IsSca[In->A] ? Sca[In->A] != 0.0 : Regs[In->A].isTrue();
        if (In->Flags & flags::Release)
          clearReg(In->A);
        if (!T)
          NextIP = static_cast<size_t>(In->B);
        VM_NEXT_NOFAIL();
      }
      VM_CASE(CastBool) : {
        setSca(In->A,
               (IsSca[In->A] ? Sca[In->A] != 0.0 : Regs[In->A].isTrue())
                   ? 1.0
                   : 0.0);
        VM_NEXT_NOFAIL();
      }
      VM_CASE(CmpJump) : {
        double A, B;
        if (srcSca(In->A, A) && srcSca(In->B, B)) {
          bool V = false;
          switch (static_cast<BinaryOp>(In->Flags)) {
          case BinaryOp::Lt: V = A < B; break;
          case BinaryOp::Gt: V = A > B; break;
          case BinaryOp::Le: V = A <= B; break;
          case BinaryOp::Ge: V = A >= B; break;
          case BinaryOp::Eq: V = A == B; break;
          default:           V = A != B; break;
          }
          clearSrc(In->A);
          clearSrc(In->B);
          if (!V)
            NextIP = static_cast<size_t>(In->C);
          VM_NEXT_NOFAIL();
        }
        {
          Value L = srcLoad(In->A, In->Loc);
          Value R = srcLoad(In->B, In->Loc);
          if (!Host.failed()) {
            Value C = Host.applyBinary(static_cast<BinaryOp>(In->Flags), L, R,
                                       In->Loc);
            Pool.recycle(std::move(L));
            Pool.recycle(std::move(R));
            if (!C.isTrue())
              NextIP = static_cast<size_t>(In->C);
          }
        }
        VM_NEXT();
      }
      VM_CASE(MakeRange) : {
        // Range operands destruct un-pooled in the walker; the srcLoad
        // temporaries here do the same (inner scope: see the threaded-
        // dispatch scope discipline above).
        {
          Value Start = srcLoad(In->B, In->Loc);
          Value Step = In->C == kNoOperand ? Value::scalar(1.0)
                                           : srcLoad(In->C, In->Loc);
          Value Stop = srcLoad(In->D, In->Loc);
          if (!Host.failed())
            setVal(In->A, Host.makeRangeChecked(Start, Step, Stop, In->Loc));
        }
        VM_NEXT();
      }
      VM_CASE(UnaryMinus) : {
        if (IsSca[In->B]) {
          // unaryMinus on a scalar builds a fresh plain 1x1: -x.
          double V = -Sca[In->B];
          if (In->A != In->B)
            clearReg(In->B);
          setSca(In->A, V);
        } else {
          Value R = unaryMinus(Regs[In->B], &Pool);
          Pool.recycle(std::move(Regs[In->B]));
          setVal(In->A, std::move(R));
        }
        VM_NEXT_NOFAIL();
      }
      VM_CASE(UnaryNot) : {
        if (isScalarReg(In->B)) {
          // unaryNot on a scalar: (x == 0), marked logical.
          bool Zero = scalarOf(In->B) == 0.0;
          clearReg(In->B);
          setVal(In->A, logicalScalar(Zero));
        } else {
          Value R = unaryNot(Regs[In->B], &Pool);
          Pool.recycle(std::move(Regs[In->B]));
          setVal(In->A, std::move(R));
        }
        VM_NEXT_NOFAIL();
      }
      VM_CASE(Transpose) : {
        if (IsSca[In->B]) {
          // A plain scalar transposes to itself (fresh 1x1, no flags).
          if (In->A != In->B) {
            double V = Sca[In->B];
            clearReg(In->B);
            setSca(In->A, V);
          }
        } else {
          Value R = Regs[In->B].transposed();
          Pool.recycle(std::move(Regs[In->B]));
          setVal(In->A, std::move(R));
        }
        VM_NEXT_NOFAIL();
      }
      VM_CASE(Binary) : {
        BinaryOp BO = static_cast<BinaryOp>(In->Flags & ~flags::StoreToSlot);
        double L, R;
        if (srcSca(In->B, L) && srcSca(In->C, R) && BO != BinaryOp::Pow &&
            BO != BinaryOp::DotPow && BO < BinaryOp::AndAnd) {
          // Mirrors Interpreter::applyBinary's scalar fast path exactly
          // (Pow/DotPow keep the generic powOp route there too; the
          // short-circuit ops are never compiler-emitted as Binary and
          // take the generic route like the walker's default does).
          clearSrc(In->B);
          clearSrc(In->C);
          double Num = 0;
          bool Logical = false, IsCmp = true;
          switch (BO) {
          case BinaryOp::Add:    Num = L + R; IsCmp = false; break;
          case BinaryOp::Sub:    Num = L - R; IsCmp = false; break;
          case BinaryOp::Mul:
          case BinaryOp::DotMul: Num = L * R; IsCmp = false; break;
          case BinaryOp::Div:
          case BinaryOp::DotDiv: Num = L / R; IsCmp = false; break;
          case BinaryOp::Lt:  Logical = L < R; break;
          case BinaryOp::Gt:  Logical = L > R; break;
          case BinaryOp::Le:  Logical = L <= R; break;
          case BinaryOp::Ge:  Logical = L >= R; break;
          case BinaryOp::Eq:  Logical = L == R; break;
          case BinaryOp::Ne:  Logical = L != R; break;
          case BinaryOp::And: Logical = L != 0.0 && R != 0.0; break;
          case BinaryOp::Or:  Logical = L != 0.0 || R != 0.0; break;
          default: // unreachable: every op passing the guard has a case
            internalFail(In->Loc);
            break;
          }
          if (In->Flags & flags::StoreToSlot) {
            unsigned Slot = Bound[In->A].Slot;
            Env.define(Slot,
                       IsCmp ? logicalScalar(Logical) : Value::scalar(Num));
            if (!Host.hasShapeCaps())
              VM_NEXT_NOFAIL();
            Host.checkShapeCap(Slot, CurStmt);
            VM_NEXT();
          }
          if (IsCmp)
            setVal(In->A, logicalScalar(Logical));
          else
            setSca(In->A, Num);
          VM_NEXT_NOFAIL();
        }
        {
          Value LV = srcLoad(In->B, In->Loc);
          Value RV = srcLoad(In->C, In->Loc);
          if (!Host.failed()) {
            Value Res = Host.applyBinary(BO, LV, RV, In->Loc);
            Pool.recycle(std::move(LV));
            Pool.recycle(std::move(RV));
            if (In->Flags & flags::StoreToSlot) {
              if (!Host.failed()) {
                unsigned Slot = Bound[In->A].Slot;
                Env.define(Slot, std::move(Res));
                if (Host.hasShapeCaps())
                  Host.checkShapeCap(Slot, CurStmt);
              }
            } else {
              setVal(In->A, std::move(Res));
            }
          }
        }
        VM_NEXT();
      }
      VM_CASE(FusedMulAdd) : {
        double SA, SB, SC;
        if (srcSca(In->B, SA) && srcSca(In->C, SB) && srcSca(In->D, SC)) {
          // applyFusedMulAdd's all-scalar case: round the product first,
          // exactly like the two-step evaluation does.
          double Prod = SA * SB;
          clearSrc(In->B);
          clearSrc(In->C);
          clearSrc(In->D);
          double R;
          if (!(In->Flags & flags::FmaSubtract))
            R = Prod + SC;
          else
            R = (In->Flags & flags::FmaProductOnLeft) ? Prod - SC : SC - Prod;
          if (In->Flags & flags::StoreToSlot) {
            unsigned Slot = Bound[In->A].Slot;
            Env.define(Slot, Value::scalar(R));
            if (!Host.hasShapeCaps())
              VM_NEXT_NOFAIL();
            Host.checkShapeCap(Slot, CurStmt);
            VM_NEXT();
          }
          setSca(In->A, R);
          VM_NEXT_NOFAIL();
        }
        {
          Value A = srcLoad(In->B, In->Loc);
          Value B = srcLoad(In->C, In->Loc);
          Value C = srcLoad(In->D, In->Loc);
          if (!Host.failed()) {
            Value R = Host.applyFusedMulAdd(
                A, B, C, (In->Flags & flags::FmaSubtract) != 0,
                (In->Flags & flags::FmaProductOnLeft) != 0,
                (In->Flags & flags::FmaDotMul) != 0, In->Loc, In->Loc2);
            Pool.recycle(std::move(A));
            Pool.recycle(std::move(B));
            Pool.recycle(std::move(C));
            if (In->Flags & flags::StoreToSlot) {
              if (!Host.failed()) {
                unsigned Slot = Bound[In->A].Slot;
                Env.define(Slot, std::move(R));
                if (Host.hasShapeCaps())
                  Host.checkShapeCap(Slot, CurStmt);
              }
            } else {
              setVal(In->A, std::move(R));
            }
          }
        }
        VM_NEXT();
      }
      VM_CASE(MulTransB) : {
        Value &L = box(In->B), &R = box(In->C);
        Value Res = Host.applyMulTransB(L, R, In->Loc);
        Pool.recycle(std::move(L));
        Pool.recycle(std::move(R));
        setVal(In->A, std::move(Res));
        VM_NEXT();
      }
      VM_CASE(LoadExtent) : {
        const Value &Base = (In->Flags & flags::BaseIsSlot)
                                ? Env.slotValue(Bound[In->B].Slot)
                                : box(In->B);
        size_t Ext;
        switch (In->Flags & flags::DimMask) {
        case flags::DimRows: Ext = Base.rows(); break;
        case flags::DimCols: Ext = Base.cols(); break;
        default:             Ext = Base.numel(); break;
        }
        setSca(In->A, static_cast<double>(Ext));
        VM_NEXT_NOFAIL();
      }
      VM_CASE(MakeColon) : {
        const Value &Base = (In->Flags & flags::BaseIsSlot)
                                ? Env.slotValue(Bound[In->B].Slot)
                                : box(In->B);
        size_t Ext;
        switch (In->Flags & flags::DimMask) {
        case flags::DimRows: Ext = Base.rows(); break;
        case flags::DimCols: Ext = Base.cols(); break;
        default:             Ext = Base.numel(); break;
        }
        setVal(In->A, Interpreter::makeColonVector(Ext));
        VM_NEXT_NOFAIL();
      }
      VM_CASE(TestDefined) : {
        if (!Env.isDefined(Bound[In->A].Slot))
          NextIP = static_cast<size_t>(In->B);
        VM_NEXT_NOFAIL();
      }
      VM_CASE(CheckCallable) : {
        if (Bound[In->A].Builtin == InvalidBuiltinId)
          Host.fail(In->Loc, P.Strings[In->B]);
        VM_NEXT();
      }
      VM_CASE(CallBuiltin) : {
        size_t Depth = In->Flags;
        if (ArgPool.size() <= Depth)
          ArgPool.resize(Depth + 1);
        std::vector<Value> &Args = ArgPool[Depth];
        Args.clear();
        Args.reserve(In->D);
        for (int32_t I = 0; I != In->D; ++I)
          Args.push_back(std::move(box(In->C + I)));
        setVal(In->A, callBuiltin(Host, Bound[In->B].Builtin, Args, In->Loc));
        VM_NEXT();
      }
      VM_CASE(Fail) : {
        Host.fail(In->Loc, P.Strings[In->A]);
        VM_NEXT();
      }
      VM_CASE(IndexRead0) : {
        const Value &SV = Env.slotValue(Bound[In->B].Slot);
        if (SV.isScalar() && !SV.isLogical())
          setSca(In->A, SV.scalarValue());
        else
          setVal(In->A, SV);
        VM_NEXT_NOFAIL();
      }
      VM_CASE(IndexReadAll) : {
        const Value &Base = (In->Flags & flags::BaseIsSlot)
                                ? Env.slotValue(Bound[In->B].Slot)
                                : box(In->B);
        setVal(In->A, Host.indexReadAll(Base));
        VM_NEXT();
      }
      VM_CASE(IndexRead1) : {
        const Value &Base = (In->Flags & flags::BaseIsSlot)
                                ? Env.slotValue(Bound[In->B].Slot)
                                : box(In->B);
        double D;
        if (!Base.isLogical() && srcScaPlain(In->C, D) && std::isfinite(D) &&
            D >= 1.0 && D == std::floor(D) &&
            D <= static_cast<double>(Base.numel())) {
          // In-bounds plain scalar subscript of a plain base: indexRead1
          // would build a fresh plain 1x1 holding the selected element.
          double V = Base.linear(static_cast<size_t>(D) - 1);
          clearSrc(In->C);
          setSca(In->A, V);
          VM_NEXT_NOFAIL();
        }
        {
          Value Idx = srcLoad(In->C, In->Loc);
          if (!Host.failed())
            setVal(In->A, Host.indexRead1(Base, Idx, In->Loc));
        }
        VM_NEXT();
      }
      VM_CASE(IndexRead2) : {
        const Value &Base = (In->Flags & flags::BaseIsSlot)
                                ? Env.slotValue(Bound[In->B].Slot)
                                : box(In->B);
        double RD, CD;
        if (!Base.isLogical() && srcScaPlain(In->C, RD) &&
            srcScaPlain(In->D, CD) && std::isfinite(RD) && RD >= 1.0 &&
            RD == std::floor(RD) &&
            RD <= static_cast<double>(Base.rows()) && std::isfinite(CD) &&
            CD >= 1.0 && CD == std::floor(CD) &&
            CD <= static_cast<double>(Base.cols())) {
          double V = Base.at(static_cast<size_t>(RD) - 1,
                             static_cast<size_t>(CD) - 1);
          clearSrc(In->C);
          clearSrc(In->D);
          setSca(In->A, V);
          VM_NEXT_NOFAIL();
        }
        {
          Value RI = srcLoad(In->C, In->Loc);
          Value CI = srcLoad(In->D, In->Loc);
          if (!Host.failed())
            setVal(In->A, Host.indexRead2(Base, RI, CI, In->Loc));
        }
        VM_NEXT();
      }
      VM_CASE(DefineRef) : {
        Host.defineSlotRef(Bound[In->A].Slot);
        VM_NEXT_NOFAIL();
      }
      VM_CASE(IndexWriteAll) : {
        unsigned Slot = Bound[In->A].Slot;
        {
          // A folded-slot RHS materializes as a COW copy here, exactly
          // the temporary the walker's RHS evaluation holds — so
          // mutableRaw inside the write sees the same sharing (the
          // A(:) = A case detaches identically on both engines).
          Value RHS = srcLoad(In->B, In->Loc);
          if (!Host.failed()) {
            Host.indexWriteAll(Env.slotValue(Slot), RHS, In->Loc);
            Host.checkShapeCap(Slot, In->Loc2);
          }
        }
        VM_NEXT();
      }
      VM_CASE(IndexWrite1) : {
        unsigned Slot = Bound[In->A].Slot;
        double D, RV;
        if (srcScaPlain(In->B, D) && srcSca(In->C, RV) && std::isfinite(D) &&
            D >= 1.0 && D == std::floor(D) && D <= 9.007199254740992e15) {
          // Plain integral scalar subscript, scalar RHS: replicate
          // indexWrite1's scalar-index behavior — growth rules included
          // — without the index-vector machinery. The RHS double was
          // read above, before any mutation, which is also what the
          // walker's pre-evaluated RHS temporary guarantees.
          Value &Target = Env.slotValue(Slot);
          auto I = static_cast<size_t>(D);
          if (I > Target.numel()) {
            if ((Target.rows() == 0 && Target.cols() <= 1) ||
                Target.rows() == 1) {
              Target.growTo(1, I); // empties and rows widen as rows
            } else if (Target.cols() == 1) {
              Target.growTo(I, 1);
            } else {
              Host.fail(In->Loc,
                        "linear indexed assignment cannot grow a matrix");
              clearSrc(In->B);
              clearSrc(In->C);
              VM_NEXT();
            }
          }
          Target.mutableRaw()[I - 1] = RV;
          clearSrc(In->B);
          clearSrc(In->C);
          Host.checkShapeCap(Slot, In->Loc2);
          VM_NEXT();
        }
        {
          Value Idx = srcLoad(In->B, In->Loc);
          Value RHS = srcLoad(In->C, In->Loc);
          if (!Host.failed()) {
            Host.indexWrite1(Env.slotValue(Slot), Idx, RHS, In->Loc);
            Host.checkShapeCap(Slot, In->Loc2);
          }
        }
        VM_NEXT();
      }
      VM_CASE(IndexWrite2) : {
        unsigned Slot = Bound[In->A].Slot;
        double RD, CD, RV;
        if (srcScaPlain(In->B, RD) && srcScaPlain(In->C, CD) &&
            srcSca(In->D, RV) && std::isfinite(RD) && RD >= 1.0 &&
            RD == std::floor(RD) && RD <= 9.007199254740992e15 &&
            std::isfinite(CD) && CD >= 1.0 && CD == std::floor(CD) &&
            CD <= 9.007199254740992e15) {
          Value &Target = Env.slotValue(Slot);
          auto R = static_cast<size_t>(RD), C = static_cast<size_t>(CD);
          if (R > Target.rows() || C > Target.cols())
            Target.growTo(std::max(R, Target.rows()),
                          std::max(C, Target.cols()));
          Target.mutableRaw()[(C - 1) * Target.rows() + (R - 1)] = RV;
          clearSrc(In->B);
          clearSrc(In->C);
          clearSrc(In->D);
          Host.checkShapeCap(Slot, In->Loc2);
          VM_NEXT();
        }
        {
          Value RI = srcLoad(In->B, In->Loc);
          Value CI = srcLoad(In->C, In->Loc);
          Value RHS = srcLoad(In->D, In->Loc);
          if (!Host.failed()) {
            Host.indexWrite2(Env.slotValue(Slot), RI, CI, RHS, In->Loc);
            Host.checkShapeCap(Slot, In->Loc2);
          }
        }
        VM_NEXT();
      }
      VM_CASE(MatBegin) : {
        MatErrs.emplace_back();
        VM_NEXT_NOFAIL();
      }
      VM_CASE(HorzCat) : {
        if (MatErrs.empty()) {
          internalFail(In->Loc);
          VM_NEXT();
        }
        setVal(In->A, horzcat(box(In->A), box(In->B), MatErrs.back()));
        Regs[In->B] = Value();
        VM_NEXT_NOFAIL();
      }
      VM_CASE(VertCat) : {
        if (MatErrs.empty()) {
          internalFail(In->Loc);
          VM_NEXT();
        }
        setVal(In->A, vertcat(box(In->A), box(In->B), MatErrs.back()));
        Regs[In->B] = Value();
        VM_NEXT_NOFAIL();
      }
      VM_CASE(MatEnd) : {
        if (MatErrs.empty()) {
          internalFail(In->Loc);
          VM_NEXT();
        }
        {
          OpError Err = std::move(MatErrs.back());
          MatErrs.pop_back();
          if (Err.failed())
            Host.fail(In->Loc, Err.Message);
        }
        VM_NEXT();
      }
      VM_CASE(ForPrep) : {
        const Value &RangeV = box(In->A);
        ForFrame F;
        F.RangeReg = In->A;
        F.IdxSlot = Bound[P.ForInfos[In->B].IdxVar].Slot;
        F.NumIters = RangeV.isEmpty() ? 0 : RangeV.cols();
        F.HintsBefore = Host.pendingHintCount();
        if (F.NumIters > 8)
          for (int32_t HV : P.ForInfos[In->B].HintVars)
            Host.noteHintForSlot(Bound[HV].Slot, F.NumIters);
        Frames.push_back(F);
        VM_NEXT_NOFAIL();
      }
      VM_CASE(ForNext) : {
        // Bottom-tested: defines the loop variable and jumps back to the
        // body (C) while iterations remain; falls through to the loop
        // exit once exhausted. One dispatch per iteration.
        if (Frames.empty()) {
          internalFail(In->Loc);
          VM_NEXT();
        }
        ForFrame &F = Frames.back();
        if (F.Col != F.NumIters) {
          const Value &RangeV = Regs[F.RangeReg];
          if (RangeV.rows() == 1) {
            Env.define(F.IdxSlot, Value::scalar(RangeV.at(0, F.Col)));
          } else {
            Value Slice(RangeV.rows(), 1);
            double *SliceD = Slice.mutableRaw();
            for (size_t R = 0, E = RangeV.rows(); R != E; ++R)
              SliceD[R] = RangeV.at(R, F.Col);
            Env.define(F.IdxSlot, std::move(Slice));
          }
          ++F.Col;
          NextIP = static_cast<size_t>(In->C);
          Host.backEdgePoll(In->Loc);
          VM_NEXT();
        }
        Host.restorePendingHints(F.HintsBefore);
        Regs[F.RangeReg] = Value();
        Frames.pop_back();
        VM_NEXT_NOFAIL();
      }
      VM_CASE(ForBreak) : {
        if (Frames.empty()) {
          internalFail(In->Loc);
          VM_NEXT();
        }
        ForFrame &F = Frames.back();
        Host.restorePendingHints(F.HintsBefore);
        Regs[F.RangeReg] = Value();
        Frames.pop_back();
        NextIP = static_cast<size_t>(In->A);
        VM_NEXT_NOFAIL();
      }

#if MVEC_VM_THREADED
  Lbl_Stop:;
#else
      }
      if (Host.failed())
        break;
      IP = NextIP;
    }
  Lbl_Stop:;
#endif
  } catch (...) {
    // Injected faults and budget exhaustion unwind by exception, exactly
    // as through the walker: no hint restoration, just detach from the
    // host (the interpreter is discarded or re-run from scratch).
    Host.engineEnd();
    throw;
  }

  // The walker's execFor restores the pending-hint watermark on every
  // exit path, including failure and return; collapsing the nested
  // restores to the outermost frame's watermark is equivalent.
  if (!Frames.empty())
    Host.restorePendingHints(Frames.front().HintsBefore);

  Host.engineEnd();
  return !Host.failed();
}
