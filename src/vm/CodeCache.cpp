//===- CodeCache.cpp - Content-addressed compiled-program cache -----------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "vm/CodeCache.h"

#include "service/ResultStore.h"
#include "service/ServiceMetrics.h"
#include "support/ContentHash.h"
#include "vm/Compiler.h"
#include "vm/Serialize.h"

#include <chrono>

using namespace mvec;
using namespace mvec::vm;

CodeCache::CodeCache(size_t Capacity, ResultStore *Disk,
                     ServiceMetrics *Metrics)
    : Capacity(Capacity), Disk(Disk), Metrics(Metrics) {}

size_t CodeCache::size() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return LRU.size();
}

std::shared_ptr<const CompiledProgram> CodeCache::lookupMemory(uint64_t Key) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Index.find(Key);
  if (It == Index.end())
    return nullptr;
  LRU.splice(LRU.begin(), LRU, It->second);
  return LRU.front().second;
}

void CodeCache::insertMemory(uint64_t Key,
                             const std::shared_ptr<const CompiledProgram> &CP) {
  if (Capacity == 0)
    return;
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Index.find(Key);
  if (It != Index.end()) {
    // A concurrent obtain() beat us; keep the existing entry (compilation
    // is deterministic, the programs are identical).
    LRU.splice(LRU.begin(), LRU, It->second);
    return;
  }
  LRU.emplace_front(Key, CP);
  Index[Key] = LRU.begin();
  while (LRU.size() > Capacity) {
    Index.erase(LRU.back().first);
    LRU.pop_back();
  }
}

std::shared_ptr<const CompiledProgram>
CodeCache::obtain(const std::string &Source, const Program &P) {
  uint64_t Key = codeKeyFor(Source);
  if (auto CP = lookupMemory(Key)) {
    Hits.fetch_add(1, std::memory_order_relaxed);
    if (Metrics)
      Metrics->CodeCacheHits.fetch_add(1, std::memory_order_relaxed);
    return CP;
  }

  // Second tier: persisted bytecode. Corruption of any kind — failed
  // deserialization, a wrong status, a source-hash mismatch — is a miss.
  if (Disk) {
    if (auto Stored = Disk->load(Key)) {
      if (Stored->Status == JobStatus::Succeeded) {
        if (auto Decoded = deserializeProgram(Stored->VectorizedSource)) {
          if (Decoded->SourceHash == fnv1aHash(Source)) {
            auto CP = std::make_shared<const CompiledProgram>(
                std::move(*Decoded));
            Hits.fetch_add(1, std::memory_order_relaxed);
            if (Metrics)
              Metrics->CodeCacheHits.fetch_add(1, std::memory_order_relaxed);
            insertMemory(Key, CP);
            return CP;
          }
        }
      }
    }
  }

  Misses.fetch_add(1, std::memory_order_relaxed);
  if (Metrics)
    Metrics->CodeCacheMisses.fetch_add(1, std::memory_order_relaxed);

  auto Start = std::chrono::steady_clock::now();
  auto CP = std::make_shared<const CompiledProgram>(compileProgram(P, Source));
  double Seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  Compiles.fetch_add(1, std::memory_order_relaxed);
  if (Metrics) {
    Metrics->BytecodeCompiles.fetch_add(1, std::memory_order_relaxed);
    Metrics->CompileLatency.record(Seconds);
  }

  insertMemory(Key, CP);
  if (Disk) {
    JobResult Result;
    Result.Status = JobStatus::Succeeded;
    Result.Name = "bytecode";
    Result.VectorizedSource = serializeProgram(*CP);
    Disk->store(Key, Result);
  }
  return CP;
}
