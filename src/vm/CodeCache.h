//===- CodeCache.h - Content-addressed compiled-program cache ---*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "warm path all the way down" piece: compiled programs cached by
/// source content. Two tiers, mirroring the service's result cache — an
/// in-memory LRU of shared immutable programs, and an optional
/// write-through to the service's ResultStore so a daemon's DiskStore
/// persists bytecode beside results and a restarted shard re-executes
/// without re-lowering. Keys come from codeKeyFor (source hash x format
/// version); a persisted entry that fails deserialization or hash check
/// is silently a miss.
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_VM_CODECACHE_H
#define MVEC_VM_CODECACHE_H

#include "vm/Bytecode.h"

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace mvec {

class ResultStore;
struct Program;
struct ServiceMetrics;

namespace vm {

class CodeCache {
public:
  /// \p Capacity bounds the in-memory tier (0 disables it; programs are
  /// still served, compiled per call or loaded from \p Disk). \p Disk and
  /// \p Metrics may be null; neither is owned.
  explicit CodeCache(size_t Capacity, ResultStore *Disk = nullptr,
                     ServiceMetrics *Metrics = nullptr);

  /// Returns the compiled form of \p Source, from memory, disk, or a
  /// fresh lowering of \p P (which must be the parse of \p Source).
  /// Thread-safe; the returned program is immutable and shared.
  std::shared_ptr<const CompiledProgram> obtain(const std::string &Source,
                                                const Program &P);

  size_t size() const;
  uint64_t hits() const { return Hits.load(std::memory_order_relaxed); }
  uint64_t misses() const { return Misses.load(std::memory_order_relaxed); }
  uint64_t compiles() const { return Compiles.load(std::memory_order_relaxed); }

private:
  using Entry = std::pair<uint64_t, std::shared_ptr<const CompiledProgram>>;

  std::shared_ptr<const CompiledProgram> lookupMemory(uint64_t Key);
  void insertMemory(uint64_t Key,
                    const std::shared_ptr<const CompiledProgram> &CP);

  mutable std::mutex Mu;
  size_t Capacity;
  std::list<Entry> LRU; ///< front = most recent
  std::unordered_map<uint64_t, std::list<Entry>::iterator> Index;
  ResultStore *Disk;
  ServiceMetrics *Metrics;
  std::atomic<uint64_t> Hits{0};
  std::atomic<uint64_t> Misses{0};
  std::atomic<uint64_t> Compiles{0};
};

} // namespace vm
} // namespace mvec

#endif // MVEC_VM_CODECACHE_H
