//===- Bytecode.h - Register bytecode for the execution tier ----*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compiled-program representation of the mvec::vm execution tier: a
/// register-based instruction stream lowered from a prepared AST, plus the
/// pools it references (doubles, strings, variable names, for-loop
/// metadata). The format is deliberately flat and position-independent:
/// variables are *name* indices bound to workspace slots at execution time,
/// so a program serialized by one process executes in another.
///
/// Register discipline: the compiler allocates registers as an expression
/// stack (destination first, operand temporaries above it) and restores the
/// stack top per statement, so NumRegs is the high-water mark of a single
/// statement. Superinstructions (CmpJump, FusedMulAdd, MulTransB) mirror
/// the tree-walker's fused kernels one-for-one; everything else decomposes
/// into the same primitive steps the walker takes, in the same order.
///
/// Folded operands: value-source (Src) operand fields address either a
/// register (>= 0) or, when negative, a constant or variable folded
/// directly into the consuming instruction — see packSlotOperand /
/// packConstOperand. The compiler folds a variable only where a forward
/// definedness analysis proves it assigned on every path, so a folded
/// slot read can never be the first (failing) mention of a name and the
/// un-folded LoadIdent keeps its precise error location. Constants fold
/// unconditionally. Both are side-effect-free reads, so eliding the
/// load instruction leaves evaluation order, failure behavior, and
/// buffer-pool traffic exactly as the walker has them.
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_VM_BYTECODE_H
#define MVEC_VM_BYTECODE_H

#include "support/SourceLoc.h"

#include <cstdint>
#include <string>
#include <vector>

namespace mvec {
namespace vm {

/// One opcode per primitive step the tree-walker performs. Keep the order
/// stable: the numeric value is part of the serialized format (bump
/// kBytecodeFormatVersion in Serialize.h when it changes).
enum class Op : uint8_t {
  Halt,       ///< stop execution (program end / return / top-level break)
  Step,       ///< per-statement accounting: step limit, poll, fault site
  Drop,       ///< A: release register A (discarded expression statement)
  LoadConst,  ///< A=dst, B=constant-pool index
  LoadEmpty,  ///< A=dst: the empty matrix []
  LoadString, ///< A=dst, B=string index; builds the char-code row vector
  LoadIdent,  ///< A=dst, B=var; variable -> pi -> 0-arg builtin -> fail
  StoreVar,   ///< A=var, B=src (Src); moves src into the slot, then shape cap
  Move,       ///< A=dst, B=src; COW copy, src stays live
  Jump,       ///< A=target
  JumpIfTrue, ///< A=reg, B=target; flags::Release drops the condition
  JumpIfFalse,///< A=reg, B=target; flags::Release drops the condition
  CastBool,   ///< A=reg: reg = scalar(isTrue(reg)) (short-circuit result)
  CmpJump,    ///< A=lhs (Src), B=rhs (Src), C=target-if-false, Flags=compare
  MakeRange,  ///< A=dst, B=start, C=step or kNoOperand (implicit 1), D=stop
  UnaryMinus, ///< A=dst, B=src
  UnaryNot,   ///< A=dst, B=src
  Transpose,  ///< A=dst, B=src
  Binary,     ///< A=dst (DstRS), B=lhs (Src), C=rhs (Src), Flags=BinaryOp
              ///< (| flags::StoreToSlot: A is a var, result defines it)
  FusedMulAdd,///< A=dst (DstRS), B=a, C=b, D=c (all Src); (a op* b) +/- c
  MulTransB,  ///< A=dst, B=lhs, C=b; lhs * b' without materializing b'
  LoadExtent, ///< A=dst, B=base, Flags=dim|BaseIsSlot; subscript 'end'
  MakeColon,  ///< A=dst, B=base, Flags=dim|BaseIsSlot; ':' index vector
  TestDefined,///< A=var, B=target-if-undefined (index/call dispatch)
  CheckCallable,///< A=var, B=string index of the failure message
  CallBuiltin,///< A=dst, B=var, C=first-arg reg, D=arg count
  Fail,       ///< A=string index; statically known runtime error
  IndexRead0, ///< A=dst, B=var; f() of a defined variable is its value
  IndexReadAll,///< A=dst, B=base, Flags BaseIsSlot; A(:) linearized copy
  IndexRead1, ///< A=dst, B=base, C=idx (Src), Flags BaseIsSlot
  IndexRead2, ///< A=dst, B=base, C=row idx, D=col idx (Src), Flags BaseIsSlot
  DefineRef,  ///< A=var; marks the target defined before an indexed write
  IndexWriteAll,///< A=var, B=rhs (Src); A(:) = rhs
  IndexWrite1,///< A=var, B=idx (Src), C=rhs (Src)
  IndexWrite2,///< A=var, B=row idx, C=col idx, D=rhs (all Src)
  MatBegin,   ///< push a concatenation error frame for a matrix literal
  HorzCat,    ///< A=row acc, B=element; acc = [acc, element]
  VertCat,    ///< A=result acc, B=row; acc = [acc; row]
  MatEnd,     ///< A=result reg; pop the error frame, fail if it tripped
  ForPrep,    ///< A=range reg, B=for-info; push frame, accumulator hints
  ForNext,    ///< A=range reg, B=for-info, C=body; loops are bottom-tested:
              ///< defines the loop var and jumps to C while iterations
              ///< remain, falls through to the exit when exhausted
  ForBreak,   ///< A=exit target; unwind the innermost for frame
};

constexpr uint8_t kNumOps = static_cast<uint8_t>(Op::ForBreak) + 1;

/// Bit assignments for Instr::Flags, per opcode family.
namespace flags {
/// JumpIfTrue/JumpIfFalse: release the condition register after testing
/// (loop/branch conditions; short-circuit operands keep theirs).
constexpr uint8_t Release = 1;
/// FusedMulAdd: c is subtracted / the product is the left addend / the
/// product op was .* (vs * with a scalar side).
constexpr uint8_t FmaSubtract = 1;
constexpr uint8_t FmaProductOnLeft = 2;
constexpr uint8_t FmaDotMul = 4;
/// LoadExtent/MakeColon/IndexRead*: which extent of the base (numel /
/// rows / cols), and whether B names a variable instead of a register.
constexpr uint8_t DimNumel = 0;
constexpr uint8_t DimRows = 1;
constexpr uint8_t DimCols = 2;
constexpr uint8_t DimMask = 3;
constexpr uint8_t BaseIsSlot = 4;
/// Binary/FusedMulAdd: a fused StoreVar — A names a variable (VarNames
/// index) and the result defines it directly instead of landing in a
/// register. The shape-cap check runs against the current statement
/// location (the enclosing Step's Loc), which is exactly the loc the
/// separate StoreVar carried, so failure output is byte-identical.
/// Disjoint from the BinaryOp value range and the Fma* bits.
constexpr uint8_t StoreToSlot = 64;
} // namespace flags

/// Sentinel for an absent optional operand (MakeRange's implicit step).
/// Distinct from every register index and folded-operand encoding.
constexpr int32_t kNoOperand = -2147483647 - 1;

/// Encodes VarNames index \p VarIdx as a folded Src operand.
constexpr int32_t packSlotOperand(int32_t VarIdx) { return -(VarIdx * 2) - 1; }
/// Encodes Constants index \p ConstIdx as a folded Src operand.
constexpr int32_t packConstOperand(int32_t ConstIdx) {
  return -(ConstIdx * 2) - 2;
}
/// True when Src operand \p V is a folded constant (else: folded slot).
/// Only meaningful for V < 0; V >= 0 is a register index.
constexpr bool foldedIsConst(int32_t V) {
  return (static_cast<uint32_t>(-(V + 1)) & 1) != 0;
}
/// The Constants/VarNames index carried by folded Src operand \p V.
constexpr int32_t foldedIndex(int32_t V) {
  return static_cast<int32_t>(static_cast<uint32_t>(-(V + 1)) >> 1);
}

/// One instruction. Fixed-width operands keep decode trivial; most ops use
/// a prefix of A..D (see the Op comments for the per-op meaning). Loc is
/// the source location reported if the step fails; Loc2 carries the
/// secondary location for ops that can fail at two places (FusedMulAdd's
/// inner product, indexed writes' shape-cap check at the statement).
struct Instr {
  Op Opcode = Op::Halt;
  uint8_t Flags = 0;
  int32_t A = 0;
  int32_t B = 0;
  int32_t C = 0;
  int32_t D = 0;
  SourceLoc Loc;
  SourceLoc Loc2;
};

/// Per-for-loop metadata: the loop variable and the assignment targets
/// that get accumulator reserve hints when the trip count is known large.
struct ForInfo {
  int32_t IdxVar = 0;
  std::vector<int32_t> HintVars;
};

/// A lowered program. Everything an execution needs except the workspace
/// binding (variable names resolve to slots per run).
struct CompiledProgram {
  std::vector<double> Constants;
  std::vector<std::string> Strings; ///< literals and failure messages
  std::vector<std::string> VarNames;
  std::vector<ForInfo> ForInfos;
  std::vector<Instr> Instrs;
  uint32_t NumRegs = 0;
  /// FNV-1a hash of the source this program was lowered from.
  uint64_t SourceHash = 0;
};

/// How the disassembler/validator interpret one operand field.
enum class OperandClass : uint8_t {
  None,    ///< unused
  Reg,     ///< register index in [0, NumRegs)
  Var,     ///< VarNames index
  Const,   ///< Constants index
  Str,     ///< Strings index
  Target,  ///< instruction index in [0, Instrs.size())
  ForIdx,  ///< ForInfos index
  Count,   ///< CallBuiltin arg count; C..C+D-1 must be valid registers
  BaseRC,  ///< register, or VarNames index when flags::BaseIsSlot is set
  DstRS,   ///< dst register, or VarNames index when flags::StoreToSlot
  Src,     ///< value source: register, or folded slot/constant (< 0)
  OptSrc,  ///< Src, or kNoOperand (MakeRange's implicit step)
};

/// Static operand metadata, indexed by opcode.
struct OpInfo {
  const char *Name;
  OperandClass A, B, C, D;
};

/// Returns the metadata row for \p Opcode (Opcode must be < kNumOps).
const OpInfo &opInfo(Op Opcode);

} // namespace vm
} // namespace mvec

#endif // MVEC_VM_BYTECODE_H
