//===- VM.h - Bytecode dispatch loop ----------------------------*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes compiled programs against a host Interpreter. The VM owns no
/// state of its own: workspace, output, RNG, step/deadline accounting,
/// fault sites and the kernel buffer pool all live in the host, so a
/// program observes exactly what it would under the tree-walker — the VM
/// only replaces the AST traversal with a register dispatch loop.
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_VM_VM_H
#define MVEC_VM_VM_H

#include "vm/Bytecode.h"

namespace mvec {

class Interpreter;

namespace vm {

/// Runs \p P to completion against \p Host. Variable names bind to
/// workspace slots at entry, so the same CompiledProgram may execute
/// against any number of interpreters (including concurrently — the
/// program itself is read-only here). Returns false iff the host entered
/// the failed state; error message, location, interrupt kind and all
/// output live on the host, exactly as after Interpreter::run.
bool execute(const CompiledProgram &P, Interpreter &Host);

} // namespace vm
} // namespace mvec

#endif // MVEC_VM_VM_H
