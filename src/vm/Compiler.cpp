//===- Compiler.cpp - AST -> bytecode lowering ----------------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The lowering mirrors the tree-walker step for step. Three invariants
// carry the whole parity argument:
//
//  1. Instruction order equals the walker's evaluation order, including
//     the fused-kernel operand orders and the per-statement Step.
//  2. The 'end'/':' handling reproduces mentionsEndKeyword /
//     replaceEndKeyword exactly: an extent context propagates through
//     Range/Unary/Binary/Transpose and an Index *base*, while Index
//     arguments open their own subscript contexts and matrix-literal
//     elements drop the context entirely (a matrix literal inside a
//     subscript keeps its 'end' unresolved and fails at runtime).
//  3. Registers form an expression stack: a destination is allocated
//     below its operand temporaries and the stack top is restored per
//     statement, so register numbering — and therefore the bytecode — is
//     a pure function of the AST.
//
// On top of that, operand folding: constants, and variables a forward
// definedness analysis proves assigned on every path to the use, fold
// directly into Src-class operand fields of the consuming instruction
// (negative encodings, see Bytecode.h) instead of going through
// LoadConst/LoadIdent. Folding only elides side-effect-free loads — a
// possibly-undefined variable keeps its LoadIdent so the undefined-name
// failure fires at the identifier's own location, exactly as the walker
// reports it. The analysis is intentionally conservative: a loop body
// may define a name for later statements of the same body, but nothing
// escapes the loop (the zero-trip case), and an if defines a name only
// when every branch of an if/else chain with a final else does.
//
//===----------------------------------------------------------------------===//

#include "vm/Compiler.h"

#include "frontend/ASTUtils.h"
#include "support/ContentHash.h"

#include <cstring>
#include <unordered_map>

using namespace mvec;
using namespace mvec::vm;

namespace {

class Compiler {
public:
  CompiledProgram compile(const Program &P, const std::string &Source) {
    for (const StmtPtr &S : P.Stmts)
      compileStmt(*S);
    emit(Op::Halt, 0, 0, 0, 0, 0, SourceLoc());
    CP.NumRegs = static_cast<uint32_t>(MaxTop);
    CP.SourceHash = fnv1aHash(Source);
    return std::move(CP);
  }

private:
  CompiledProgram CP;
  int32_t Top = 0;
  int32_t MaxTop = 0;
  std::unordered_map<uint64_t, int32_t> ConstIdx;
  std::unordered_map<std::string, int32_t> StrIdx;
  std::unordered_map<std::string, int32_t> VarIdx;
  struct LoopCtx {
    bool IsFor;
    /// Jump target for continue, or -1 when the test sits at the loop
    /// bottom and its position is unknown until the body is compiled.
    int32_t ContinueTarget;
    std::vector<size_t> ExitFixups;
    std::vector<size_t> ContinueFixups;
  };
  std::vector<LoopCtx> Loops;
  /// Forward definedness: Defined[v] is true when variable v is assigned
  /// on every control-flow path reaching the instruction being emitted.
  std::vector<bool> Defined;
  /// Syntactic call-argument nesting depth; stamped on CallBuiltin so the
  /// VM's argument scratch vectors mirror the walker's ArgPool exactly.
  int ArgNest = 0;

  //===--------------------------------------------------------------------===//
  // Pools and emission
  //===--------------------------------------------------------------------===//

  int32_t allocReg() {
    int32_t R = Top++;
    if (Top > MaxTop)
      MaxTop = Top;
    return R;
  }

  int32_t constIdx(double V) {
    uint64_t Bits;
    std::memcpy(&Bits, &V, sizeof(Bits));
    auto [It, New] = ConstIdx.try_emplace(Bits, CP.Constants.size());
    if (New)
      CP.Constants.push_back(V);
    return It->second;
  }

  int32_t strIdx(const std::string &S) {
    auto [It, New] = StrIdx.try_emplace(S, CP.Strings.size());
    if (New)
      CP.Strings.push_back(S);
    return It->second;
  }

  int32_t varIdx(const std::string &Name) {
    auto [It, New] = VarIdx.try_emplace(Name, CP.VarNames.size());
    if (New)
      CP.VarNames.push_back(Name);
    return It->second;
  }

  bool isDefinedVar(int32_t V) const {
    return static_cast<size_t>(V) < Defined.size() && Defined[V];
  }

  void markDefined(int32_t V) {
    if (static_cast<size_t>(V) >= Defined.size())
      Defined.resize(V + 1, false);
    Defined[V] = true;
  }

  size_t emit(Op O, uint8_t F, int32_t A, int32_t B = 0, int32_t C = 0,
              int32_t D = 0, SourceLoc Loc = SourceLoc(),
              SourceLoc Loc2 = SourceLoc()) {
    Instr I;
    I.Opcode = O;
    I.Flags = F;
    I.A = A;
    I.B = B;
    I.C = C;
    I.D = D;
    I.Loc = Loc;
    I.Loc2 = Loc2;
    CP.Instrs.push_back(I);
    return CP.Instrs.size() - 1;
  }

  int32_t here() const { return static_cast<int32_t>(CP.Instrs.size()); }

  /// Patches the (single) jump-target operand of instruction \p Idx.
  void setTarget(size_t Idx, int32_t Target) {
    Instr &I = CP.Instrs[Idx];
    const OpInfo &Info = opInfo(I.Opcode);
    if (Info.A == OperandClass::Target)
      I.A = Target;
    else if (Info.B == OperandClass::Target)
      I.B = Target;
    else
      I.C = Target;
  }

  //===--------------------------------------------------------------------===//
  // Statements
  //===--------------------------------------------------------------------===//

  void compileStmt(const Stmt &S) {
    int32_t Save = Top;
    emit(Op::Step, 0, 0, 0, 0, 0, S.loc());
    switch (S.kind()) {
    case Stmt::Kind::Assign:
      compileAssign(cast<AssignStmt>(S));
      break;
    case Stmt::Kind::Expr: {
      int32_t R = compileExpr(*cast<ExprStmt>(S).expr(), -1);
      emit(Op::Drop, 0, R);
      break;
    }
    case Stmt::Kind::For:
      compileFor(cast<ForStmt>(S));
      break;
    case Stmt::Kind::While:
      compileWhile(cast<WhileStmt>(S));
      break;
    case Stmt::Kind::If:
      compileIf(cast<IfStmt>(S));
      break;
    case Stmt::Kind::Break:
      // Outside any loop the walker's Flow::Break unwinds to the top and
      // stops the program; inside one it exits the innermost loop.
      if (Loops.empty())
        emit(Op::Halt, 0, 0);
      else if (Loops.back().IsFor)
        Loops.back().ExitFixups.push_back(emit(Op::ForBreak, 0, 0));
      else
        Loops.back().ExitFixups.push_back(emit(Op::Jump, 0, 0));
      break;
    case Stmt::Kind::Continue:
      if (Loops.empty())
        emit(Op::Halt, 0, 0);
      else if (Loops.back().ContinueTarget >= 0)
        emit(Op::Jump, 0, Loops.back().ContinueTarget);
      else
        Loops.back().ContinueFixups.push_back(emit(Op::Jump, 0, 0));
      break;
    case Stmt::Kind::Return:
      emit(Op::Halt, 0, 0);
      break;
    }
    Top = Save;
  }

  void compileAssign(const AssignStmt &S) {
    int32_t RHS = compileOperand(*S.rhs(), -1);
    if (const auto *Ident = dyn_cast<IdentExpr>(S.lhs())) {
      int32_t V = varIdx(Ident->name());
      // Store fusion: when the RHS root was just emitted as a Binary or
      // FusedMulAdd into RHS, retarget it to define the variable directly
      // (flags::StoreToSlot) instead of paying a StoreVar dispatch. Safe
      // because compileExpr always leaves the producing instruction last
      // and no jump target can resolve to a point between it and the
      // store; semantics are unchanged — the walker's order (evaluate,
      // define, shape-cap check at the statement loc) is preserved, with
      // the VM taking the statement loc from the enclosing Step.
      if (RHS >= 0 && !CP.Instrs.empty()) {
        Instr &Last = CP.Instrs.back();
        if ((Last.Opcode == Op::Binary || Last.Opcode == Op::FusedMulAdd) &&
            Last.A == RHS) {
          Last.Flags |= flags::StoreToSlot;
          Last.A = V;
          markDefined(V);
          return;
        }
      }
      emit(Op::StoreVar, 0, V, RHS, 0, 0, S.loc());
      markDefined(V);
      return;
    }
    const auto *Index = dyn_cast<IndexExpr>(S.lhs());
    if (!Index || Index->baseName().empty()) {
      emit(Op::Fail, 0, strIdx("invalid assignment target"), 0, 0, 0, S.loc());
      return;
    }
    int32_t V = varIdx(Index->baseName());
    // The target is marked defined before the write is attempted, even if
    // the write then fails — exactly like defineSlotRef in the walker.
    // That also makes it definitely-defined for the subscripts that
    // follow and for every later statement.
    emit(Op::DefineRef, 0, V);
    markDefined(V);
    unsigned N = Index->numArgs();
    if (N == 0) {
      emit(Op::Fail, 0, strIdx("invalid indexed assignment"), 0, 0, 0,
           Index->loc());
      return;
    }
    if (N == 1) {
      if (isa<MagicColonExpr>(Index->arg(0))) {
        emit(Op::IndexWriteAll, 0, V, RHS, 0, 0, Index->loc(), S.loc());
        return;
      }
      int32_t Idx =
          compileSubscript(*Index->arg(0), V, /*BaseIsSlot=*/true,
                           flags::DimNumel);
      emit(Op::IndexWrite1, 0, V, Idx, RHS, 0, Index->loc(), S.loc());
      return;
    }
    if (N == 2) {
      int32_t RI = compileSubscript(*Index->arg(0), V, true, flags::DimRows);
      int32_t CI = compileSubscript(*Index->arg(1), V, true, flags::DimCols);
      emit(Op::IndexWrite2, 0, V, RI, CI, RHS, Index->loc(), S.loc());
      return;
    }
    emit(Op::Fail, 0,
         strIdx("N-dimensional indexed assignment is not supported"), 0, 0, 0,
         Index->loc());
  }

  void compileFor(const ForStmt &S) {
    int32_t Range = compileExpr(*S.range(), -1);
    int32_t FI = static_cast<int32_t>(CP.ForInfos.size());
    CP.ForInfos.push_back(makeForInfo(S));
    emit(Op::ForPrep, 0, Range, FI);
    // Bottom-tested: enter through the test, ForNext jumps back to the
    // body while iterations remain and falls through to the exit.
    size_t EntryJ = emit(Op::Jump, 0, 0);
    int32_t Body = here();
    Loops.push_back({true, -1, {}, {}});
    std::vector<bool> Pre = Defined;
    markDefined(CP.ForInfos[FI].IdxVar);
    for (const StmtPtr &BS : S.body())
      compileStmt(*BS);
    Defined = std::move(Pre); // zero-trip: nothing escapes the loop
    LoopCtx L = std::move(Loops.back());
    Loops.pop_back();
    int32_t Next = here();
    setTarget(EntryJ, Next);
    for (size_t F : L.ContinueFixups)
      setTarget(F, Next);
    emit(Op::ForNext, 0, Range, FI, Body);
    int32_t Exit = here();
    for (size_t F : L.ExitFixups)
      setTarget(F, Exit);
  }

  void compileWhile(const WhileStmt &S) {
    int32_t Head = here();
    std::vector<bool> Pre = Defined;
    size_t CondExit = compileCondExit(*S.cond());
    Loops.push_back({false, Head, {CondExit}, {}});
    for (const StmtPtr &BS : S.body())
      compileStmt(*BS);
    Defined = std::move(Pre); // the body may never run
    emit(Op::Jump, 0, Head);
    LoopCtx L = std::move(Loops.back());
    Loops.pop_back();
    int32_t Exit = here();
    for (size_t F : L.ExitFixups)
      setTarget(F, Exit);
  }

  void compileIf(const IfStmt &S) {
    std::vector<size_t> EndFixups;
    const auto &Branches = S.branches();
    std::vector<bool> Pre = Defined;
    // Intersection of the branch-exit sets; meaningful only when a final
    // else makes the chain exhaustive.
    std::vector<bool> Meet;
    bool HasElse = false, FirstOut = true;
    for (size_t I = 0, E = Branches.size(); I != E; ++I) {
      const IfStmt::Branch &Br = Branches[I];
      Defined = Pre;
      if (!Br.Cond) {
        HasElse = true;
        for (const StmtPtr &BS : Br.Body)
          compileStmt(*BS);
        meet(Meet, FirstOut);
        break; // the else branch is last by construction
      }
      size_t Skip = compileCondExit(*Br.Cond);
      for (const StmtPtr &BS : Br.Body)
        compileStmt(*BS);
      meet(Meet, FirstOut);
      if (I + 1 != E)
        EndFixups.push_back(emit(Op::Jump, 0, 0));
      setTarget(Skip, here());
    }
    for (size_t F : EndFixups)
      setTarget(F, here());
    Defined = HasElse && !FirstOut ? std::move(Meet) : std::move(Pre);
  }

  /// Intersects the current Defined set into \p Meet (the running
  /// all-branches meet of compileIf).
  void meet(std::vector<bool> &Meet, bool &First) {
    if (First) {
      Meet = Defined;
      First = false;
      return;
    }
    if (Defined.size() < Meet.size())
      Meet.resize(Defined.size());
    for (size_t I = 0; I != Meet.size(); ++I)
      Meet[I] = Meet[I] && Defined[I];
  }

  /// Emits a condition and a jump taken when it is false, returning the
  /// jump's instruction index for fixup. Top-level comparisons fuse into
  /// CmpJump; anything else evaluates then tests-and-releases.
  size_t compileCondExit(const Expr &Cond) {
    int32_t Save = Top;
    if (const auto *B = dyn_cast<BinaryExpr>(&Cond)) {
      switch (B->op()) {
      case BinaryOp::Lt:
      case BinaryOp::Gt:
      case BinaryOp::Le:
      case BinaryOp::Ge:
      case BinaryOp::Eq:
      case BinaryOp::Ne: {
        int32_t L = compileOperand(*B->lhs(), -1);
        int32_t R = compileOperand(*B->rhs(), -1);
        size_t J = emit(Op::CmpJump, static_cast<uint8_t>(B->op()), L, R, 0, 0,
                        B->loc());
        Top = Save;
        return J;
      }
      default:
        break;
      }
    }
    int32_t C = compileExpr(Cond, -1);
    size_t J = emit(Op::JumpIfFalse, flags::Release, C, 0);
    Top = Save;
    return J;
  }

  ForInfo makeForInfo(const ForStmt &S) {
    ForInfo FI;
    FI.IdxVar = varIdx(S.indexVar());
    // Accumulator reserve hints: top-level A(i) = ... in the body, i the
    // loop variable — the same scan as noteAccumulatorHints.
    for (const StmtPtr &BS : S.body()) {
      const auto *A = dyn_cast<AssignStmt>(BS.get());
      if (!A)
        continue;
      const auto *Idx = dyn_cast<IndexExpr>(A->lhs());
      if (!Idx || Idx->numArgs() != 1)
        continue;
      const auto *Arg = dyn_cast<IdentExpr>(Idx->arg(0));
      if (!Arg || Arg->name() != S.indexVar())
        continue;
      if (Idx->baseName().empty())
        continue;
      FI.HintVars.push_back(varIdx(Idx->baseName()));
    }
    return FI;
  }

  //===--------------------------------------------------------------------===//
  // Expressions
  //===--------------------------------------------------------------------===//

  /// Compiles \p E into a fresh register (the expression-stack top) and
  /// returns it. \p ExtReg holds the subscript extent for 'end', or -1
  /// outside a rewritable subscript context.
  int32_t compileExpr(const Expr &E, int32_t ExtReg) {
    int32_t Dst = allocReg();
    emitExprInto(Dst, E, ExtReg);
    return Dst;
  }

  /// Compiles \p E for a Src-class operand field: constants and
  /// definitely-defined identifiers fold into the consumer (no load
  /// instruction, no register); everything else compiles normally.
  int32_t compileOperand(const Expr &E, int32_t ExtReg) {
    if (const auto *Num = dyn_cast<NumberExpr>(&E))
      return packConstOperand(constIdx(Num->value()));
    if (const auto *Ident = dyn_cast<IdentExpr>(&E)) {
      int32_t V = varIdx(Ident->name());
      if (isDefinedVar(V))
        return packSlotOperand(V);
    }
    return compileExpr(E, ExtReg);
  }

  void emitExprInto(int32_t Dst, const Expr &E, int32_t ExtReg) {
    switch (E.kind()) {
    case Expr::Kind::Number:
      emit(Op::LoadConst, 0, Dst, constIdx(cast<NumberExpr>(E).value()));
      return;
    case Expr::Kind::String:
      emit(Op::LoadString, 0, Dst, strIdx(cast<StringExpr>(E).value()));
      return;
    case Expr::Kind::Ident:
      emit(Op::LoadIdent, 0, Dst, varIdx(cast<IdentExpr>(E).name()), 0, 0,
           E.loc());
      return;
    case Expr::Kind::MagicColon:
      emit(Op::Fail, 0, strIdx("':' is only valid inside a subscript"), 0, 0,
           0, E.loc());
      return;
    case Expr::Kind::EndKeyword:
      if (ExtReg >= 0)
        emit(Op::Move, 0, Dst, ExtReg);
      else
        emit(Op::Fail, 0, strIdx("'end' outside of a subscript"), 0, 0, 0,
             E.loc());
      return;
    case Expr::Kind::Range: {
      const auto &R = cast<RangeExpr>(E);
      int32_t Save = Top;
      int32_t Start = compileOperand(*R.start(), ExtReg);
      int32_t Step = R.step() ? compileOperand(*R.step(), ExtReg) : kNoOperand;
      int32_t Stop = compileOperand(*R.stop(), ExtReg);
      emit(Op::MakeRange, 0, Dst, Start, Step, Stop, E.loc());
      Top = Save;
      return;
    }
    case Expr::Kind::Unary: {
      const auto &U = cast<UnaryExpr>(E);
      if (U.op() == UnaryOp::Plus) {
        emitExprInto(Dst, *U.operand(), ExtReg); // unary plus is identity
        return;
      }
      int32_t Save = Top;
      int32_t Src = compileExpr(*U.operand(), ExtReg);
      emit(U.op() == UnaryOp::Minus ? Op::UnaryMinus : Op::UnaryNot, 0, Dst,
           Src);
      Top = Save;
      return;
    }
    case Expr::Kind::Transpose: {
      int32_t Save = Top;
      int32_t Src = compileExpr(*cast<TransposeExpr>(E).operand(), ExtReg);
      emit(Op::Transpose, 0, Dst, Src);
      Top = Save;
      return;
    }
    case Expr::Kind::Binary:
      emitBinaryInto(Dst, cast<BinaryExpr>(E), ExtReg);
      return;
    case Expr::Kind::Index:
      emitIndexOrCallInto(Dst, cast<IndexExpr>(E), ExtReg);
      return;
    case Expr::Kind::Matrix:
      emitMatrixInto(Dst, cast<MatrixExpr>(E));
      return;
    }
  }

  void emitBinaryInto(int32_t Dst, const BinaryExpr &E, int32_t ExtReg) {
    BinaryOp O = E.op();
    // Short-circuit logical operators: the result is always a fresh 0/1
    // scalar, so both arms cast in place.
    if (O == BinaryOp::AndAnd || O == BinaryOp::OrOr) {
      emitExprInto(Dst, *E.lhs(), ExtReg);
      emit(Op::CastBool, 0, Dst);
      size_t J = emit(O == BinaryOp::AndAnd ? Op::JumpIfFalse : Op::JumpIfTrue,
                      0, Dst, 0);
      emitExprInto(Dst, *E.rhs(), ExtReg);
      emit(Op::CastBool, 0, Dst);
      setTarget(J, here());
      return;
    }
    // (A .* B) +/- C fusion, product side preferred left — the same
    // trigger (and operand evaluation order) as evalBinary.
    if (O == BinaryOp::Add || O == BinaryOp::Sub) {
      const BinaryExpr *Prod = nullptr;
      bool ProductOnLeft = false;
      if (const auto *L = dyn_cast<BinaryExpr>(E.lhs());
          L && (L->op() == BinaryOp::DotMul || L->op() == BinaryOp::Mul)) {
        Prod = L;
        ProductOnLeft = true;
      } else if (const auto *R = dyn_cast<BinaryExpr>(E.rhs());
                 R && (R->op() == BinaryOp::DotMul ||
                       R->op() == BinaryOp::Mul)) {
        Prod = R;
      }
      if (Prod) {
        int32_t Save = Top;
        int32_t A, B, C;
        if (ProductOnLeft) {
          A = compileOperand(*Prod->lhs(), ExtReg);
          B = compileOperand(*Prod->rhs(), ExtReg);
          C = compileOperand(*E.rhs(), ExtReg);
        } else {
          C = compileOperand(*E.lhs(), ExtReg);
          A = compileOperand(*Prod->lhs(), ExtReg);
          B = compileOperand(*Prod->rhs(), ExtReg);
        }
        uint8_t F = (O == BinaryOp::Sub ? flags::FmaSubtract : 0) |
                    (ProductOnLeft ? flags::FmaProductOnLeft : 0) |
                    (Prod->op() == BinaryOp::DotMul ? flags::FmaDotMul : 0);
        emit(Op::FusedMulAdd, F, Dst, A, B, C, E.loc(), Prod->loc());
        Top = Save;
        return;
      }
    }
    // A * B' against packed-transposed data.
    if (O == BinaryOp::Mul) {
      if (const auto *T = dyn_cast<TransposeExpr>(E.rhs())) {
        int32_t Save = Top;
        int32_t L = compileExpr(*E.lhs(), ExtReg);
        int32_t B = compileExpr(*T->operand(), ExtReg);
        emit(Op::MulTransB, 0, Dst, L, B, 0, E.loc());
        Top = Save;
        return;
      }
    }
    int32_t Save = Top;
    int32_t L = compileOperand(*E.lhs(), ExtReg);
    int32_t R = compileOperand(*E.rhs(), ExtReg);
    emit(Op::Binary, static_cast<uint8_t>(O), Dst, L, R, 0, E.loc());
    Top = Save;
  }

  /// Compiles one subscript argument against \p Base (a register, or a
  /// variable when \p BaseIsSlot), opening a fresh 'end' context bound to
  /// the \p Dim extent — the compile-time image of evalSubscript.
  int32_t compileSubscript(const Expr &Arg, int32_t Base, bool BaseIsSlot,
                           uint8_t Dim) {
    uint8_t F = Dim | (BaseIsSlot ? flags::BaseIsSlot : 0);
    if (isa<MagicColonExpr>(&Arg)) {
      int32_t R = allocReg();
      emit(Op::MakeColon, F, R, Base);
      return R;
    }
    int32_t Ext = -1;
    if (mentionsEndKeyword(Arg)) {
      Ext = allocReg();
      emit(Op::LoadExtent, F, Ext, Base);
    }
    return compileOperand(Arg, Ext);
  }

  void emitIndexOrCallInto(int32_t Dst, const IndexExpr &E, int32_t ExtReg) {
    unsigned N = E.numArgs();
    std::string Name = E.baseName();
    if (Name.empty()) {
      // Expression base: index the computed value; there is no call
      // alternative. The enclosing 'end' context applies to the base.
      emitExprInto(Dst, *E.base(), ExtReg);
      if (N == 0)
        return; // reading with no subscripts yields the base itself
      if (N == 1) {
        if (isa<MagicColonExpr>(E.arg(0))) {
          emit(Op::IndexReadAll, 0, Dst, Dst);
          return;
        }
        int32_t Save = Top;
        int32_t Idx = compileSubscript(*E.arg(0), Dst, false, flags::DimNumel);
        emit(Op::IndexRead1, 0, Dst, Dst, Idx, 0, E.loc());
        Top = Save;
        return;
      }
      if (N == 2) {
        int32_t Save = Top;
        int32_t RI = compileSubscript(*E.arg(0), Dst, false, flags::DimRows);
        int32_t CI = compileSubscript(*E.arg(1), Dst, false, flags::DimCols);
        emit(Op::IndexRead2, 0, Dst, Dst, RI, CI, E.loc());
        Top = Save;
        return;
      }
      emit(Op::Fail, 0, strIdx("N-dimensional indexing is not supported"), 0,
           0, 0, E.loc());
      return;
    }

    int32_t V = varIdx(Name);
    size_t TD = emit(Op::TestDefined, 0, V, 0);
    // Defined-variable branch: subscript read.
    {
      int32_t Save = Top;
      uint8_t SlotF = flags::BaseIsSlot;
      if (N == 0) {
        emit(Op::IndexRead0, 0, Dst, V);
      } else if (N == 1) {
        if (isa<MagicColonExpr>(E.arg(0))) {
          emit(Op::IndexReadAll, SlotF, Dst, V);
        } else {
          int32_t Idx = compileSubscript(*E.arg(0), V, true, flags::DimNumel);
          emit(Op::IndexRead1, SlotF, Dst, V, Idx, 0, E.loc());
        }
      } else if (N == 2) {
        int32_t RI = compileSubscript(*E.arg(0), V, true, flags::DimRows);
        int32_t CI = compileSubscript(*E.arg(1), V, true, flags::DimCols);
        emit(Op::IndexRead2, SlotF, Dst, V, RI, CI, E.loc());
      } else {
        emit(Op::Fail, 0, strIdx("N-dimensional indexing is not supported"),
             0, 0, 0, E.loc());
      }
      Top = Save;
    }
    size_t JEnd = emit(Op::Jump, 0, 0);
    setTarget(TD, here());
    // Undefined-variable branch: builtin call (or the undefined failure).
    emit(Op::CheckCallable, 0, V,
         strIdx("undefined function or variable '" + Name + "'"), 0, 0,
         E.loc());
    {
      int32_t Save = Top;
      int32_t ArgBase = Top;
      uint8_t Depth = static_cast<uint8_t>(ArgNest > 255 ? 255 : ArgNest);
      bool Aborted = false;
      ++ArgNest;
      for (unsigned I = 0; I != N; ++I) {
        if (isa<MagicColonExpr>(E.arg(I)) || isa<EndKeywordExpr>(E.arg(I))) {
          emit(Op::Fail, 0,
               strIdx("':' and 'end' are not valid function arguments"), 0, 0,
               0, E.loc());
          Aborted = true;
          break;
        }
        compileExpr(*E.arg(I), -1); // lands contiguously at ArgBase + I
      }
      --ArgNest;
      if (!Aborted)
        emit(Op::CallBuiltin, Depth, Dst, V, ArgBase, static_cast<int32_t>(N),
             E.loc());
      Top = Save;
    }
    setTarget(JEnd, here());
  }

  void emitMatrixInto(int32_t Dst, const MatrixExpr &E) {
    const auto &Rows = E.rows();
    if (Rows.empty()) {
      emit(Op::LoadEmpty, 0, Dst);
      return;
    }
    emit(Op::MatBegin, 0, 0);
    bool FirstRow = true;
    for (const MatrixExpr::Row &Row : Rows) {
      if (FirstRow) {
        emitRowInto(Dst, Row);
        FirstRow = false;
        continue;
      }
      int32_t RowReg = allocReg();
      emitRowInto(RowReg, Row);
      emit(Op::VertCat, 0, Dst, RowReg);
      Top = RowReg;
    }
    emit(Op::MatEnd, 0, Dst, 0, 0, 0, E.loc());
  }

  void emitRowInto(int32_t RowReg, const MatrixExpr::Row &Row) {
    if (Row.empty()) {
      emit(Op::LoadEmpty, 0, RowReg);
      return;
    }
    // Matrix-literal elements never see the enclosing subscript's 'end'
    // context (replaceEndKeyword leaves matrix literals untouched).
    emitExprInto(RowReg, *Row[0], -1);
    for (size_t I = 1, E = Row.size(); I != E; ++I) {
      int32_t Save = Top;
      int32_t Elt = compileExpr(*Row[I], -1);
      emit(Op::HorzCat, 0, RowReg, Elt);
      Top = Save;
    }
  }
};

} // namespace

CompiledProgram vm::compileProgram(const Program &P,
                                   const std::string &Source) {
  return Compiler().compile(P, Source);
}
