//===- CostModel.cpp - Profitability cost model ---------------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "cost/CostModel.h"

#include "support/ContentHash.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace mvec {
namespace cost {

namespace {

/// The coefficient table, in canonical (serialization and checksum)
/// order. One row per double member so serialize/parse/checksum can never
/// drift from each other.
struct CoeffRow {
  const char *Key;
  double CostProfile::*Member;
  /// Coefficients must be positive; the assumed trip count additionally
  /// must be at least 1 (a loop that runs).
  double Min;
};

const CoeffRow Coeffs[] = {
    {"loop_iter_ns", &CostProfile::LoopIterNs, 0.0},
    {"scalar_op_ns", &CostProfile::ScalarOpNs, 0.0},
    {"vector_stmt_ns", &CostProfile::VectorStmtNs, 0.0},
    {"elementwise_ns", &CostProfile::ElementwiseNs, 0.0},
    {"fused_mul_add_ns", &CostProfile::FusedMulAddNs, 0.0},
    {"mat_mul_ns", &CostProfile::MatMulNs, 0.0},
    {"reduce_ns", &CostProfile::ReduceNs, 0.0},
    {"repmat_ns", &CostProfile::RepmatNs, 0.0},
    {"transpose_ns", &CostProfile::TransposeNs, 0.0},
    {"assumed_trip_count", &CostProfile::AssumedTripCount, 1.0},
};

/// %.17g survives a double -> text -> double round trip exactly, so the
/// checksum of a parsed profile always matches the checksum of the
/// profile that was serialized.
std::string numberText(double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  return Buf;
}

/// The checksummed payload: every field except the checksum itself, in
/// fixed order, with an unambiguous separator.
std::string canonicalPayload(const CostProfile &P) {
  std::string S = "mvec_cost_profile;v=" + std::to_string(P.Version) +
                  ";simd=" + P.SimdLevel +
                  ";calibrated=" + (P.Calibrated ? "1" : "0");
  for (const CoeffRow &Row : Coeffs) {
    S += ';';
    S += Row.Key;
    S += '=';
    S += numberText(P.*(Row.Member));
  }
  return S;
}

/// Finds `"Key"` at the top level of \p Json (no nesting awareness needed:
/// the schema never repeats a key) and returns the offset just past the
/// following ':', or npos.
size_t valueOffset(const std::string &Json, const std::string &Key) {
  std::string Needle = "\"" + Key + "\"";
  size_t At = Json.find(Needle);
  if (At == std::string::npos)
    return std::string::npos;
  size_t Colon = Json.find(':', At + Needle.size());
  if (Colon == std::string::npos)
    return std::string::npos;
  return Colon + 1;
}

bool findNumber(const std::string &Json, const std::string &Key,
                double &Out) {
  size_t At = valueOffset(Json, Key);
  if (At == std::string::npos)
    return false;
  const char *Start = Json.c_str() + At;
  char *End = nullptr;
  double V = std::strtod(Start, &End);
  if (End == Start)
    return false;
  Out = V;
  return true;
}

bool findString(const std::string &Json, const std::string &Key,
                std::string &Out) {
  size_t At = valueOffset(Json, Key);
  if (At == std::string::npos)
    return false;
  size_t Open = Json.find('"', At);
  if (Open == std::string::npos)
    return false;
  size_t Close = Json.find('"', Open + 1);
  if (Close == std::string::npos)
    return false;
  Out = Json.substr(Open + 1, Close - Open - 1);
  return true;
}

bool findBool(const std::string &Json, const std::string &Key, bool &Out) {
  size_t At = valueOffset(Json, Key);
  if (At == std::string::npos)
    return false;
  while (At < Json.size() && (Json[At] == ' ' || Json[At] == '\n' ||
                              Json[At] == '\t' || Json[At] == '\r'))
    ++At;
  if (Json.compare(At, 4, "true") == 0) {
    Out = true;
    return true;
  }
  if (Json.compare(At, 5, "false") == 0) {
    Out = false;
    return true;
  }
  return false;
}

} // namespace

uint64_t CostProfile::checksum() const {
  return fnv1aHash(canonicalPayload(*this));
}

uint64_t CostProfile::fingerprint() const {
  return fnv1aMix(checksum(), fnv1aHash(SimdLevel));
}

CostProfile defaultCostProfile() { return CostProfile(); }

std::string serializeCostProfile(const CostProfile &P) {
  std::ostringstream Out;
  Out << "{\n"
      << "  \"mvec_cost_profile\": " << P.Version << ",\n"
      << "  \"simd_level\": \"" << P.SimdLevel << "\",\n"
      << "  \"calibrated\": " << (P.Calibrated ? "true" : "false") << ",\n"
      << "  \"coefficients\": {\n";
  size_t N = sizeof(Coeffs) / sizeof(Coeffs[0]);
  for (size_t I = 0; I != N; ++I)
    Out << "    \"" << Coeffs[I].Key << "\": " << numberText(P.*(Coeffs[I].Member))
        << (I + 1 == N ? "\n" : ",\n");
  Out << "  },\n"
      << "  \"checksum\": \"" << contentHexKey(P.checksum()) << "\"\n"
      << "}\n";
  return Out.str();
}

bool parseCostProfile(const std::string &Json, CostProfile &Out,
                      std::string &Error) {
  CostProfile P;

  double Version = 0;
  if (!findNumber(Json, "mvec_cost_profile", Version)) {
    Error = "missing \"mvec_cost_profile\" version marker";
    return false;
  }
  if (Version != CostProfile::CurrentVersion) {
    Error = "version skew: profile is v" + numberText(Version) +
            ", this build reads v" +
            std::to_string(CostProfile::CurrentVersion);
    return false;
  }
  P.Version = CostProfile::CurrentVersion;

  if (!findString(Json, "simd_level", P.SimdLevel) || P.SimdLevel.empty()) {
    Error = "missing or empty \"simd_level\"";
    return false;
  }
  if (!findBool(Json, "calibrated", P.Calibrated)) {
    Error = "missing \"calibrated\"";
    return false;
  }

  for (const CoeffRow &Row : Coeffs) {
    double V = 0;
    if (!findNumber(Json, Row.Key, V)) {
      Error = std::string("missing coefficient \"") + Row.Key + "\"";
      return false;
    }
    if (!std::isfinite(V) || V <= Row.Min) {
      Error = std::string("coefficient \"") + Row.Key +
              "\" out of range: " + numberText(V);
      return false;
    }
    P.*(Row.Member) = V;
  }

  std::string ChecksumHex;
  if (!findString(Json, "checksum", ChecksumHex)) {
    Error = "missing \"checksum\"";
    return false;
  }
  uint64_t Stored = 0;
  if (!parseContentHexKey(ChecksumHex, Stored)) {
    Error = "malformed checksum \"" + ChecksumHex + "\"";
    return false;
  }
  if (Stored != P.checksum()) {
    Error = "checksum mismatch: stored " + ChecksumHex + ", computed " +
            contentHexKey(P.checksum()) + " (torn or hand-edited profile)";
    return false;
  }

  Out = P;
  return true;
}

CostProfile loadCostProfileOrDefault(const std::string &Path,
                                     std::string &Diag) {
  Diag.clear();
  if (Path.empty())
    return defaultCostProfile();

  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    Diag = "cost profile '" + Path + "' unreadable; using built-in defaults";
    return defaultCostProfile();
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();

  CostProfile P;
  std::string Error;
  if (!parseCostProfile(Buf.str(), P, Error)) {
    Diag = "cost profile '" + Path + "' rejected (" + Error +
           "); using built-in defaults";
    return defaultCostProfile();
  }
  return P;
}

CostModel::CostModel(CostProfile ProfileIn)
    : Profile(std::move(ProfileIn)), Fingerprint(Profile.fingerprint()) {}

const CostModel &builtinCostModel() {
  static const CostModel Model{defaultCostProfile()};
  return Model;
}

} // namespace cost
} // namespace mvec
