//===- CostModel.h - Profitability cost model -------------------*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The profitability model behind vectorize-vs-keep-loop decisions
/// (ROADMAP open item 2). The paper vectorizes every legal nest; at
/// production scale that is sometimes a pessimization — tiny trip counts,
/// repmat materialization blowups, transpose churn — so the code generator
/// compares an estimate of the vectorized form's kernel cost against the
/// interpreted loop's cost and keeps the loop when the loop is cheaper.
///
/// The estimate is driven by a CostProfile: per-kernel-class nanosecond
/// coefficients measured by bench/calibrate_costs against the *active*
/// SIMD dispatch level (an AVX2 matmul and a scalar one differ ~3x, so a
/// static table cannot work), persisted as a checksummed costs.mvec.json.
/// A conservative built-in profile keeps the model usable uncalibrated;
/// any corrupt, truncated or version-skewed profile file falls back to it
/// with a diagnostic, never a crash.
///
/// Every decision is surfaced: a CostDecision record per statement (the
/// `--explain-cost` output), VectorizeStats counters, ServiceMetrics and
/// daemon STATS. Cache keys at every tier (NestCache, ContentCache,
/// DiskStore) mix in fingerprint() so results produced under a differently
/// calibrated profile are never served stale.
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_COST_COSTMODEL_H
#define MVEC_COST_COSTMODEL_H

#include <cstdint>
#include <string>

namespace mvec {
namespace cost {

/// Calibrated per-kernel-class coefficients, all in nanoseconds. The
/// interpreter-side numbers (LoopIterNs, ScalarOpNs) price what a kept
/// loop costs per iteration; the kernel-side numbers price what the
/// vectorized statement's runtime kernels cost per element.
struct CostProfile {
  /// Schema version of the serialized form; bumped on layout changes.
  static constexpr int CurrentVersion = 1;

  int Version = CurrentVersion;
  /// SIMD dispatch level the calibration ran at ("scalar", "sse2",
  /// "sse4.1", "avx2" — or "default" for the built-in profile).
  std::string SimdLevel = "default";
  /// False for the built-in conservative profile, true once measured.
  bool Calibrated = false;

  /// Interpreter overhead per loop iteration (header dispatch, index
  /// variable update).
  double LoopIterNs = 150.0;
  /// Interpreter cost per scalar operation inside a loop body (tree-walk
  /// dispatch, value boxing, subscript checks).
  double ScalarOpNs = 60.0;
  /// Fixed cost of dispatching one vectorized statement (range
  /// materialization, slice extraction, result store) independent of the
  /// element count. This is what makes tiny trip counts unprofitable.
  double VectorStmtNs = 2500.0;
  /// Per-element cost of elementwise kernels (+, -, .*, ./, compares).
  double ElementwiseNs = 4.0;
  /// Per-element cost of the fused multiply-add kernel (a .* b + c).
  double FusedMulAddNs = 3.0;
  /// Per-multiply-add cost of native matrix multiplication.
  double MatMulNs = 2.0;
  /// Per-element cost of reductions (sum).
  double ReduceNs = 3.0;
  /// Per-element materialization cost of repmat temporaries.
  double RepmatNs = 6.0;
  /// Per-element materialization cost of transposes.
  double TransposeNs = 6.0;
  /// Trip count assumed for loops whose bounds resist static evaluation:
  /// the "assume large" symbolic fallback. Large enough that unknown
  /// bounds vectorize (the paper's default behavior), small enough that
  /// the estimate stays honest about moderate nests.
  double AssumedTripCount = 64.0;

  /// FNV-1a over the canonical serialized payload (everything except the
  /// checksum field itself). Persisted inside costs.mvec.json so a torn
  /// or hand-edited profile is detected on load.
  uint64_t checksum() const;

  /// Cache-key salt: fnv1aMix of the checksum and the (hashed) SIMD
  /// level. Mixed into every options fingerprint when a model is active,
  /// so NestCache/ContentCache/DiskStore entries from a differently
  /// calibrated run are never served.
  uint64_t fingerprint() const;
};

/// The built-in conservative profile (Calibrated = false).
CostProfile defaultCostProfile();

/// Renders \p P as the costs.mvec.json document (pretty-printed, with the
/// checksum field filled in).
std::string serializeCostProfile(const CostProfile &P);

/// Parses a document produced by serializeCostProfile. Returns false with
/// \p Error set on any defect: malformed JSON, missing keys, version skew,
/// non-finite or non-positive coefficients, checksum mismatch. \p Out is
/// untouched on failure.
bool parseCostProfile(const std::string &Json, CostProfile &Out,
                      std::string &Error);

/// Loads \p Path, falling back to defaultCostProfile() on any failure
/// (unreadable file, parse error, checksum mismatch) with \p Diag set to
/// a one-line description; \p Diag stays empty on success. An empty
/// \p Path returns the default profile silently (the "On" mode without a
/// profile). Never throws.
CostProfile loadCostProfileOrDefault(const std::string &Path,
                                     std::string &Diag);

/// Operation-class counts of one vectorized statement, gathered by a walk
/// over the transformed AST (vectorizer/Codegen.cpp owns the walk; the
/// pricing lives here so the benchmarks and tests can price the same
/// counts).
struct KernelCounts {
  unsigned Elementwise = 0; ///< pointwise binary/unary ops, slices, stores
  unsigned FusedMulAdd = 0; ///< a .* b + c shapes (fused kernel)
  unsigned MatMul = 0;      ///< native '*' products
  unsigned Reduce = 0;      ///< sum() reductions
  unsigned Repmat = 0;      ///< repmat materializations
  unsigned Transpose = 0;   ///< transpose materializations

  unsigned total() const {
    return Elementwise + FusedMulAdd + MatMul + Reduce + Repmat + Transpose;
  }
};

/// An immutable profile plus the estimation primitives codegen consults.
/// Thread-safe (const after construction); one instance is shared by
/// every worker of a service.
class CostModel {
public:
  explicit CostModel(CostProfile Profile = defaultCostProfile());

  const CostProfile &profile() const { return Profile; }
  uint64_t fingerprint() const { return Fingerprint; }
  /// The symbolic-trip-count fallback ("assume large").
  double assumedTrip() const { return Profile.AssumedTripCount; }

  /// Estimated cost (ns) of running the interpreted loop form:
  /// \p TotalIters loop iterations of a body with \p OpCount scalar
  /// operations.
  double loopCost(double TotalIters, unsigned OpCount) const {
    return TotalIters * (Profile.LoopIterNs +
                         Profile.ScalarOpNs * static_cast<double>(OpCount));
  }

  /// Estimated cost (ns) of the vectorized form: \p OuterIters sequential
  /// executions of one vector statement whose kernels touch \p VecElems
  /// elements each, plus the per-iteration overhead of the sequential
  /// shell loops themselves.
  double vectorCost(const KernelCounts &K, double VecElems,
                    double OuterIters) const {
    double PerExec = Profile.VectorStmtNs + kernelCost(K, VecElems);
    return OuterIters * (PerExec + Profile.LoopIterNs);
  }

  /// The kernel portion alone: per-element coefficients times \p Elems.
  double kernelCost(const KernelCounts &K, double Elems) const {
    return Elems * (Profile.ElementwiseNs * K.Elementwise +
                    Profile.FusedMulAddNs * K.FusedMulAdd +
                    Profile.MatMulNs * K.MatMul + Profile.ReduceNs * K.Reduce +
                    Profile.RepmatNs * K.Repmat +
                    Profile.TransposeNs * K.Transpose);
  }

private:
  CostProfile Profile;
  uint64_t Fingerprint;
};

/// The process-wide model over the built-in default profile, for callers
/// that enable the cost model without supplying a calibration (built once,
/// read-only ever after).
const CostModel &builtinCostModel();

/// One vectorize-vs-keep-loop verdict, recorded per nest statement when a
/// decision log is attached (mvec_tool --explain-cost).
struct CostDecision {
  /// Source line of the statement inside its nest.
  unsigned Line = 0;
  /// The original statement, printed.
  std::string Stmt;
  /// True when the statement was emitted in vector form.
  bool Vectorized = false;
  /// Chosen vectorization level (1-based; 0 when the loop was kept).
  unsigned ChosenLevel = 0;
  /// Estimated cost of the best vectorized candidate (ns; 0 when no level
  /// was legal).
  double VectorNs = 0;
  /// Estimated cost of the interpreted loop form (ns).
  double LoopNs = 0;
  /// True when the multiplication-chain variant chosen by cost differs
  /// from the default most-reductions-folded preference.
  bool VariantOverride = false;
  /// Per-level candidate summary ("L1: 3120ns, L2: 870ns"), or why no
  /// decision was possible.
  std::string Detail;
};

} // namespace cost
} // namespace mvec

#endif // MVEC_COST_COSTMODEL_H
