//===- AffineExpr.cpp - Affine index expressions ---------------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "deps/AffineExpr.h"

#include "support/StringExtras.h"

#include <cmath>

using namespace mvec;

std::optional<AffineExpr> AffineExpr::fromExpr(const Expr &E) {
  switch (E.kind()) {
  case Expr::Kind::Number:
    return AffineExpr(cast<NumberExpr>(E).value());
  case Expr::Kind::Ident:
    return AffineExpr::variable(cast<IdentExpr>(E).name());
  case Expr::Kind::Unary: {
    const auto &U = cast<UnaryExpr>(E);
    auto Inner = fromExpr(*U.operand());
    if (!Inner)
      return std::nullopt;
    switch (U.op()) {
    case UnaryOp::Plus:
      return Inner;
    case UnaryOp::Minus:
      return Inner->scaled(-1.0);
    case UnaryOp::Not:
      return std::nullopt;
    }
    return std::nullopt;
  }
  case Expr::Kind::Binary: {
    const auto &B = cast<BinaryExpr>(E);
    auto L = fromExpr(*B.lhs());
    auto R = fromExpr(*B.rhs());
    if (!L || !R)
      return std::nullopt;
    switch (B.op()) {
    case BinaryOp::Add:
      return *L + *R;
    case BinaryOp::Sub:
      return *L - *R;
    case BinaryOp::Mul:
    case BinaryOp::DotMul:
      if (L->isConstant())
        return R->scaled(L->constant());
      if (R->isConstant())
        return L->scaled(R->constant());
      return std::nullopt;
    case BinaryOp::Div:
    case BinaryOp::DotDiv:
      if (R->isConstant() && R->constant() != 0.0)
        return L->scaled(1.0 / R->constant());
      return std::nullopt;
    default:
      return std::nullopt;
    }
  }
  default:
    return std::nullopt;
  }
}

AffineExpr AffineExpr::operator+(const AffineExpr &O) const {
  AffineExpr Result = *this;
  Result.Constant += O.Constant;
  for (const auto &[Name, Coeff] : O.Coeffs) {
    double &Slot = Result.Coeffs[Name];
    Slot += Coeff;
    if (Slot == 0.0)
      Result.Coeffs.erase(Name);
  }
  return Result;
}

AffineExpr AffineExpr::operator-(const AffineExpr &O) const {
  return *this + O.scaled(-1.0);
}

AffineExpr AffineExpr::scaled(double Factor) const {
  AffineExpr Result;
  if (Factor == 0.0)
    return Result;
  Result.Constant = Constant * Factor;
  for (const auto &[Name, Coeff] : Coeffs)
    Result.Coeffs[Name] = Coeff * Factor;
  return Result;
}

ExprPtr AffineExpr::toExpr() const {
  ExprPtr Result;
  auto Append = [&Result](ExprPtr Term, bool Negative) {
    if (!Result) {
      Result = Negative ? makeUnary(UnaryOp::Minus, std::move(Term))
                        : std::move(Term);
      return;
    }
    Result = makeBinary(Negative ? BinaryOp::Sub : BinaryOp::Add,
                        std::move(Result), std::move(Term));
  };

  for (const auto &[Name, Coeff] : Coeffs) {
    double Abs = std::fabs(Coeff);
    ExprPtr Term = Abs == 1.0
                       ? makeIdent(Name)
                       : makeBinary(BinaryOp::Mul, makeNumber(Abs),
                                    makeIdent(Name));
    Append(std::move(Term), Coeff < 0);
  }
  if (Constant != 0.0 || !Result)
    Append(makeNumber(std::fabs(Constant)), Constant < 0);
  return Result;
}

std::string AffineExpr::str() const {
  std::string Out = formatMatlabNumber(Constant);
  for (const auto &[Name, Coeff] : Coeffs)
    Out += (Coeff >= 0 ? "+" : "") + formatMatlabNumber(Coeff) + "*" + Name;
  return Out;
}
