//===- LoopNest.h - Loop nest extraction and normalization ------*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Extracts a vectorization candidate from a for-loop: the chain of nested
/// loop headers and the assignment statements at each depth, after the
/// eligibility checks of the paper's Sec. 4 (for-loops only, no embedded
/// control flow, no writes to an index variable) and index-variable
/// normalization (for i=2:2:1500 becomes i=1:750 with occurrences rewritten
/// to 2*i — reproducing the paper's Fig. 4 output form).
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_DEPS_LOOPNEST_H
#define MVEC_DEPS_LOOPNEST_H

#include "deps/AffineExpr.h"
#include "frontend/AST.h"
#include "shape/Dim.h"

#include <optional>
#include <string>
#include <vector>

namespace mvec {

/// One loop of the nest chain (the paper's loopHeaders entry).
struct LoopHeader {
  Symbol IndexSym; ///< interned index variable; == is a pointer compare
  LoopId Id = 0;   ///< 1-based, unique within the nest.
  ForStmt *Loop = nullptr;

  /// Spelling of the index variable, for diagnostics and affine forms.
  const std::string &indexVar() const { return IndexSym.str(); }

  // Range components (owned by Loop's range expression). Step is null for
  // the implicit step of 1.
  const Expr *Start = nullptr;
  const Expr *Step = nullptr;
  const Expr *Stop = nullptr;

  /// Affine forms of the bounds when extractable (used by the dependence
  /// disproof: j in [1, i-1]).
  std::optional<AffineExpr> StartAffine;
  std::optional<AffineExpr> StopAffine;
  /// Constant step when known (1.0 after successful normalization).
  std::optional<double> StepConst;

  /// Clone of the full range expression (start:step:stop), for index
  /// substitution.
  ExprPtr makeRangeExpr() const;
  /// size((range),2) — the trip count as an expression (paper Table 2).
  ExprPtr makeTripCountExpr() const;
};

/// An assignment statement inside the nest, with the number of loops
/// enclosing it (1 = directly inside the outermost loop).
struct NestStmt {
  AssignStmt *S = nullptr;
  unsigned Depth = 0;
};

/// A vectorization candidate: a chain of loops plus the statements at each
/// depth, in source order.
struct LoopNest {
  std::vector<LoopHeader> Loops; ///< outermost first
  std::vector<NestStmt> Stmts;   ///< source order

  unsigned depth() const { return Loops.size(); }
  const LoopHeader *headerFor(LoopId Id) const {
    for (const LoopHeader &H : Loops)
      if (H.Id == Id)
        return &H;
    return nullptr;
  }
};

/// Normalizes \p Loop in place when its range has constant start/step:
/// rewrites the range to 1:n and every body occurrence of the index
/// variable to step*i+(start-step). Recurses into nested loops. No-op when
/// bounds resist normalization.
void normalizeLoopIndices(ForStmt &Loop);

/// Builds the nest chain rooted at \p Root. Returns nullopt and sets
/// \p Reason when the nest is not a vectorization candidate (embedded
/// control flow, writes to an index variable, non-range loop bounds,
/// sibling inner loops, non-assignment statements).
std::optional<LoopNest> buildLoopNest(ForStmt &Root, std::string &Reason);

} // namespace mvec

#endif // MVEC_DEPS_LOOPNEST_H
