//===- DepGraph.cpp - Data dependence graph --------------------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "deps/DepGraph.h"

#include <algorithm>
#include <cassert>

using namespace mvec;

const char *mvec::depKindName(DepKind Kind) {
  switch (Kind) {
  case DepKind::Flow:
    return "flow";
  case DepKind::Anti:
    return "anti";
  case DepKind::Output:
    return "output";
  }
  return "?";
}

std::string DepGraph::str() const {
  std::string Out;
  for (const DepEdge &E : Edges) {
    Out += "S" + std::to_string(E.Src) + " -> S" + std::to_string(E.Dst) +
           " [" + depKindName(E.Kind) + ", ";
    Out += E.Level == 0 ? "independent" : "level " + std::to_string(E.Level);
    Out += ", " + E.Variable + "]\n";
  }
  return Out;
}

namespace {

/// Iterative Tarjan SCC.
class TarjanSCC {
public:
  TarjanSCC(unsigned NumNodes, const std::vector<std::vector<unsigned>> &Adj)
      : Adj(Adj), Index(NumNodes, UINT32_MAX), LowLink(NumNodes, 0),
        OnStack(NumNodes, false) {
    for (unsigned N = 0; N != NumNodes; ++N)
      if (Index[N] == UINT32_MAX)
        strongConnect(N);
  }

  std::vector<std::vector<unsigned>> takeComponents() {
    return std::move(Components);
  }

private:
  void strongConnect(unsigned Root) {
    // Iterative DFS with an explicit frame stack.
    struct Frame {
      unsigned Node;
      size_t NextEdge;
    };
    std::vector<Frame> Frames;
    Frames.push_back({Root, 0});
    Index[Root] = LowLink[Root] = NextIndex++;
    Stack.push_back(Root);
    OnStack[Root] = true;

    while (!Frames.empty()) {
      Frame &F = Frames.back();
      if (F.NextEdge < Adj[F.Node].size()) {
        unsigned Succ = Adj[F.Node][F.NextEdge++];
        if (Index[Succ] == UINT32_MAX) {
          Index[Succ] = LowLink[Succ] = NextIndex++;
          Stack.push_back(Succ);
          OnStack[Succ] = true;
          Frames.push_back({Succ, 0});
        } else if (OnStack[Succ]) {
          LowLink[F.Node] = std::min(LowLink[F.Node], Index[Succ]);
        }
        continue;
      }
      // Finished this node.
      unsigned Node = F.Node;
      Frames.pop_back();
      if (!Frames.empty())
        LowLink[Frames.back().Node] =
            std::min(LowLink[Frames.back().Node], LowLink[Node]);
      if (LowLink[Node] == Index[Node]) {
        std::vector<unsigned> Component;
        while (true) {
          unsigned Popped = Stack.back();
          Stack.pop_back();
          OnStack[Popped] = false;
          Component.push_back(Popped);
          if (Popped == Node)
            break;
        }
        std::sort(Component.begin(), Component.end());
        Components.push_back(std::move(Component));
      }
    }
  }

  const std::vector<std::vector<unsigned>> &Adj;
  std::vector<unsigned> Index, LowLink;
  std::vector<bool> OnStack;
  std::vector<unsigned> Stack;
  unsigned NextIndex = 0;
  std::vector<std::vector<unsigned>> Components;
};

} // namespace

std::vector<std::vector<unsigned>>
mvec::stronglyConnectedComponents(const DepGraph &Graph, unsigned MinLevel) {
  std::vector<std::vector<unsigned>> Adj(Graph.NumNodes);
  for (const DepEdge &E : Graph.Edges) {
    if (E.Level != 0 && E.Level < MinLevel)
      continue;
    if (E.Src == E.Dst)
      continue; // self edges do not affect SCC membership
    Adj[E.Src].push_back(E.Dst);
  }
  TarjanSCC Tarjan(Graph.NumNodes, Adj);
  std::vector<std::vector<unsigned>> Components = Tarjan.takeComponents();

  // Tarjan emits components in reverse topological order; reverse, then
  // stable-sort independent components by their smallest statement index so
  // generated code follows source order whenever dependences allow.
  std::reverse(Components.begin(), Components.end());

  // Verify/repair topological order with a stable insertion: build a
  // component index per node.
  std::vector<unsigned> CompOf(Graph.NumNodes, 0);
  for (unsigned C = 0; C != Components.size(); ++C)
    for (unsigned N : Components[C])
      CompOf[N] = C;

  // Kahn's algorithm over the condensation with a min-heap keyed by the
  // smallest statement index, for deterministic source-order-friendly
  // output.
  unsigned NumComps = Components.size();
  std::vector<std::vector<unsigned>> CompAdj(NumComps);
  std::vector<unsigned> InDegree(NumComps, 0);
  for (const DepEdge &E : Graph.Edges) {
    if (E.Level != 0 && E.Level < MinLevel)
      continue;
    unsigned A = CompOf[E.Src], B = CompOf[E.Dst];
    if (A == B)
      continue;
    CompAdj[A].push_back(B);
  }
  for (unsigned C = 0; C != NumComps; ++C) {
    std::sort(CompAdj[C].begin(), CompAdj[C].end());
    CompAdj[C].erase(std::unique(CompAdj[C].begin(), CompAdj[C].end()),
                     CompAdj[C].end());
  }
  for (unsigned C = 0; C != NumComps; ++C)
    for (unsigned Succ : CompAdj[C])
      ++InDegree[Succ];

  std::vector<unsigned> Ready;
  for (unsigned C = 0; C != NumComps; ++C)
    if (InDegree[C] == 0)
      Ready.push_back(C);
  auto BySmallestStmt = [&Components](unsigned A, unsigned B) {
    return Components[A].front() > Components[B].front();
  };
  std::make_heap(Ready.begin(), Ready.end(), BySmallestStmt);

  std::vector<std::vector<unsigned>> Ordered;
  Ordered.reserve(NumComps);
  while (!Ready.empty()) {
    std::pop_heap(Ready.begin(), Ready.end(), BySmallestStmt);
    unsigned C = Ready.back();
    Ready.pop_back();
    Ordered.push_back(Components[C]);
    for (unsigned Succ : CompAdj[C]) {
      if (--InDegree[Succ] == 0) {
        Ready.push_back(Succ);
        std::push_heap(Ready.begin(), Ready.end(), BySmallestStmt);
      }
    }
  }
  assert(Ordered.size() == NumComps && "condensation had a cycle?");
  return Ordered;
}

bool mvec::hasSelfRecurrence(const DepGraph &Graph, unsigned Node,
                             unsigned MinLevel) {
  for (const DepEdge &E : Graph.Edges)
    if (E.Src == Node && E.Dst == Node && E.Level >= MinLevel &&
        E.Level != 0)
      return true;
  return false;
}
