//===- LoopNest.cpp - Loop nest extraction and normalization ---------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "deps/LoopNest.h"

#include "frontend/ASTUtils.h"
#include "frontend/Simplify.h"

#include <cmath>

using namespace mvec;

ExprPtr LoopHeader::makeRangeExpr() const {
  return makeRange(Start->clone(), Step ? Step->clone() : nullptr,
                   Stop->clone());
}

ExprPtr LoopHeader::makeTripCountExpr() const {
  std::vector<ExprPtr> Args;
  Args.push_back(makeRangeExpr());
  Args.push_back(makeNumber(2));
  return makeCall("size", std::move(Args));
}

//===----------------------------------------------------------------------===//
// Normalization
//===----------------------------------------------------------------------===//

void mvec::normalizeLoopIndices(ForStmt &Loop) {
  // Recurse first so inner substitutions see original outer names (the
  // rewrites commute, but bottom-up keeps each step local).
  for (StmtPtr &S : Loop.body())
    if (auto *Inner = dyn_cast<ForStmt>(S.get()))
      normalizeLoopIndices(*Inner);

  const auto *Range = dyn_cast<RangeExpr>(Loop.range());
  if (!Range)
    return;
  double Start = 0, Step = 1;
  if (!evaluateConstant(*Range->start(), Start))
    return;
  if (Range->step() && !evaluateConstant(*Range->step(), Step))
    return;
  if (Step == 0)
    return;
  if (Start == 1 && Step == 1)
    return; // already normalized

  ExprPtr NewStop;
  if (Step == 1) {
    // i = c:n  ->  i = 1:(n-(c-1)), occurrences become i+(c-1). Exact for
    // symbolic n.
    NewStop = simplifyExpr(makeBinary(BinaryOp::Sub, Range->stop()->clone(),
                                      makeNumber(Start - 1)));
  } else {
    // Non-unit steps need a constant trip count.
    double Stop = 0;
    if (!evaluateConstant(*Range->stop(), Stop))
      return;
    double Trip = std::floor((Stop - Start) / Step) + 1;
    if (Trip < 1)
      return; // empty or degenerate; leave untouched
    NewStop = makeNumber(Trip);
  }

  // Replacement expression: step*i + (start-step).
  ExprPtr Repl = simplifyExpr(makeBinary(
      BinaryOp::Add,
      makeBinary(BinaryOp::Mul, makeNumber(Step),
                 makeIdent(Loop.indexVar())),
      makeNumber(Start - Step)));

  // Rewrite every occurrence in the body (including nested loop bounds).
  struct Rewriter {
    const std::string &Name;
    const Expr &Repl;

    void rewriteBody(std::vector<StmtPtr> &Body) {
      for (StmtPtr &S : Body)
        rewriteStmt(*S);
    }

    void rewriteStmt(Stmt &S) {
      switch (S.kind()) {
      case Stmt::Kind::Assign: {
        auto &A = cast<AssignStmt>(S);
        A.setLHS(substituteIdentifier(A.takeLHS(), Name, Repl));
        A.setRHS(substituteIdentifier(A.takeRHS(), Name, Repl));
        return;
      }
      case Stmt::Kind::Expr:
        // Expression statements make the nest ineligible anyway; skip.
        return;
      case Stmt::Kind::For: {
        auto &F = cast<ForStmt>(S);
        ExprPtr Range = F.range()->clone();
        F.setRange(substituteIdentifier(std::move(Range), Name, Repl));
        rewriteBody(F.body());
        return;
      }
      case Stmt::Kind::While: {
        rewriteBody(cast<WhileStmt>(S).body());
        return;
      }
      case Stmt::Kind::If: {
        for (IfStmt::Branch &B : cast<IfStmt>(S).branches())
          rewriteBody(B.Body);
        return;
      }
      default:
        return;
      }
    }
  };
  Rewriter R{Loop.indexVar(), *Repl};
  R.rewriteBody(Loop.body());

  Loop.setRange(makeRange(makeNumber(1), nullptr, std::move(NewStop)));
}

//===----------------------------------------------------------------------===//
// Nest construction
//===----------------------------------------------------------------------===//

namespace {

/// Collects all identifier names written by assignments under \p Body.
void collectWrittenNames(const std::vector<StmtPtr> &Body,
                         std::set<Symbol> &Names) {
  visitStmts(Body, [&Names](const Stmt &S) {
    if (const auto *A = dyn_cast<AssignStmt>(&S))
      Names.insert(A->targetSym());
  });
}

} // namespace

namespace {

/// Walks the nest chain in source order, building headers and statements.
bool walkNest(ForStmt &Current, LoopNest &Nest,
              std::set<Symbol> &IndexVars, std::string &Reason) {
  if (IndexVars.count(Current.indexSym())) {
    Reason =
        "nested loops reuse index variable '" + Current.indexVar() + "'";
    return false;
  }
  IndexVars.insert(Current.indexSym());

  const auto *Range = dyn_cast<RangeExpr>(Current.range());
  if (!Range) {
    Reason = "loop over '" + Current.indexVar() +
             "' does not iterate over a range expression";
    return false;
  }

  LoopHeader Header;
  Header.IndexSym = Current.indexSym();
  Header.Id = static_cast<LoopId>(Nest.Loops.size() + 1);
  Header.Loop = &Current;
  Header.Start = Range->start();
  Header.Step = Range->step();
  Header.Stop = Range->stop();
  Header.StartAffine = AffineExpr::fromExpr(*Range->start());
  Header.StopAffine = AffineExpr::fromExpr(*Range->stop());
  if (!Range->step())
    Header.StepConst = 1.0;
  else {
    double Step = 0;
    if (evaluateConstant(*Range->step(), Step))
      Header.StepConst = Step;
  }
  Nest.Loops.push_back(Header);
  unsigned Depth = Nest.Loops.size();

  bool SawInner = false;
  for (StmtPtr &S : Current.body()) {
    switch (S->kind()) {
    case Stmt::Kind::Assign:
      Nest.Stmts.push_back(NestStmt{cast<AssignStmt>(S.get()), Depth});
      break;
    case Stmt::Kind::For:
      if (SawInner) {
        Reason = "loop body contains sibling inner loops";
        return false;
      }
      SawInner = true;
      if (!walkNest(*cast<ForStmt>(S.get()), Nest, IndexVars, Reason))
        return false;
      break;
    case Stmt::Kind::If:
    case Stmt::Kind::While:
      Reason = "loop body contains embedded control statements";
      return false;
    case Stmt::Kind::Break:
    case Stmt::Kind::Continue:
    case Stmt::Kind::Return:
      Reason = "loop body transfers control out of the loop";
      return false;
    case Stmt::Kind::Expr:
      Reason = "loop body contains a non-assignment statement";
      return false;
    }
  }
  return true;
}

} // namespace

std::optional<LoopNest> mvec::buildLoopNest(ForStmt &Root,
                                            std::string &Reason) {
  LoopNest Nest;
  std::set<Symbol> IndexVars;
  if (!walkNest(Root, Nest, IndexVars, Reason))
    return std::nullopt;

  // No statement may write an index variable (paper Sec. 4), and loop
  // bounds must not depend on variables written inside the nest.
  std::set<Symbol> Written;
  collectWrittenNames(Root.body(), Written);
  for (Symbol IndexVar : IndexVars) {
    if (Written.count(IndexVar)) {
      Reason =
          "loop writes to its own index variable '" + IndexVar.str() + "'";
      return std::nullopt;
    }
  }
  for (const LoopHeader &H : Nest.Loops) {
    std::set<Symbol> BoundNames;
    collectIdentifiers(*H.Start, BoundNames);
    if (H.Step)
      collectIdentifiers(*H.Step, BoundNames);
    collectIdentifiers(*H.Stop, BoundNames);
    for (Symbol Name : BoundNames) {
      if (Written.count(Name)) {
        Reason = "bounds of loop '" + H.indexVar() + "' depend on '" +
                 Name.str() + "' written inside the nest";
        return std::nullopt;
      }
    }
  }

  if (Nest.Stmts.empty()) {
    Reason = "loop nest contains no assignments";
    return std::nullopt;
  }
  return Nest;
}
