//===- DepAnalysis.cpp - Dependence testing --------------------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "deps/DepAnalysis.h"

#include "frontend/ASTUtils.h"
#include "interp/Builtins.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

using namespace mvec;

namespace {

/// One array/variable access inside a statement.
struct AccessInfo {
  Symbol Var;
  bool Write = false;
  const IndexExpr *Subs = nullptr; ///< null = whole-variable access
};

/// Direction possibilities at one loop level.
struct DirSet {
  bool LT = true, EQ = true, GT = true;

  static DirSet full() { return DirSet(); }
  static DirSet only(char C) {
    DirSet D;
    D.LT = C == '<';
    D.EQ = C == '=';
    D.GT = C == '>';
    return D;
  }
  bool empty() const { return !LT && !EQ && !GT; }
  void intersect(const DirSet &O) {
    LT &= O.LT;
    EQ &= O.EQ;
    GT &= O.GT;
  }
};

class DepBuilder {
public:
  DepBuilder(const LoopNest &Nest, const ShapeEnv &Env)
      : Nest(Nest), Env(Env) {
    for (const LoopHeader &H : Nest.Loops) {
      LoopVars.insert(H.IndexSym);
      // Affine forms carry plain coefficient names; keep a string view of
      // the same set for those membership tests.
      LoopVarNames.insert(H.indexVar());
    }
    for (const NestStmt &S : Nest.Stmts)
      WrittenVars.insert(S.S->targetSym());
  }

  DepGraph build();

private:
  std::vector<AccessInfo> collectAccesses(const AssignStmt &S) const;
  void collectReads(const Expr &E, std::vector<AccessInfo> &Out) const;
  bool isArrayAccess(const IndexExpr &I) const;
  bool isScalarPure(const Expr &E) const;

  void testPair(unsigned S1, const AccessInfo &W, unsigned S2,
                const AccessInfo &A);
  void emitEdges(unsigned S1, unsigned S2, Symbol Var, bool AIsWrite,
                 unsigned Common, const std::vector<DirSet> &Dirs);
  void addEdge(unsigned Src, unsigned Dst, unsigned Level, DepKind Kind,
               Symbol Var);

  /// Symbolic interval of \p E with loop variables expanded to their bound
  /// intervals. Returns false when unbounded.
  bool intervalOf(const AffineExpr &E, AffineInterval &Out,
                  unsigned Depth = 0) const;
  const LoopHeader *loopByVar(const std::string &Name) const;

  /// Memoized AffineExpr::fromExpr / isScalarPure, keyed by node identity.
  /// Every (write, access) pair re-tests the same subscripts, so without
  /// the memo both analyses run O(pairs) times per subscript expression.
  const std::optional<AffineExpr> &affineOf(const Expr &E) const {
    auto It = AffineCache.find(&E);
    if (It == AffineCache.end())
      It = AffineCache.emplace(&E, AffineExpr::fromExpr(E)).first;
    return It->second;
  }
  bool scalarPure(const Expr &E) const {
    auto [It, New] = ScalarPureCache.try_emplace(&E, false);
    if (New)
      It->second = isScalarPure(E);
    return It->second;
  }

  const LoopNest &Nest;
  const ShapeEnv &Env;
  std::set<Symbol> LoopVars;
  std::set<std::string> LoopVarNames;
  std::set<Symbol> WrittenVars;
  std::vector<DepEdge> Edges;
  mutable std::unordered_map<const Expr *, std::optional<AffineExpr>>
      AffineCache;
  mutable std::unordered_map<const Expr *, bool> ScalarPureCache;
};

bool DepBuilder::isArrayAccess(const IndexExpr &I) const {
  Symbol Name = I.baseSym();
  if (Name.empty())
    return false; // expression base: treated via recursion on the base
  if (Env.knows(Name.str()) || WrittenVars.count(Name) ||
      LoopVars.count(Name))
    return true;
  return !isBuiltinName(Name.str());
}

void DepBuilder::collectReads(const Expr &E,
                              std::vector<AccessInfo> &Out) const {
  switch (E.kind()) {
  case Expr::Kind::Number:
  case Expr::Kind::String:
  case Expr::Kind::MagicColon:
  case Expr::Kind::EndKeyword:
    return;
  case Expr::Kind::Ident:
    Out.push_back(AccessInfo{cast<IdentExpr>(E).sym(), false, nullptr});
    return;
  case Expr::Kind::Range: {
    const auto &R = cast<RangeExpr>(E);
    collectReads(*R.start(), Out);
    if (R.step())
      collectReads(*R.step(), Out);
    collectReads(*R.stop(), Out);
    return;
  }
  case Expr::Kind::Unary:
    collectReads(*cast<UnaryExpr>(E).operand(), Out);
    return;
  case Expr::Kind::Binary: {
    const auto &B = cast<BinaryExpr>(E);
    collectReads(*B.lhs(), Out);
    collectReads(*B.rhs(), Out);
    return;
  }
  case Expr::Kind::Transpose:
    collectReads(*cast<TransposeExpr>(E).operand(), Out);
    return;
  case Expr::Kind::Index: {
    const auto &I = cast<IndexExpr>(E);
    if (isArrayAccess(I))
      Out.push_back(AccessInfo{I.baseSym(), false, &I});
    else if (I.baseSym().empty())
      collectReads(*I.base(), Out);
    for (unsigned A = 0, N = I.numArgs(); A != N; ++A)
      collectReads(*I.arg(A), Out);
    return;
  }
  case Expr::Kind::Matrix:
    for (const auto &Row : cast<MatrixExpr>(E).rows())
      for (const ExprPtr &Elt : Row)
        collectReads(*Elt, Out);
    return;
  }
}

std::vector<AccessInfo>
DepBuilder::collectAccesses(const AssignStmt &S) const {
  std::vector<AccessInfo> Out;
  // The write access.
  if (const auto *Ident = dyn_cast<IdentExpr>(S.lhs())) {
    Out.push_back(AccessInfo{Ident->sym(), true, nullptr});
  } else if (const auto *Index = dyn_cast<IndexExpr>(S.lhs())) {
    Out.push_back(AccessInfo{Index->baseSym(), true, Index});
    for (unsigned A = 0, N = Index->numArgs(); A != N; ++A)
      collectReads(*Index->arg(A), Out);
  }
  collectReads(*S.rhs(), Out);
  return Out;
}

bool DepBuilder::isScalarPure(const Expr &E) const {
  bool Pure = true;
  visitExpr(E, [this, &Pure](const Expr &Node) {
    if (const auto *Ident = dyn_cast<IdentExpr>(&Node)) {
      if (LoopVars.count(Ident->sym()))
        return;
      if (Env.isScalar(Ident->name()))
        return;
      Pure = false;
    } else if (isa<IndexExpr>(&Node) || isa<MagicColonExpr>(&Node) ||
               isa<MatrixExpr>(&Node) || isa<RangeExpr>(&Node) ||
               isa<EndKeywordExpr>(&Node) || isa<StringExpr>(&Node)) {
      Pure = false;
    }
  });
  return Pure;
}

const LoopHeader *DepBuilder::loopByVar(const std::string &Name) const {
  for (const LoopHeader &H : Nest.Loops)
    if (H.indexVar() == Name)
      return &H;
  return nullptr;
}

bool DepBuilder::intervalOf(const AffineExpr &E, AffineInterval &Out,
                            unsigned Depth) const {
  if (Depth > Nest.Loops.size() + 2)
    return false; // give up on pathological bound chains
  AffineInterval Acc = AffineInterval::point(AffineExpr(E.constant()));
  for (const auto &[Name, Coeff] : E.coeffs()) {
    AffineInterval VarInterval;
    if (const LoopHeader *H = loopByVar(Name)) {
      if (!H->StartAffine || !H->StopAffine || !H->StepConst)
        return false;
      AffineInterval Bounds;
      if (!intervalOf(*H->StartAffine, Bounds, Depth + 1))
        return false;
      AffineInterval StopBounds;
      if (!intervalOf(*H->StopAffine, StopBounds, Depth + 1))
        return false;
      if (*H->StepConst > 0)
        VarInterval = AffineInterval{Bounds.Lo, StopBounds.Hi};
      else
        VarInterval = AffineInterval{StopBounds.Lo, Bounds.Hi};
    } else {
      VarInterval = AffineInterval::point(AffineExpr::variable(Name));
    }
    Acc = Acc + VarInterval.scaled(Coeff);
  }
  Out = Acc;
  return true;
}

void DepBuilder::addEdge(unsigned Src, unsigned Dst, unsigned Level,
                         DepKind Kind, Symbol Var) {
  Edges.push_back(DepEdge{Src, Dst, Level, Kind, Var.str()});
}

void DepBuilder::emitEdges(unsigned S1, unsigned S2, Symbol Var,
                           bool AIsWrite, unsigned Common,
                           const std::vector<DirSet> &Dirs) {
  // S1 holds the write W; S2 holds access A. Directions describe
  // sign(iter(A) - iter(W)) per common level.
  for (unsigned L = 1; L <= Common; ++L) {
    bool PrefixEq = true;
    for (unsigned M = 1; M < L; ++M)
      PrefixEq &= Dirs[M - 1].EQ;
    if (!PrefixEq)
      break;
    if (Dirs[L - 1].LT) {
      // A's instance is later: W is the source.
      addEdge(S1, S2, L, AIsWrite ? DepKind::Output : DepKind::Flow, Var);
    }
    if (Dirs[L - 1].GT) {
      // A's instance is earlier: A is the source.
      addEdge(S2, S1, L, AIsWrite ? DepKind::Output : DepKind::Anti, Var);
    }
  }
  bool AllEq = true;
  for (unsigned L = 1; L <= Common; ++L)
    AllEq &= Dirs[L - 1].EQ;
  if (AllEq && S1 != S2) {
    // Same iteration of every common loop: source is the textually earlier
    // statement.
    if (S1 < S2)
      addEdge(S1, S2, 0, AIsWrite ? DepKind::Output : DepKind::Flow, Var);
    else
      addEdge(S2, S1, 0, AIsWrite ? DepKind::Output : DepKind::Anti, Var);
  }
}

void DepBuilder::testPair(unsigned S1, const AccessInfo &W, unsigned S2,
                          const AccessInfo &A) {
  unsigned Common = std::min(Nest.Stmts[S1].Depth, Nest.Stmts[S2].Depth);
  std::vector<DirSet> Dirs(Common, DirSet::full());

  bool Conservative = !W.Subs || !A.Subs ||
                      W.Subs->numArgs() != A.Subs->numArgs() ||
                      W.Subs->numArgs() == 0;
  if (Conservative) {
    emitEdges(S1, S2, W.Var, A.Write, Common, Dirs);
    return;
  }

  unsigned NumDims = W.Subs->numArgs();
  for (unsigned D = 0; D != NumDims; ++D) {
    const Expr &SubW = *W.Subs->arg(D);
    const Expr &SubA = *A.Subs->arg(D);

    // Whole-dimension selections never constrain or disprove.
    if (isa<MagicColonExpr>(&SubW) || isa<MagicColonExpr>(&SubA))
      continue;

    if (!scalarPure(SubW) || !scalarPure(SubA)) {
      // Set-valued or opaque subscripts: structurally identical
      // loop-invariant subscripts denote the same location set in every
      // iteration pair (no constraint); anything else is unknown.
      continue;
    }

    const std::optional<AffineExpr> &FW = affineOf(SubW);
    const std::optional<AffineExpr> &FA = affineOf(SubA);
    if (!FW || !FA)
      continue; // nonlinear: no information from this dimension

    // --- Disproof 1: symbolic interval test. fW(I1) - fA(I2) must span 0.
    AffineInterval IW, IA;
    if (intervalOf(*FW, IW) && intervalOf(*FA, IA)) {
      AffineInterval Diff = IW - IA;
      if ((Diff.Lo.isConstant() && Diff.Lo.constant() > 0) ||
          (Diff.Hi.isConstant() && Diff.Hi.constant() < 0))
        return; // provably disjoint: no dependence at all
    }

    // --- Disproof 2: GCD test over loop-variable coefficients. The two
    // accesses run in independent instances, so their loop-variable terms
    // are distinct unknowns even when they share a name; only the
    // invariant parts may cancel.
    {
      AffineExpr InvW(FW->constant());
      for (const auto &[Name, Coeff] : FW->coeffs())
        if (!LoopVarNames.count(Name))
          InvW = InvW + AffineExpr::variable(Name, Coeff);
      AffineExpr InvA(FA->constant());
      for (const auto &[Name, Coeff] : FA->coeffs())
        if (!LoopVarNames.count(Name))
          InvA = InvA + AffineExpr::variable(Name, Coeff);
      AffineExpr Delta = InvA - InvW; // right-hand side of the Diophantine
      bool IntegerCoeffs = true;
      long long G = 0;
      for (const auto &[Name, Coeff] : FW->coeffs()) {
        if (!LoopVarNames.count(Name))
          continue;
        if (Coeff != std::floor(Coeff)) {
          IntegerCoeffs = false;
          break;
        }
        G = std::gcd(G, static_cast<long long>(std::fabs(Coeff)));
      }
      for (const auto &[Name, Coeff] : FA->coeffs()) {
        if (!LoopVarNames.count(Name))
          continue;
        if (Coeff != std::floor(Coeff)) {
          IntegerCoeffs = false;
          break;
        }
        G = std::gcd(G, static_cast<long long>(std::fabs(Coeff)));
      }
      // The invariant-symbol parts must cancel for the constant test.
      bool InvariantsCancel = Delta.isConstant();
      if (IntegerCoeffs && InvariantsCancel && G > 0) {
        double C = Delta.constant();
        if (C != std::floor(C))
          return; // fractional offset can never be met by integers
        if (static_cast<long long>(C) % G != 0)
          return; // GCD does not divide the offset: no dependence
      }
      if (IntegerCoeffs && InvariantsCancel && G == 0) {
        // ZIV with canceling symbols: constant subscripts on both sides.
        if (Delta.constant() != 0.0)
          return; // distinct constants: no dependence
      }
    }

    // --- Direction refinement per common loop (strong and weak-zero
    // SIV).
    for (unsigned L = 1; L <= Common; ++L) {
      const LoopHeader &Header = Nest.Loops[L - 1];
      const std::string &Var = Header.indexVar();
      double AW = FW->coeff(Var);
      double AA = FA->coeff(Var);
      if (AW == 0.0 && AA == 0.0)
        continue; // this dimension says nothing about loop L
      bool OtherLoopVarW = false, OtherLoopVarA = false;
      for (const auto &[Name, Coeff] : FW->coeffs()) {
        (void)Coeff;
        if (Name != Var && LoopVarNames.count(Name))
          OtherLoopVarW = true;
      }
      for (const auto &[Name, Coeff] : FA->coeffs()) {
        (void)Coeff;
        if (Name != Var && LoopVarNames.count(Name))
          OtherLoopVarA = true;
      }
      if (OtherLoopVarW || OtherLoopVarA)
        continue; // MIV: no refinement (stays conservative)

      // Constant loop bounds when available (post-normalization most
      // loops are 1:n with a possibly symbolic n).
      double LB = 0, UB = 0;
      bool HasLB = Header.StartAffine && Header.StartAffine->isConstant();
      bool HasUB = Header.StopAffine && Header.StopAffine->isConstant();
      if (HasLB)
        LB = Header.StartAffine->constant();
      if (HasUB)
        UB = Header.StopAffine->constant();
      bool UnitStep = Header.StepConst && *Header.StepConst == 1.0;

      // --- Weak-zero SIV: only one access varies with this loop. The
      // dependence requires that access's iteration to hit a fixed
      // point t; a fractional or out-of-bounds t kills the dependence.
      if (AW == 0.0 || AA == 0.0) {
        double A = AW != 0.0 ? AW : AA;
        const AffineExpr &Varying = AW != 0.0 ? *FW : *FA;
        const AffineExpr &Fixed = AW != 0.0 ? *FA : *FW;
        AffineExpr G = Varying - AffineExpr::variable(Var, A);
        AffineExpr TExpr = (Fixed - G).scaled(1.0 / A);
        if (TExpr.isConstant()) {
          double T = TExpr.constant();
          if (T != std::floor(T))
            return; // never an integer iteration: no dependence
          if (UnitStep && ((HasLB && T < LB) || (HasUB && T > UB)))
            return; // the required iteration is outside the loop
        }
        continue; // existence known, but no direction refinement
      }

      if (AW != AA)
        continue; // weak-crossing SIV: stays conservative

      // --- Strong SIV: a*i1 + g = a*i2 + h  =>  i2 - i1 = (g - h)/a.
      AffineExpr G = *FW - AffineExpr::variable(Var, AW);
      AffineExpr H = *FA - AffineExpr::variable(Var, AA);
      AffineExpr DistExpr = (G - H).scaled(1.0 / AW);
      if (!DistExpr.isConstant())
        continue;
      double Dist = DistExpr.constant();
      if (Dist != std::floor(Dist))
        return; // non-integer distance: no dependence via this dim
      // A distance beyond the trip count cannot be realized.
      if (UnitStep && HasLB && HasUB &&
          std::fabs(Dist) > UB - LB)
        return;
      // Dist is in index-VALUE space; directions describe EXECUTION
      // order. A negative step walks values downward, so the later
      // iteration holds the smaller value and the sign flips; a
      // non-constant step leaves execution order unknowable (a zero
      // distance is still '=' either way).
      if (Dist == 0.0) {
        Dirs[L - 1].intersect(DirSet::only('='));
      } else {
        if (!Header.StepConst || *Header.StepConst == 0.0)
          continue; // cannot orient the carried direction: stay full
        double ExecDist = Dist * (*Header.StepConst > 0 ? 1.0 : -1.0);
        Dirs[L - 1].intersect(ExecDist > 0 ? DirSet::only('<')
                                           : DirSet::only('>'));
      }
      if (Dirs[L - 1].empty())
        return; // contradictory constraints: no dependence
    }
  }

  emitEdges(S1, S2, W.Var, A.Write, Common, Dirs);
}

DepGraph DepBuilder::build() {
  std::vector<std::vector<AccessInfo>> Accesses;
  Accesses.reserve(Nest.Stmts.size());
  for (const NestStmt &S : Nest.Stmts)
    Accesses.push_back(collectAccesses(*S.S));

  for (unsigned S1 = 0; S1 != Accesses.size(); ++S1) {
    for (const AccessInfo &W : Accesses[S1]) {
      if (!W.Write)
        continue;
      for (unsigned S2 = 0; S2 != Accesses.size(); ++S2) {
        for (const AccessInfo &A : Accesses[S2]) {
          if (A.Var != W.Var)
            continue;
          if (&A == &W)
            continue;
          // Write-write pairs would otherwise be tested twice (once from
          // each side); keep a single canonical orientation.
          if (A.Write && (S2 < S1 || (S1 == S2 && &A < &W)))
            continue;
          testPair(S1, W, S2, A);
        }
      }
    }
  }

  // Deduplicate.
  std::sort(Edges.begin(), Edges.end(),
            [](const DepEdge &A, const DepEdge &B) {
              return std::tie(A.Src, A.Dst, A.Level, A.Kind, A.Variable) <
                     std::tie(B.Src, B.Dst, B.Level, B.Kind, B.Variable);
            });
  Edges.erase(std::unique(Edges.begin(), Edges.end(),
                          [](const DepEdge &A, const DepEdge &B) {
                            return A.Src == B.Src && A.Dst == B.Dst &&
                                   A.Level == B.Level && A.Kind == B.Kind &&
                                   A.Variable == B.Variable;
                          }),
              Edges.end());

  DepGraph Graph;
  Graph.NumNodes = Nest.Stmts.size();
  Graph.Edges = std::move(Edges);
  return Graph;
}

} // namespace

DepGraph mvec::buildDepGraph(const LoopNest &Nest, const ShapeEnv &Env) {
  return DepBuilder(Nest, Env).build();
}
