//===- DepGraph.h - Data dependence graph -----------------------*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The data dependence graph over a loop nest's statements, with
/// level-annotated edges (Allen & Kennedy), plus Tarjan SCC computation in
/// condensation-topological order — the inputs to the paper's Algorithm 1.
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_DEPS_DEPGRAPH_H
#define MVEC_DEPS_DEPGRAPH_H

#include <string>
#include <vector>

namespace mvec {

enum class DepKind { Flow, Anti, Output };

const char *depKindName(DepKind Kind);

/// One dependence edge between statement nodes.
struct DepEdge {
  unsigned Src = 0;
  unsigned Dst = 0;
  /// 0 = loop-independent; otherwise the 1-based nest level carrying the
  /// dependence.
  unsigned Level = 0;
  DepKind Kind = DepKind::Flow;
  std::string Variable;

  bool isLoopIndependent() const { return Level == 0; }
};

struct DepGraph {
  unsigned NumNodes = 0;
  std::vector<DepEdge> Edges;

  std::string str() const;
};

/// Computes strongly connected components over the subgraph of \p Graph
/// containing only edges with Level == 0 or Level >= MinLevel (the edges
/// still relevant once loops outside MinLevel have been peeled). Components
/// are returned in topological order of the condensation; node order inside
/// a component and between independent components follows statement order
/// for deterministic code generation.
std::vector<std::vector<unsigned>>
stronglyConnectedComponents(const DepGraph &Graph, unsigned MinLevel);

/// True when node \p Node has a self-edge at Level >= MinLevel (a
/// recurrence on itself at the levels under consideration).
bool hasSelfRecurrence(const DepGraph &Graph, unsigned Node,
                       unsigned MinLevel);

} // namespace mvec

#endif // MVEC_DEPS_DEPGRAPH_H
