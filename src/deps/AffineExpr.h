//===- AffineExpr.h - Affine index expressions ------------------*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Affine forms c0 + sum(ci * name_i) extracted from subscript expressions.
/// Names cover both loop index variables and loop-invariant symbols; the
/// dependence tests and the diagonal-access pattern matcher both build on
/// this representation.
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_DEPS_AFFINEEXPR_H
#define MVEC_DEPS_AFFINEEXPR_H

#include "frontend/AST.h"

#include <map>
#include <optional>
#include <string>

namespace mvec {

class AffineExpr {
public:
  AffineExpr() = default;
  explicit AffineExpr(double Constant) : Constant(Constant) {}

  static AffineExpr variable(const std::string &Name, double Coeff = 1.0) {
    AffineExpr E;
    if (Coeff != 0.0)
      E.Coeffs[Name] = Coeff;
    return E;
  }

  /// Extracts an affine form from \p E. Returns nullopt for non-affine
  /// expressions (products of variables, subscripts, calls, ...).
  static std::optional<AffineExpr> fromExpr(const Expr &E);

  double constant() const { return Constant; }
  /// Coefficient of \p Name (0 when absent).
  double coeff(const std::string &Name) const {
    auto It = Coeffs.find(Name);
    return It == Coeffs.end() ? 0.0 : It->second;
  }
  const std::map<std::string, double> &coeffs() const { return Coeffs; }

  bool isConstant() const { return Coeffs.empty(); }
  bool mentions(const std::string &Name) const { return Coeffs.count(Name); }

  AffineExpr operator+(const AffineExpr &O) const;
  AffineExpr operator-(const AffineExpr &O) const;
  AffineExpr scaled(double Factor) const;

  friend bool operator==(const AffineExpr &A, const AffineExpr &B) {
    return A.Constant == B.Constant && A.Coeffs == B.Coeffs;
  }

  /// Rebuilds an AST expression for this affine form (used by the diagonal
  /// pattern rewrite). Produces c1*var+c0 shapes with clean constants.
  ExprPtr toExpr() const;

  std::string str() const;

private:
  double Constant = 0.0;
  std::map<std::string, double> Coeffs; // name -> coefficient (nonzero)
};

/// An interval whose endpoints are affine expressions (used for symbolic
/// dependence disproof: j in [1, i-1] implies i - j in [1, i-1] > 0).
struct AffineInterval {
  AffineExpr Lo;
  AffineExpr Hi;

  static AffineInterval point(const AffineExpr &E) { return {E, E}; }

  AffineInterval operator+(const AffineInterval &O) const {
    return {Lo + O.Lo, Hi + O.Hi};
  }
  AffineInterval operator-(const AffineInterval &O) const {
    return {Lo - O.Hi, Hi - O.Lo};
  }
  AffineInterval scaled(double Factor) const {
    if (Factor >= 0)
      return {Lo.scaled(Factor), Hi.scaled(Factor)};
    return {Hi.scaled(Factor), Lo.scaled(Factor)};
  }
};

} // namespace mvec

#endif // MVEC_DEPS_AFFINEEXPR_H
