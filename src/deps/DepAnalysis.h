//===- DepAnalysis.h - Dependence testing -----------------------*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds the data dependence graph for a loop nest, following Allen &
/// Kennedy: per-dimension subscript tests (ZIV / strong SIV / GCD) compute
/// per-loop direction sets; a symbolic interval test disproves dependences
/// like X(i,k) vs X(j,k) with j in [1, i-1]; anything beyond the tests'
/// reach is treated conservatively.
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_DEPS_DEPANALYSIS_H
#define MVEC_DEPS_DEPANALYSIS_H

#include "deps/DepGraph.h"
#include "deps/LoopNest.h"
#include "shape/ShapeEnv.h"

namespace mvec {

/// Builds the level-annotated DDG over \p Nest's statements. \p Env is used
/// to distinguish array accesses from builtin calls and to identify scalar
/// symbols for the affine tests.
DepGraph buildDepGraph(const LoopNest &Nest, const ShapeEnv &Env);

} // namespace mvec

#endif // MVEC_DEPS_DEPANALYSIS_H
