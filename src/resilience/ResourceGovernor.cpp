//===- ResourceGovernor.cpp - Per-job resource budgets ----------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "resilience/ResourceGovernor.h"

using namespace mvec;

void ResourceGovernor::overBudget() const {
  // Out of line so the inlined charge() fast path carries no string
  // machinery; the message is part of the stable Resource-class
  // diagnostic surface (see DESIGN.md §5g).
  throw ResourceExhausted("memory budget exceeded: " + std::to_string(Used) +
                          " bytes charged against a cap of " +
                          std::to_string(MaxBytes));
}
