//===- CircuitBreaker.h - Per-service circuit breaker -----------*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A classic three-state circuit breaker guarding the vectorization
/// service's execution path. Consecutive infrastructure failures
/// (Internal/Resource class — never Input: a burst of malformed scripts
/// is the submitters' problem, not the service's) trip the breaker Open;
/// while Open, jobs are shed immediately (degraded, not queued) until the
/// cooldown elapses, after which a bounded number of HalfOpen probes
/// decide whether to close again.
///
/// Thread-safe: workers call allow()/record*() concurrently under one
/// internal mutex (uncontended in the common Closed case).
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_RESILIENCE_CIRCUITBREAKER_H
#define MVEC_RESILIENCE_CIRCUITBREAKER_H

#include <chrono>
#include <cstdint>
#include <mutex>

namespace mvec {

struct BreakerConfig {
  /// Consecutive infrastructure failures that trip the breaker Open.
  /// 0 disables the breaker entirely (allow() is always true).
  unsigned FailureThreshold = 0;
  /// How long the breaker stays Open before probing.
  std::chrono::milliseconds Cooldown{1000};
  /// Probe jobs admitted in HalfOpen before the first outcome arrives.
  unsigned HalfOpenProbes = 1;
};

class CircuitBreaker {
public:
  enum class State { Closed, Open, HalfOpen };

  explicit CircuitBreaker(BreakerConfig Config = {}) : Config(Config) {}

  /// True when a job may execute. False means shed it now. A true return
  /// in HalfOpen consumes one probe slot; the caller must report the
  /// outcome via recordSuccess()/recordFailure().
  bool allow();

  /// The job completed without an infrastructure failure (success, input
  /// error, deadline — the service itself worked).
  void recordSuccess();

  /// The job suffered an infrastructure failure (Internal/Resource).
  void recordFailure();

  State state() const;
  /// Total jobs shed (allow() returned false) since construction.
  uint64_t shedCount() const;

private:
  using Clock = std::chrono::steady_clock;

  BreakerConfig Config;
  mutable std::mutex Mutex;
  State Cur = State::Closed;
  unsigned ConsecutiveFailures = 0;
  unsigned ProbesInFlight = 0;
  Clock::time_point OpenedAt{};
  uint64_t Shed = 0;
};

} // namespace mvec

#endif // MVEC_RESILIENCE_CIRCUITBREAKER_H
