//===- FaultInjection.cpp - Deterministic fault injection -------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "resilience/FaultInjection.h"

#include <chrono>
#include <new>
#include <thread>

using namespace mvec;

const char *mvec::faultSiteName(FaultSite Site) {
  switch (Site) {
  case FaultSite::ParseEntry:
    return "parse-entry";
  case FaultSite::VectorizeEntry:
    return "vectorize-entry";
  case FaultSite::ValidateEntry:
    return "validate-entry";
  case FaultSite::InterpStmt:
    return "interp-stmt";
  case FaultSite::KernelPoll:
    return "kernel-poll";
  case FaultSite::WorkerPickup:
    return "worker-pickup";
  case FaultSite::CacheInsert:
    return "cache-insert";
  }
  return "unknown";
}

const char *mvec::faultKindName(FaultKind Kind) {
  switch (Kind) {
  case FaultKind::BadAlloc:
    return "bad-alloc";
  case FaultKind::Exception:
    return "exception";
  case FaultKind::Latency:
    return "latency";
  case FaultKind::DeadlineExpire:
    return "deadline-expire";
  }
  return "unknown";
}

bool mvec::faultSiteFromName(const std::string &Name, FaultSite &Out) {
  for (unsigned S = 0; S != NumFaultSites; ++S)
    if (Name == faultSiteName(static_cast<FaultSite>(S))) {
      Out = static_cast<FaultSite>(S);
      return true;
    }
  return false;
}

bool mvec::faultKindFromName(const std::string &Name, FaultKind &Out) {
  static constexpr FaultKind Kinds[NumFaultKinds] = {
      FaultKind::BadAlloc, FaultKind::Exception, FaultKind::Latency,
      FaultKind::DeadlineExpire};
  for (FaultKind K : Kinds)
    if (Name == faultKindName(K)) {
      Out = K;
      return true;
    }
  return false;
}

namespace {

/// SplitMix64 — the same bit-stable mixer the fuzzer's Rng uses; good
/// enough to decorrelate (seed, salt, site, hit) tuples.
uint64_t splitmix64(uint64_t X) {
  X += 0x9E3779B97F4A7C15ull;
  X = (X ^ (X >> 30)) * 0xBF58476D1CE4E5B9ull;
  X = (X ^ (X >> 27)) * 0x94D049BB133111EBull;
  return X ^ (X >> 31);
}

} // namespace

FaultContext::FaultContext(const FaultPlan *Plan, uint64_t Salt)
    : Plan(Plan), Salt(Salt) {
  if (Plan)
    RuleFires.assign(Plan->Rules.size(), 0);
}

void FaultContext::inject(FaultSite Site) {
  if (!Plan)
    return;
  unsigned SiteIdx = static_cast<unsigned>(Site);
  unsigned Hit = SiteHits[SiteIdx]++;
  for (size_t R = 0; R != Plan->Rules.size(); ++R) {
    const FaultRule &Rule = Plan->Rules[R];
    if (Rule.Site != Site)
      continue;
    if (Rule.MaxFires != 0 && RuleFires[R] >= Rule.MaxFires)
      continue;
    unsigned Period = Rule.Period ? Rule.Period : 1;
    uint64_t Decision = splitmix64(Plan->Seed ^ (Salt * 0x9E3779B97F4A7C15ull) ^
                                   (uint64_t(SiteIdx) << 32) ^ Hit);
    if (Decision % Period != 0)
      continue;
    ++RuleFires[R];
    ++SiteFires[SiteIdx];
    ++TotalFires;
    switch (Rule.Kind) {
    case FaultKind::BadAlloc:
      throw std::bad_alloc();
    case FaultKind::Exception:
      throw InjectedFault(std::string("injected fault at ") +
                          faultSiteName(Site));
    case FaultKind::Latency:
      std::this_thread::sleep_for(
          std::chrono::microseconds(Rule.LatencyMicros));
      break;
    case FaultKind::DeadlineExpire:
      ForcedDeadline = true;
      break;
    }
  }
}
