//===- Resilience.h - Error taxonomy and resilience config ------*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared vocabulary of the resilience subsystem: the structured error
/// taxonomy every failure folds into, and the per-service configuration
/// bundle (retry policy, circuit breaker, per-job budgets, degradation
/// switch) consumed by mvec::VectorizationService.
///
/// This library sits at the bottom of the dependency stack (stdlib only);
/// support, frontend, interp and service all call into it, so nothing here
/// may include an mvec header.
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_RESILIENCE_RESILIENCE_H
#define MVEC_RESILIENCE_RESILIENCE_H

#include "resilience/Backoff.h"
#include "resilience/CircuitBreaker.h"

#include <cstddef>

namespace mvec {

/// What kind of failure a job (or a stage of one) suffered. The class — not
/// the message text — drives the resilience machinery: only transient
/// classes are retried, only infrastructure classes trip the breaker, and
/// only exhaustion of retries/budgets degrades.
enum class ErrorClass {
  None,     ///< no failure
  Input,    ///< the submitted program is at fault (parse error, bad
            ///< annotations, its own runtime error, divergence blame)
  Resource, ///< a per-job budget was exhausted (memory, nesting depth)
  Deadline, ///< the wall-clock deadline (or step budget) fired
  Internal, ///< unexpected exception inside the pipeline — the only class
            ///< presumed transient and therefore retried
};

/// Display name for \p Class ("none", "input", ...).
const char *errorClassName(ErrorClass Class);

/// Per-service resilience knobs (see DESIGN.md §5g for the rationale
/// behind each default).
struct ResilienceConfig {
  /// Jittered-exponential-backoff retry policy for ErrorClass::Internal
  /// failures. Deterministic failures (Input/Resource/Deadline) are never
  /// retried.
  RetryPolicy Retry;
  /// Circuit breaker over Internal/Resource failures. Disabled by default
  /// (FailureThreshold = 0): shedding healthy mixed batches on a burst of
  /// malformed inputs would be worse than queueing.
  BreakerConfig Breaker;
  /// Per-job cumulative allocation budget in bytes (AST arena + Value
  /// payload + kernel scratch), enforced by the ResourceGovernor.
  /// 0 disables memory accounting.
  size_t MaxJobBytes = size_t(512) << 20;
  /// When a job exhausts retries or budgets (Internal/Resource class),
  /// return the original source verbatim as a Degraded result instead of
  /// failing. The fuzzing oracle turns this off so injected-crash findings
  /// stay visible.
  bool DegradeOnExhaustion = true;
};

} // namespace mvec

#endif // MVEC_RESILIENCE_RESILIENCE_H
