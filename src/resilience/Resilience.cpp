//===- Resilience.cpp - Error taxonomy --------------------------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "resilience/Resilience.h"

using namespace mvec;

const char *mvec::errorClassName(ErrorClass Class) {
  switch (Class) {
  case ErrorClass::None:
    return "none";
  case ErrorClass::Input:
    return "input";
  case ErrorClass::Resource:
    return "resource";
  case ErrorClass::Deadline:
    return "deadline";
  case ErrorClass::Internal:
    return "internal";
  }
  return "unknown";
}
