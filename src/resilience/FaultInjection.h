//===- FaultInjection.h - Deterministic fault injection ---------*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic, replayable fault injection for the vectorization
/// pipeline. Named injection points (FaultSite) are compiled into the
/// layers the service drives; a FaultPlan arms a subset of them with a
/// seeded schedule, and a per-job FaultContext decides — as a pure
/// function of (plan seed, job salt, site, per-site hit index) — whether a
/// given crossing of a site fires. The decision is independent of thread
/// interleaving, so a failure observed once replays exactly from the same
/// plan and salt.
///
/// The disarmed cost is one thread-local load and a null check per site
/// crossing; sites on per-statement or per-kernel-chunk paths stay off the
/// profile when no plan is installed.
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_RESILIENCE_FAULTINJECTION_H
#define MVEC_RESILIENCE_FAULTINJECTION_H

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace mvec {

/// Named injection points. Keep in sync with faultSiteName().
enum class FaultSite : unsigned {
  ParseEntry,     ///< entry of parseMatlab
  VectorizeEntry, ///< entry of vectorizeSource
  ValidateEntry,  ///< entry of diffRunLimited
  InterpStmt,     ///< interpreter statement boundary (amortized)
  KernelPoll,     ///< inside long-running fused kernels (per chunk)
  WorkerPickup,   ///< a service worker starting a job attempt
  CacheInsert,    ///< result-cache insertion after a successful job
};
inline constexpr unsigned NumFaultSites = 7;

/// What an armed site does when it fires.
enum class FaultKind {
  BadAlloc,       ///< throw std::bad_alloc (allocation failure)
  Exception,      ///< throw InjectedFault (worker exception)
  Latency,        ///< sleep for LatencyMicros (slow dependency)
  DeadlineExpire, ///< force the job's deadline checks to report expiry
};
inline constexpr unsigned NumFaultKinds = 4;

const char *faultSiteName(FaultSite Site);
const char *faultKindName(FaultKind Kind);
/// Parses a site/kind display name; returns false on unknown names.
bool faultSiteFromName(const std::string &Name, FaultSite &Out);
bool faultKindFromName(const std::string &Name, FaultKind &Out);

/// The exception thrown by FaultKind::Exception injections.
class InjectedFault : public std::runtime_error {
public:
  explicit InjectedFault(const std::string &What)
      : std::runtime_error(What) {}
};

/// One armed (site, kind) pair plus its firing schedule.
struct FaultRule {
  FaultSite Site = FaultSite::WorkerPickup;
  FaultKind Kind = FaultKind::Exception;
  /// Fire roughly every Period-th eligible crossing (1 = every crossing).
  /// Which crossings fire is decided by the seeded hash, not by a modulo
  /// counter, so distinct jobs fail at distinct points.
  unsigned Period = 1;
  /// At most this many fires per job (0 = unlimited). MaxFires = 1 models
  /// a transient fault that a retry survives.
  unsigned MaxFires = 0;
  /// Sleep duration for FaultKind::Latency.
  unsigned LatencyMicros = 2000;
};

/// A seeded set of rules. Shared, read-only, must outlive every job run
/// against it.
struct FaultPlan {
  uint64_t Seed = 0;
  std::vector<FaultRule> Rules;
};

/// Per-job injection state: per-site hit counters and per-rule fire
/// counts. One context belongs to one job attempt on one thread.
class FaultContext {
public:
  /// \p Salt distinguishes jobs (and attempts) under one plan; equal
  /// (plan, salt) pairs replay identically.
  FaultContext(const FaultPlan *Plan, uint64_t Salt);

  /// Called at a site crossing; throws / sleeps / flags per the armed
  /// rules.
  void inject(FaultSite Site);

  /// True once a DeadlineExpire rule has fired for this job.
  bool deadlineForced() const { return ForcedDeadline; }
  /// Total fires across all rules (test and campaign accounting).
  unsigned totalFires() const { return TotalFires; }
  /// Fires charged to \p Site.
  unsigned firesAt(FaultSite Site) const {
    return SiteFires[static_cast<unsigned>(Site)];
  }

private:
  const FaultPlan *Plan;
  uint64_t Salt;
  bool ForcedDeadline = false;
  unsigned TotalFires = 0;
  unsigned SiteHits[NumFaultSites] = {};
  unsigned SiteFires[NumFaultSites] = {};
  std::vector<unsigned> RuleFires;
};

namespace detail {

/// The fault context armed on this thread, or null when injection is
/// disarmed (the common case — one TLS load decides).
inline FaultContext *&tlsFaultContext() {
  thread_local FaultContext *Current = nullptr;
  return Current;
}

} // namespace detail

/// RAII guard arming \p Ctx (may be null: explicitly disarmed) on the
/// current thread for the guard's lifetime. Scopes nest.
class FaultScope {
public:
  explicit FaultScope(FaultContext *Ctx) : Prev(detail::tlsFaultContext()) {
    detail::tlsFaultContext() = Ctx;
  }
  ~FaultScope() { detail::tlsFaultContext() = Prev; }
  FaultScope(const FaultScope &) = delete;
  FaultScope &operator=(const FaultScope &) = delete;

private:
  FaultContext *Prev;
};

/// The site-crossing hook compiled into the pipeline layers. Near-free
/// when no context is armed.
inline void maybeInject(FaultSite Site) {
  if (FaultContext *Ctx = detail::tlsFaultContext())
    Ctx->inject(Site);
}

/// True when an armed DeadlineExpire rule has fired on this thread's
/// job — deadline polls treat this as "the clock has run out".
inline bool faultDeadlineForced() {
  FaultContext *Ctx = detail::tlsFaultContext();
  return Ctx && Ctx->deadlineForced();
}

} // namespace mvec

#endif // MVEC_RESILIENCE_FAULTINJECTION_H
