//===- CircuitBreaker.cpp - Per-service circuit breaker ---------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "resilience/CircuitBreaker.h"

using namespace mvec;

bool CircuitBreaker::allow() {
  if (Config.FailureThreshold == 0)
    return true;
  std::lock_guard<std::mutex> Lock(Mutex);
  switch (Cur) {
  case State::Closed:
    return true;
  case State::Open:
    if (Clock::now() - OpenedAt < Config.Cooldown) {
      ++Shed;
      return false;
    }
    Cur = State::HalfOpen;
    ProbesInFlight = 0;
    [[fallthrough]];
  case State::HalfOpen:
    if (ProbesInFlight < Config.HalfOpenProbes) {
      ++ProbesInFlight;
      return true;
    }
    ++Shed;
    return false;
  }
  return true;
}

void CircuitBreaker::recordSuccess() {
  if (Config.FailureThreshold == 0)
    return;
  std::lock_guard<std::mutex> Lock(Mutex);
  // One healthy probe is proof enough that whatever tripped us has
  // passed; trickling probes through one at a time only delays recovery.
  Cur = State::Closed;
  ConsecutiveFailures = 0;
  ProbesInFlight = 0;
}

void CircuitBreaker::recordFailure() {
  if (Config.FailureThreshold == 0)
    return;
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Cur == State::HalfOpen) {
    // The probe failed: back to Open for another full cooldown.
    Cur = State::Open;
    OpenedAt = Clock::now();
    ProbesInFlight = 0;
    return;
  }
  if (++ConsecutiveFailures >= Config.FailureThreshold &&
      Cur == State::Closed) {
    Cur = State::Open;
    OpenedAt = Clock::now();
  }
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Cur;
}

uint64_t CircuitBreaker::shedCount() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Shed;
}
