//===- ResourceGovernor.h - Per-job resource budgets ------------*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-job memory accounting with a hard cap. A GovernorScope installs a
/// ResourceGovernor on the worker thread for the duration of one job
/// attempt; the allocation choke points of the pipeline (AST arena nodes,
/// Value heap payloads, kernel scratch buffers) charge it via
/// chargeMemory(). Charges are cumulative — bytes are never credited back
/// on free — so the cap bounds total allocation pressure deterministically
/// regardless of allocator reuse or pool state.
///
/// Exceeding the cap throws ResourceExhausted; the service catches it and
/// classifies the job as ErrorClass::Resource (deterministic, never
/// retried). With no governor installed the charge is one thread-local
/// load and a null check.
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_RESILIENCE_RESOURCEGOVERNOR_H
#define MVEC_RESILIENCE_RESOURCEGOVERNOR_H

#include <cstddef>
#include <stdexcept>
#include <string>

namespace mvec {

/// Thrown when a job exceeds a ResourceGovernor budget.
class ResourceExhausted : public std::runtime_error {
public:
  explicit ResourceExhausted(const std::string &What)
      : std::runtime_error(What) {}
};

class ResourceGovernor {
public:
  /// \p MaxBytes caps cumulative charged allocation (0 = account only,
  /// never throw).
  explicit ResourceGovernor(size_t MaxBytes) : MaxBytes(MaxBytes) {}

  /// Adds \p Bytes to the job's tally; throws ResourceExhausted once the
  /// cap is crossed.
  void charge(size_t Bytes) {
    Used += Bytes;
    if (MaxBytes != 0 && Used > MaxBytes)
      overBudget();
  }

  size_t usedBytes() const { return Used; }
  size_t capBytes() const { return MaxBytes; }

private:
  [[noreturn]] void overBudget() const;

  size_t MaxBytes;
  size_t Used = 0;
};

namespace detail {

/// The governor charged by this thread's allocations, or null when no job
/// budget is being enforced.
inline ResourceGovernor *&tlsGovernor() {
  thread_local ResourceGovernor *Current = nullptr;
  return Current;
}

} // namespace detail

/// RAII guard installing \p G (may be null) on the current thread. Scopes
/// nest; the previous governor is restored on destruction.
class GovernorScope {
public:
  explicit GovernorScope(ResourceGovernor *G) : Prev(detail::tlsGovernor()) {
    detail::tlsGovernor() = G;
  }
  ~GovernorScope() { detail::tlsGovernor() = Prev; }
  GovernorScope(const GovernorScope &) = delete;
  GovernorScope &operator=(const GovernorScope &) = delete;

private:
  ResourceGovernor *Prev;
};

/// The allocation hook compiled into the pipeline's allocation choke
/// points. Near-free when no governor is installed.
inline void chargeMemory(size_t Bytes) {
  if (ResourceGovernor *G = detail::tlsGovernor())
    G->charge(Bytes);
}

} // namespace mvec

#endif // MVEC_RESILIENCE_RESOURCEGOVERNOR_H
