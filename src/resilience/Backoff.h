//===- Backoff.h - Jittered exponential retry backoff -----------*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Retry policy and the deterministic jittered-exponential-backoff delay
/// function. Jitter is derived from a seed, not from a global RNG, so a
/// replayed job (same spec, same fault plan) waits the same intervals —
/// reproducibility extends to timing-adjacent behavior.
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_RESILIENCE_BACKOFF_H
#define MVEC_RESILIENCE_BACKOFF_H

#include <algorithm>
#include <chrono>
#include <cstdint>

namespace mvec {

struct RetryPolicy {
  /// Total attempts per job, including the first (1 = never retry). Only
  /// ErrorClass::Internal failures are eligible.
  unsigned MaxAttempts = 3;
  /// Base delay before the first retry.
  std::chrono::milliseconds InitialBackoff{5};
  /// Growth factor per retry.
  double Multiplier = 2.0;
  /// Delay is scaled by a factor drawn from [1 - Jitter, 1 + Jitter].
  double Jitter = 0.5;
  /// Upper bound on any single delay.
  std::chrono::milliseconds MaxBackoff{250};
};

/// Delay before retry number \p Retry (1-based: 1 follows the first failed
/// attempt). Deterministic in (\p Policy, \p Retry, \p Seed).
inline std::chrono::microseconds
backoffDelay(const RetryPolicy &Policy, unsigned Retry, uint64_t Seed) {
  double Base = double(std::chrono::duration_cast<std::chrono::microseconds>(
                           Policy.InitialBackoff)
                           .count());
  for (unsigned I = 1; I < Retry; ++I)
    Base *= Policy.Multiplier;
  // SplitMix64 of (seed, retry) -> uniform in [0, 1).
  uint64_t X = Seed + 0x9E3779B97F4A7C15ull * (Retry + 1);
  X = (X ^ (X >> 30)) * 0xBF58476D1CE4E5B9ull;
  X = (X ^ (X >> 27)) * 0x94D049BB133111EBull;
  X ^= X >> 31;
  double Unit = double(X >> 11) * (1.0 / 9007199254740992.0);
  double Jitter = std::clamp(Policy.Jitter, 0.0, 1.0);
  double Scaled = Base * (1.0 - Jitter + 2.0 * Jitter * Unit);
  double CapUs = double(std::chrono::duration_cast<std::chrono::microseconds>(
                            Policy.MaxBackoff)
                            .count());
  Scaled = std::clamp(Scaled, 0.0, CapUs);
  return std::chrono::microseconds(static_cast<int64_t>(Scaled));
}

} // namespace mvec

#endif // MVEC_RESILIENCE_BACKOFF_H
