//===- ShapeInference.cpp - Light intra-script shape inference -------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "shape/ShapeInference.h"

#include "frontend/ASTUtils.h"

#include <cmath>
#include <set>

using namespace mvec;

namespace {

DimSymbol symbolForExtent(const Expr &E) {
  double Value = 0;
  if (evaluateConstant(E, Value))
    return Value == 1 ? DimSymbol::one() : DimSymbol::star();
  // Unknown extents are conservatively "greater than one"; a dimension of
  // symbolic size n could be 1 at runtime, but shape annotations in the
  // paper make the same assumption (n is a problem size).
  return DimSymbol::star();
}

std::optional<Dimensionality> inferCallShape(const IndexExpr &Call,
                                             const ShapeEnv &Env) {
  std::string Name = Call.baseName();
  if (Name.empty())
    return std::nullopt;

  // Shape-constructing builtins.
  if (Name == "zeros" || Name == "ones" || Name == "rand" || Name == "eye") {
    if (Call.numArgs() == 0)
      return Dimensionality::scalar();
    if (Call.numArgs() == 1) {
      DimSymbol S = symbolForExtent(*Call.arg(0));
      return Dimensionality{S, S};
    }
    if (Call.numArgs() == 2)
      return Dimensionality{symbolForExtent(*Call.arg(0)),
                            symbolForExtent(*Call.arg(1))};
    return std::nullopt;
  }
  if (Name == "hist")
    return Dimensionality::rowVector();
  if (Name == "size") {
    if (Call.numArgs() == 2)
      return Dimensionality::scalar();
    return Dimensionality::rowVector();
  }
  if (Name == "numel" || Name == "length")
    return Dimensionality::scalar();
  if (Name == "linspace")
    return Dimensionality::rowVector();

  // Pointwise math functions preserve the argument's shape.
  static const char *const Pointwise[] = {"cos",  "sin",  "tan", "sqrt",
                                          "exp",  "log",  "abs", "floor",
                                          "ceil", "round"};
  for (const char *Fn : Pointwise) {
    if (Name == Fn && Call.numArgs() == 1)
      return inferExprShape(*Call.arg(0), Env);
  }
  if (Name == "cumsum" && Call.numArgs() == 1)
    return inferExprShape(*Call.arg(0), Env);

  // A known variable being subscripted: scalar subscripts of a variable
  // yield a scalar; anything else would need the vectorizer's richer rules.
  if (Env.knows(Name)) {
    bool AllScalarArgs = true;
    for (unsigned I = 0, E = Call.numArgs(); I != E; ++I) {
      auto ArgShape = inferExprShape(*Call.arg(I), Env);
      if (!ArgShape || !ArgShape->isScalarShape())
        AllScalarArgs = false;
    }
    if (AllScalarArgs && Call.numArgs() >= 1)
      return Dimensionality::scalar();
  }
  return std::nullopt;
}

} // namespace

std::optional<Dimensionality> mvec::inferExprShape(const Expr &E,
                                                   const ShapeEnv &Env) {
  switch (E.kind()) {
  case Expr::Kind::Number:
    return Dimensionality::scalar();
  case Expr::Kind::String:
    return std::nullopt;
  case Expr::Kind::Ident:
    return Env.getShape(cast<IdentExpr>(E).name());
  case Expr::Kind::MagicColon:
  case Expr::Kind::EndKeyword:
    return std::nullopt;
  case Expr::Kind::Range: {
    const auto &R = cast<RangeExpr>(E);
    double Start = 0, Stop = 0;
    double Step = 1;
    bool Const = evaluateConstant(*R.start(), Start) &&
                 evaluateConstant(*R.stop(), Stop) &&
                 (!R.step() || evaluateConstant(*R.step(), Step));
    if (Const && Step != 0) {
      double Count = std::floor((Stop - Start) / Step) + 1;
      if (Count == 1)
        return Dimensionality::scalar();
    }
    return Dimensionality::rowVector();
  }
  case Expr::Kind::Unary:
    return inferExprShape(*cast<UnaryExpr>(E).operand(), Env);
  case Expr::Kind::Binary: {
    const auto &B = cast<BinaryExpr>(E);
    auto L = inferExprShape(*B.lhs(), Env);
    auto R = inferExprShape(*B.rhs(), Env);
    if (!L || !R)
      return std::nullopt;
    if (isPointwiseArithOp(B.op()) || isElementwiseRelOp(B.op())) {
      if (L->isScalarShape())
        return R;
      if (R->isScalarShape())
        return L;
      if (compatible(*L, *R))
        return L;
      return std::nullopt;
    }
    if (B.op() == BinaryOp::Mul) {
      if (L->isScalarShape())
        return R;
      if (R->isScalarShape())
        return L;
      // Matrix product A(m,k)*B(k,n) -> (m,n), when both are 2-D.
      if (L->size() == 2 && R->size() == 2)
        return Dimensionality{(*L)[0], (*R)[1]};
      return std::nullopt;
    }
    return std::nullopt;
  }
  case Expr::Kind::Transpose: {
    auto Inner = inferExprShape(*cast<TransposeExpr>(E).operand(), Env);
    if (!Inner)
      return std::nullopt;
    return Inner->reversed();
  }
  case Expr::Kind::Index:
    return inferCallShape(cast<IndexExpr>(E), Env);
  case Expr::Kind::Matrix: {
    const auto &M = cast<MatrixExpr>(E);
    if (M.rows().empty())
      return std::nullopt;
    // A 1x1 literal takes the shape of its single element (e.g. [0:255]).
    if (M.rows().size() == 1 && M.rows()[0].size() == 1)
      return inferExprShape(*M.rows()[0][0], Env);
    DimSymbol RowSym =
        M.rows().size() == 1 ? DimSymbol::one() : DimSymbol::star();
    DimSymbol ColSym =
        M.rows()[0].size() == 1 ? DimSymbol::one() : DimSymbol::star();
    return Dimensionality{RowSym, ColSym};
  }
  }
  return std::nullopt;
}

void mvec::inferProgramShapes(const Program &P, ShapeEnv &Env) {
  // Variables written inside loops or branches may have data-dependent
  // shapes; drop whatever the straight-line pass would have concluded
  // unless an annotation pins them down. Annotations are already in Env
  // and are never overwritten here, so we only need to avoid adding
  // entries for such variables.
  std::set<std::string> WrittenInControlFlow;
  for (const StmtPtr &S : P.Stmts) {
    if (isa<AssignStmt>(S.get()) || isa<ExprStmt>(S.get()))
      continue;
    std::vector<const Stmt *> Work{S.get()};
    while (!Work.empty()) {
      const Stmt *Cur = Work.back();
      Work.pop_back();
      auto AddBody = [&Work](const std::vector<StmtPtr> &Body) {
        for (const StmtPtr &Child : Body)
          Work.push_back(Child.get());
      };
      if (const auto *For = dyn_cast<ForStmt>(Cur))
        AddBody(For->body());
      else if (const auto *While = dyn_cast<WhileStmt>(Cur))
        AddBody(While->body());
      else if (const auto *If = dyn_cast<IfStmt>(Cur))
        for (const IfStmt::Branch &B : If->branches())
          AddBody(B.Body);
      else if (const auto *Assign = dyn_cast<AssignStmt>(Cur)) {
        // Only whole-variable assignments can change a variable's shape
        // class; subscripted writes (z(i) = ...) preserve it.
        if (isa<IdentExpr>(Assign->lhs()))
          WrittenInControlFlow.insert(Assign->targetName());
      }
    }
  }

  for (const StmtPtr &S : P.Stmts) {
    const auto *Assign = dyn_cast<AssignStmt>(S.get());
    if (!Assign)
      continue;
    const auto *Target = dyn_cast<IdentExpr>(Assign->lhs());
    if (!Target)
      continue; // Subscripted writes can grow arrays; stay conservative.
    if (Env.knows(Target->name()) ||
        WrittenInControlFlow.count(Target->name()))
      continue;
    if (auto Shape = inferExprShape(*Assign->rhs(), Env))
      Env.setShape(Target->name(), *Shape);
  }
}
