//===- ShapeInference.h - Light intra-script shape inference ----*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A conservative forward shape propagation over straight-line top-level
/// assignments. The paper assumes shapes come from an external inference
/// tool [5,18]; this pass stands in for the easy cases (constants, ranges,
/// zeros/ones/eye, transposes, pointwise combinations) so that simple
/// scripts vectorize without annotations. Annotated shapes always win; the
/// pass never overwrites an annotation and only records shapes it is sure
/// about.
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_SHAPE_SHAPEINFERENCE_H
#define MVEC_SHAPE_SHAPEINFERENCE_H

#include "frontend/AST.h"
#include "shape/ShapeEnv.h"

#include <optional>

namespace mvec {

/// Infers the shape of \p E under \p Env, or nullopt when unsure.
std::optional<Dimensionality> inferExprShape(const Expr &E,
                                             const ShapeEnv &Env);

/// Propagates shapes through the top-level straight-line prefix of \p P
/// (loops and branches stop propagation for the variables they write).
void inferProgramShapes(const Program &P, ShapeEnv &Env);

} // namespace mvec

#endif // MVEC_SHAPE_SHAPEINFERENCE_H
