//===- ShapeEnv.h - Variable shape environment ------------------*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Maps variable names to their abstract shapes. Shapes come from `%!`
/// annotations (the paper's prototype assumes an external shape-inference
/// tool whose output is provided as annotations) and, optionally, from the
/// light intra-script inference in ShapeInference.h.
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_SHAPE_SHAPEENV_H
#define MVEC_SHAPE_SHAPEENV_H

#include "shape/Dim.h"

#include <map>
#include <optional>
#include <string>

namespace mvec {

class ShapeEnv {
public:
  void setShape(const std::string &Name, Dimensionality Dim) {
    Shapes[Name] = std::move(Dim);
  }

  /// The declared shape of \p Name, if known.
  std::optional<Dimensionality> getShape(const std::string &Name) const {
    auto It = Shapes.find(Name);
    if (It == Shapes.end())
      return std::nullopt;
    return It->second;
  }

  bool knows(const std::string &Name) const { return Shapes.count(Name); }

  void erase(const std::string &Name) { Shapes.erase(Name); }

  /// The paper's isMatrix predicate for a named variable. Unknown names are
  /// not matrices.
  bool isMatrix(const std::string &Name) const {
    auto Shape = getShape(Name);
    return Shape && Shape->isMatrixShape();
  }

  bool isScalar(const std::string &Name) const {
    auto Shape = getShape(Name);
    return Shape && Shape->isScalarShape();
  }

  const std::map<std::string, Dimensionality> &shapes() const {
    return Shapes;
  }

  std::string str() const;

private:
  std::map<std::string, Dimensionality> Shapes;
};

} // namespace mvec

#endif // MVEC_SHAPE_SHAPEENV_H
