//===- AnnotationParser.cpp - %! shape annotations -------------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "shape/AnnotationParser.h"

#include <cctype>

using namespace mvec;

namespace {

class AnnotationScanner {
public:
  AnnotationScanner(const std::string &Text, SourceLoc Loc, ShapeEnv &Env,
                    DiagnosticEngine &Diags)
      : Text(Text), Loc(Loc), Env(Env), Diags(Diags) {}

  void run() {
    while (true) {
      skipEntrySeparators();
      if (atEnd())
        return;
      if (!parseEntry())
        return;
    }
  }

private:
  bool atEnd() const { return Pos >= Text.size(); }
  char peek() const { return atEnd() ? '\0' : Text[Pos]; }

  void skipSpace() {
    while (!atEnd() && std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }

  /// Entries may be separated by whitespace and/or commas.
  void skipEntrySeparators() {
    while (!atEnd() && (std::isspace(static_cast<unsigned char>(Text[Pos])) ||
                        Text[Pos] == ','))
      ++Pos;
  }

  bool parseEntry() {
    if (!std::isalpha(static_cast<unsigned char>(peek())) && peek() != '_') {
      Diags.warning(Loc, "malformed shape annotation near '" +
                             Text.substr(Pos) + "'");
      return false;
    }
    std::string Name;
    while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
      Name += Text[Pos++];
    skipSpace();
    if (peek() != '(') {
      Diags.warning(Loc, "expected '(' after variable '" + Name +
                             "' in shape annotation");
      return false;
    }
    ++Pos; // '('
    std::vector<DimSymbol> Dims;
    while (true) {
      skipSpace();
      char C = peek();
      if (C == '1') {
        Dims.push_back(DimSymbol::one());
        ++Pos;
      } else if (C == '*') {
        Dims.push_back(DimSymbol::star());
        ++Pos;
      } else {
        Diags.warning(Loc, "expected '1' or '*' in shape annotation for '" +
                               Name + "'");
        return false;
      }
      skipSpace();
      if (peek() == ',') {
        ++Pos;
        continue;
      }
      break;
    }
    if (peek() != ')') {
      Diags.warning(Loc, "expected ')' in shape annotation for '" + Name +
                             "'");
      return false;
    }
    ++Pos; // ')'

    // A single-entry annotation: v(1) is a scalar, v(*) a column vector.
    if (Dims.size() == 1 && Dims[0].isStar())
      Dims.push_back(DimSymbol::one());
    Env.setShape(Name, Dimensionality(std::move(Dims)));
    return true;
  }

  const std::string &Text;
  SourceLoc Loc;
  ShapeEnv &Env;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
};

} // namespace

void mvec::parseShapeAnnotation(const std::string &Text, SourceLoc Loc,
                                ShapeEnv &Env, DiagnosticEngine &Diags) {
  AnnotationScanner(Text, Loc, Env, Diags).run();
}

ShapeEnv mvec::parseShapeAnnotations(
    const std::vector<AnnotationComment> &Comments, DiagnosticEngine &Diags) {
  ShapeEnv Env;
  for (const AnnotationComment &C : Comments)
    parseShapeAnnotation(C.Text, C.Loc, Env, Diags);
  return Env;
}
