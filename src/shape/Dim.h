//===- Dim.h - Abstract dimensionality --------------------------*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's dimension abstraction (Sec. 2.1). A dimension size is one of:
///   1    — the size in that dimension is exactly one;
///   *    — the size is greater than one;
///   r_i  — the size equals the trip count of loop i (also greater than
///          one). Distinct loops yield distinct, mutually incompatible
///          symbols, even when their bounds coincide (Sec. 2.2).
///
/// A Dimensionality is an ordered list of such symbols, with the paper's
/// f_reduce / f_reverse / f_max operations and the compatibility relation.
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_SHAPE_DIM_H
#define MVEC_SHAPE_DIM_H

#include <cassert>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace mvec {

/// Identifies a loop in the nest under analysis. Stable for the lifetime of
/// one vectorization attempt.
using LoopId = uint32_t;

/// One abstract dimension size: 1, * or r_i.
class DimSymbol {
public:
  enum class Kind : uint8_t { One, Star, Range };

  constexpr DimSymbol() : TheKind(Kind::One), Loop(0) {}

  static constexpr DimSymbol one() { return DimSymbol(Kind::One, 0); }
  static constexpr DimSymbol star() { return DimSymbol(Kind::Star, 0); }
  static constexpr DimSymbol range(LoopId Loop) {
    return DimSymbol(Kind::Range, Loop);
  }

  Kind kind() const { return TheKind; }
  bool isOne() const { return TheKind == Kind::One; }
  bool isStar() const { return TheKind == Kind::Star; }
  bool isRange() const { return TheKind == Kind::Range; }
  /// True for sizes known to exceed one (* and every r_i).
  bool isGreaterThanOne() const { return !isOne(); }

  LoopId loop() const {
    assert(isRange() && "not a range symbol");
    return Loop;
  }

  /// Exact symbol identity: r_i == r_j only when i == j; * is never equal
  /// to any r_i (they are distinct symbols per the paper).
  friend bool operator==(DimSymbol A, DimSymbol B) {
    return A.TheKind == B.TheKind && A.Loop == B.Loop;
  }
  friend bool operator!=(DimSymbol A, DimSymbol B) { return !(A == B); }

  std::string str() const;

private:
  constexpr DimSymbol(Kind K, LoopId Loop) : TheKind(K), Loop(Loop) {}

  Kind TheKind;
  LoopId Loop;
};

/// An ordered list of abstract dimension sizes.
///
/// Values are kept padded to at least two entries (MATLAB values are at
/// least two-dimensional); comparison goes through f_reduce which strips
/// trailing 1 entries, so (1), (1,1) and (1,1,1) are all compatible.
class Dimensionality {
public:
  Dimensionality() = default;
  Dimensionality(std::initializer_list<DimSymbol> Symbols);
  explicit Dimensionality(std::vector<DimSymbol> Symbols);

  static Dimensionality scalar() {
    return Dimensionality{DimSymbol::one(), DimSymbol::one()};
  }
  static Dimensionality rowVector() {
    return Dimensionality{DimSymbol::one(), DimSymbol::star()};
  }
  static Dimensionality columnVector() {
    return Dimensionality{DimSymbol::star(), DimSymbol::one()};
  }
  static Dimensionality matrix() {
    return Dimensionality{DimSymbol::star(), DimSymbol::star()};
  }

  size_t size() const { return Symbols.size(); }
  DimSymbol operator[](size_t I) const {
    assert(I < Symbols.size());
    return Symbols[I];
  }
  void set(size_t I, DimSymbol S) {
    assert(I < Symbols.size());
    Symbols[I] = S;
  }

  const std::vector<DimSymbol> &symbols() const { return Symbols; }

  /// f_reduce: strips trailing 1 dimensions (a 5x5 matrix is effectively a
  /// 5x5x1 matrix).
  Dimensionality reduced() const;

  /// f_reverse: the reversed symbol list (the shape after a transpose).
  Dimensionality reversed() const;

  /// f_max: the largest dimension of a vector-shaped argument, e.g.
  /// f_max(1,*) = *, f_max(r_i,1) = r_i, f_max(1,1) = 1. Fails (nullopt)
  /// when the argument is not scalar- or vector-shaped — i.e. when more
  /// than one entry exceeds one — because then no single "largest" symbol
  /// describes it.
  std::optional<DimSymbol> fmax() const;

  /// All entries are 1.
  bool isScalarShape() const;
  /// At most one entry exceeds 1.
  bool isVectorShape() const;
  /// At least two entries exceed 1 (the paper's isMatrix predicate).
  bool isMatrixShape() const;

  bool containsRange(LoopId Loop) const;
  bool containsAnyRange() const;

  /// Exact element-wise equality (the paper's ≡ relation).
  friend bool operator==(const Dimensionality &A, const Dimensionality &B) {
    return A.Symbols == B.Symbols;
  }
  friend bool operator!=(const Dimensionality &A, const Dimensionality &B) {
    return !(A == B);
  }

  std::string str() const;

private:
  void padToTwo();

  std::vector<DimSymbol> Symbols;
};

/// The paper's compatibility relation (≃): reduced forms are equal.
bool compatible(const Dimensionality &A, const Dimensionality &B);

} // namespace mvec

#endif // MVEC_SHAPE_DIM_H
