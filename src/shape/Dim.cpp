//===- Dim.cpp - Abstract dimensionality ----------------------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "shape/Dim.h"

#include <algorithm>

using namespace mvec;

std::string DimSymbol::str() const {
  switch (TheKind) {
  case Kind::One:
    return "1";
  case Kind::Star:
    return "*";
  case Kind::Range:
    return "r" + std::to_string(Loop);
  }
  return "?";
}

Dimensionality::Dimensionality(std::initializer_list<DimSymbol> Init)
    : Symbols(Init) {
  padToTwo();
}

Dimensionality::Dimensionality(std::vector<DimSymbol> Init)
    : Symbols(std::move(Init)) {
  padToTwo();
}

void Dimensionality::padToTwo() {
  while (Symbols.size() < 2)
    Symbols.push_back(DimSymbol::one());
}

Dimensionality Dimensionality::reduced() const {
  std::vector<DimSymbol> Result = Symbols;
  while (!Result.empty() && Result.back().isOne())
    Result.pop_back();
  Dimensionality D;
  D.Symbols = std::move(Result); // may be shorter than two: reduced form
  return D;
}

Dimensionality Dimensionality::reversed() const {
  Dimensionality D;
  D.Symbols.assign(Symbols.rbegin(), Symbols.rend());
  return D;
}

std::optional<DimSymbol> Dimensionality::fmax() const {
  DimSymbol Max = DimSymbol::one();
  unsigned NumLarge = 0;
  for (DimSymbol S : Symbols) {
    if (!S.isGreaterThanOne())
      continue;
    ++NumLarge;
    Max = S;
  }
  if (NumLarge > 1)
    return std::nullopt;
  return Max;
}

bool Dimensionality::isScalarShape() const {
  return std::all_of(Symbols.begin(), Symbols.end(),
                     [](DimSymbol S) { return S.isOne(); });
}

bool Dimensionality::isVectorShape() const {
  unsigned NumLarge = 0;
  for (DimSymbol S : Symbols)
    if (S.isGreaterThanOne())
      ++NumLarge;
  return NumLarge <= 1;
}

bool Dimensionality::isMatrixShape() const { return !isVectorShape(); }

bool Dimensionality::containsRange(LoopId Loop) const {
  return std::any_of(Symbols.begin(), Symbols.end(), [Loop](DimSymbol S) {
    return S.isRange() && S.loop() == Loop;
  });
}

bool Dimensionality::containsAnyRange() const {
  return std::any_of(Symbols.begin(), Symbols.end(),
                     [](DimSymbol S) { return S.isRange(); });
}

std::string Dimensionality::str() const {
  std::string Out = "(";
  for (size_t I = 0; I != Symbols.size(); ++I) {
    if (I != 0)
      Out += ',';
    Out += Symbols[I].str();
  }
  Out += ')';
  return Out;
}

bool mvec::compatible(const Dimensionality &A, const Dimensionality &B) {
  return A.reduced() == B.reduced();
}
