//===- AnnotationParser.h - %! shape annotations ----------------*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the paper's shape annotation comments:
///
///   %! i(1) a(1,*) b(*,1) A(*,*)
///
/// declaring i scalar, a a row vector, b a column vector and A a matrix.
/// A single-entry annotation v(*) declares a column vector (MATLAB's
/// default vector orientation for an n-element vector is n x 1 here).
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_SHAPE_ANNOTATIONPARSER_H
#define MVEC_SHAPE_ANNOTATIONPARSER_H

#include "frontend/Lexer.h"
#include "shape/ShapeEnv.h"
#include "support/Diagnostics.h"

#include <vector>

namespace mvec {

/// Parses one annotation body (the text after "%!") into \p Env.
/// Malformed entries are diagnosed and skipped.
void parseShapeAnnotation(const std::string &Text, SourceLoc Loc,
                          ShapeEnv &Env, DiagnosticEngine &Diags);

/// Parses every collected annotation comment into a fresh environment.
ShapeEnv parseShapeAnnotations(const std::vector<AnnotationComment> &Comments,
                               DiagnosticEngine &Diags);

} // namespace mvec

#endif // MVEC_SHAPE_ANNOTATIONPARSER_H
