//===- ShapeEnv.cpp - Variable shape environment ---------------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "shape/ShapeEnv.h"

using namespace mvec;

std::string ShapeEnv::str() const {
  std::string Out;
  for (const auto &[Name, Dim] : Shapes) {
    if (!Out.empty())
      Out += ' ';
    Out += Name + Dim.str();
  }
  return Out;
}
