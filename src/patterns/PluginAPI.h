//===- PluginAPI.h - Dynamically loadable pattern plugins -------*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper stores each pattern-based transformation in its own
/// dynamically loadable library (Fig. 2). This header defines the plugin
/// contract: a shared library exports
///
///   extern "C" void mvecRegisterPatterns(mvec::PatternDatabase *DB);
///
/// and registers its patterns into \p DB. loadPatternPlugin() dlopens such
/// a library and invokes the entry point, extending the vectorizer at
/// runtime without rebuilding it.
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_PATTERNS_PLUGINAPI_H
#define MVEC_PATTERNS_PLUGINAPI_H

#include "patterns/PatternDatabase.h"

#include <string>

/// Symbol name every plugin must export.
#define MVEC_PLUGIN_ENTRY_POINT "mvecRegisterPatterns"

extern "C" {
/// Plugin entry-point signature.
using MvecRegisterPatternsFn = void (*)(mvec::PatternDatabase *);
}

namespace mvec {

/// Loads the shared library at \p Path and invokes its registration entry
/// point against \p DB. Returns false and fills \p Error on failure (file
/// not found, missing symbol). The library stays loaded for the process
/// lifetime — its transformation callbacks live inside the database.
bool loadPatternPlugin(const std::string &Path, PatternDatabase &DB,
                       std::string &Error);

} // namespace mvec

#endif // MVEC_PATTERNS_PLUGINAPI_H
