//===- BuiltinPatterns.cpp - The built-in pattern set -----------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The default pattern database: the three patterns of the paper's Table 2
/// (dot product, repmat broadcast, diagonal access) plus the general
/// matrix-product shapes that the paper's Fig. 4 example exercises
/// (matrix-matrix, matrix-vector, vector-matrix, outer product).
///
//===----------------------------------------------------------------------===//

#include "deps/AffineExpr.h"
#include "frontend/Simplify.h"
#include "patterns/PatternDatabase.h"

using namespace mvec;

namespace {

const PatternDim P1 = PatternDim::one();
const PatternDim PS = PatternDim::star();
const PatternDim R1 = PatternDim::var(1);
const PatternDim R2 = PatternDim::var(2);

/// size(<base>,1) — rows of the accessed matrix.
ExprPtr makeRowsOf(const Expr &Base) {
  std::vector<ExprPtr> Args;
  Args.push_back(Base.clone());
  Args.push_back(makeNumber(1));
  return makeCall("size", std::move(Args));
}

/// Pattern 1 (Table 2): a(i) = X(i,:)*Y(:,i) becomes
/// a(1:n) = sum(X(1:n,:)'.*Y(:,1:n),1).
ExprPtr dotProductTransform(BinaryOp, ExprPtr LHS, ExprPtr RHS,
                            const PatternContext &) {
  ExprPtr Pointwise = makeBinary(BinaryOp::DotMul,
                                 makeTranspose(std::move(LHS)),
                                 std::move(RHS));
  std::vector<ExprPtr> Args;
  Args.push_back(std::move(Pointwise));
  Args.push_back(makeNumber(1));
  return makeCall("sum", std::move(Args));
}

/// Keeps the expression as a native matrix product (the inner '*'
/// dimension is a genuine data extent, not a loop range).
ExprPtr identityMulTransform(BinaryOp, ExprPtr LHS, ExprPtr RHS,
                             const PatternContext &) {
  return makeBinary(BinaryOp::Mul, std::move(LHS), std::move(RHS));
}

/// Pattern 2 (Table 2): A(i,j) = B(i,j) + C(i) becomes
/// A(...) = B(...) + repmat(C(...),1,size(1:n,2)). \p Var names the
/// pattern variable whose loop supplies the replication count;
/// \p AlongColumns replicates across columns (repmat(x,1,n)) vs rows.
BinaryTransformFn makeBroadcastTransform(bool SmallOnRHS, unsigned Var,
                                         bool AlongColumns) {
  return [SmallOnRHS, Var, AlongColumns](BinaryOp Op, ExprPtr LHS,
                                         ExprPtr RHS,
                                         const PatternContext &Ctx) -> ExprPtr {
    const LoopHeader *H = Ctx.headerForVar(Var);
    if (!H)
      return nullptr;
    ExprPtr &Small = SmallOnRHS ? RHS : LHS;
    std::vector<ExprPtr> Args;
    Args.push_back(std::move(Small));
    if (AlongColumns) {
      Args.push_back(makeNumber(1));
      Args.push_back(H->makeTripCountExpr());
    } else {
      Args.push_back(H->makeTripCountExpr());
      Args.push_back(makeNumber(1));
    }
    ExprPtr Replicated = makeCall("repmat", std::move(Args));
    if (SmallOnRHS)
      return makeBinary(Op, std::move(LHS), std::move(Replicated));
    return makeBinary(Op, std::move(Replicated), std::move(RHS));
  };
}

/// Pattern 3 (Table 2): the diagonal access A(c1*i+c2, c3*i+c4) becomes the
/// column-major linear access A((c1*i+c2)+size(A,1)*((c3*i+c4)-1)).
ExprPtr diagonalAccessTransform(const IndexExpr &Access,
                                const PatternContext &Ctx) {
  if (Access.numArgs() != 2)
    return nullptr;
  const LoopHeader *H = Ctx.headerForVar(1);
  if (!H)
    return nullptr;
  auto Row = AffineExpr::fromExpr(*Access.arg(0));
  auto Col = AffineExpr::fromExpr(*Access.arg(1));
  if (!Row || !Col || Row->coeff(H->indexVar()) == 0.0 ||
      Col->coeff(H->indexVar()) == 0.0)
    return nullptr;

  ExprPtr ColMinusOne = simplifyExpr(
      makeBinary(BinaryOp::Sub, Access.arg(1)->clone(), makeNumber(1)));
  ExprPtr Linear = makeBinary(
      BinaryOp::Add, Access.arg(0)->clone(),
      makeBinary(BinaryOp::Mul, makeRowsOf(*Access.base()),
                 std::move(ColMinusOne)));
  std::vector<ExprPtr> Args;
  Args.push_back(std::move(Linear));
  return std::make_unique<IndexExpr>(Access.base()->clone(), std::move(Args),
                                     Access.loc());
}

} // namespace

void mvec::registerBuiltinPatterns(PatternDatabase &DB) {
  // --- Pattern 1: dot product of a row slice and a column slice.
  DB.addBinaryPattern(BinaryPattern{
      "dot-product", BinaryOp::Mul, /*AnyPointwiseOp=*/false,
      PatternShape{R1, PS}, PatternShape{PS, R1}, PatternShape{P1, R1},
      dotProductTransform});

  // --- General matrix products: the inner extents are data dimensions, so
  // the expression stays a native '*'. (Fig. 4: B(i,ind)*C(ind,j).)
  DB.addBinaryPattern(BinaryPattern{
      "matmul", BinaryOp::Mul, false, PatternShape{R1, PS},
      PatternShape{PS, R2}, PatternShape{R1, R2}, identityMulTransform});
  DB.addBinaryPattern(BinaryPattern{
      "matvec", BinaryOp::Mul, false, PatternShape{R1, PS},
      PatternShape{PS, P1}, PatternShape{R1, P1}, identityMulTransform});
  DB.addBinaryPattern(BinaryPattern{
      "vecmat", BinaryOp::Mul, false, PatternShape{P1, PS},
      PatternShape{PS, R1}, PatternShape{P1, R1}, identityMulTransform});

  // --- Outer product: per-iteration scalar products over two loops.
  DB.addBinaryPattern(BinaryPattern{
      "outer-product", BinaryOp::Mul, false, PatternShape{R1, P1},
      PatternShape{P1, R2}, PatternShape{R1, R2}, identityMulTransform});

  // --- Pattern 2: broadcast the smaller operand with repmat. Four
  // orientations: column vector against (r1,r2) columns, row vector
  // against rows, each with the small operand on either side.
  DB.addBinaryPattern(BinaryPattern{
      "broadcast-col-rhs", BinaryOp::Add, /*AnyPointwiseOp=*/true,
      PatternShape{R1, R2}, PatternShape{R1, P1}, PatternShape{R1, R2},
      makeBroadcastTransform(/*SmallOnRHS=*/true, /*Var=*/2,
                             /*AlongColumns=*/true)});
  DB.addBinaryPattern(BinaryPattern{
      "broadcast-col-lhs", BinaryOp::Add, true, PatternShape{R1, P1},
      PatternShape{R1, R2}, PatternShape{R1, R2},
      makeBroadcastTransform(false, 2, true)});
  DB.addBinaryPattern(BinaryPattern{
      "broadcast-row-rhs", BinaryOp::Add, true, PatternShape{R1, R2},
      PatternShape{P1, R2}, PatternShape{R1, R2},
      makeBroadcastTransform(true, 1, false)});
  DB.addBinaryPattern(BinaryPattern{
      "broadcast-row-lhs", BinaryOp::Add, true, PatternShape{P1, R2},
      PatternShape{R1, R2}, PatternShape{R1, R2},
      makeBroadcastTransform(false, 1, false)});

  // --- Pattern 3: diagonal-style accesses with a repeated range symbol.
  DB.addAccessPattern(AccessPattern{
      "diagonal-access", PatternShape{R1, R1}, PatternShape{P1, R1},
      diagonalAccessTransform});

  // --- Function-call dimensionality signatures (paper Sec. 7): treating
  // pointwise calls like matrix accesses is correct; the signature
  // declares how result dims follow from argument dims.
  auto Identity = [](const std::vector<Dimensionality> &Args)
      -> std::optional<Dimensionality> { return Args[0]; };
  for (const char *Fn : {"cos", "sin", "tan", "sqrt", "exp", "log", "abs",
                         "floor", "ceil", "round", "fix"})
    DB.addCallPattern(CallPattern{std::string("pointwise-") + Fn, Fn, 1, 1,
                                  Identity});

  // Elementwise two-argument functions: shapes must agree or one operand
  // is a scalar (MATLAB's own rule for mod/min/max).
  auto Elementwise2 = [](const std::vector<Dimensionality> &Args)
      -> std::optional<Dimensionality> {
    if (Args[0].isScalarShape())
      return Args[1];
    if (Args[1].isScalarShape())
      return Args[0];
    if (compatible(Args[0], Args[1]))
      return Args[0];
    return std::nullopt;
  };
  for (const char *Fn : {"mod", "min", "max"})
    DB.addCallPattern(CallPattern{std::string("elementwise-") + Fn, Fn, 2,
                                  2, Elementwise2});
}
