//===- PluginAPI.cpp - Dynamically loadable pattern plugins ------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "patterns/PluginAPI.h"

#include <dlfcn.h>

using namespace mvec;

bool mvec::loadPatternPlugin(const std::string &Path, PatternDatabase &DB,
                             std::string &Error) {
  void *Handle = dlopen(Path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!Handle) {
    const char *Msg = dlerror();
    Error = Msg ? Msg : "dlopen failed";
    return false;
  }
  void *Sym = dlsym(Handle, MVEC_PLUGIN_ENTRY_POINT);
  if (!Sym) {
    Error = "plugin does not export " MVEC_PLUGIN_ENTRY_POINT;
    dlclose(Handle);
    return false;
  }
  auto Register = reinterpret_cast<MvecRegisterPatternsFn>(Sym);
  Register(&DB);
  // Keep the library loaded: the database now holds its callbacks.
  return true;
}
