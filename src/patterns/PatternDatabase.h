//===- PatternDatabase.h - Extensible pattern registry ----------*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Registry of loop patterns. The paper ships each pattern in its own
/// dynamically loadable library; this registry is the in-process half of
/// that design (see PluginAPI.h for the dlopen-compatible entry point).
/// Users extend the vectorizer by registering additional patterns — no
/// changes to the solution core required.
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_PATTERNS_PATTERNDATABASE_H
#define MVEC_PATTERNS_PATTERNDATABASE_H

#include "patterns/Pattern.h"

#include <cassert>
#include <vector>

namespace mvec {

/// Thread-safety contract: registration (the add* methods, plugin loading)
/// is a single-threaded setup phase; every match* / accessor method is
/// const and touches no mutable state, so after setup one database may be
/// read concurrently from any number of threads without locking. Call
/// freeze() when setup is done — it makes the contract explicit and turns
/// a late registration into an assertion failure instead of a data race.
class PatternDatabase {
public:
  void addBinaryPattern(BinaryPattern Pattern) {
    assert(!Frozen && "pattern registered after freeze(); registration must "
                      "finish before serving begins");
    BinaryPatterns.push_back(std::move(Pattern));
  }
  void addAccessPattern(AccessPattern Pattern) {
    assert(!Frozen && "pattern registered after freeze(); registration must "
                      "finish before serving begins");
    AccessPatterns.push_back(std::move(Pattern));
  }
  void addCallPattern(CallPattern Pattern) {
    assert(!Frozen && "pattern registered after freeze(); registration must "
                      "finish before serving begins");
    CallPatterns.push_back(std::move(Pattern));
  }

  /// Marks registration as complete. A frozen database is safe to share
  /// across concurrent vectorizeSource calls; further add* calls assert.
  void freeze() { Frozen = true; }
  bool frozen() const { return Frozen; }

  /// Finds the first binary pattern matching \p Op with the given operand
  /// dimensionalities. Registration order is priority order.
  std::optional<BinaryMatch> matchBinary(BinaryOp Op,
                                         const Dimensionality &LHS,
                                         const Dimensionality &RHS) const;

  /// All binary patterns matching, in priority order (a pattern's
  /// transformation may decline a match; callers then try the next one).
  std::vector<BinaryMatch> matchBinaryAll(BinaryOp Op,
                                          const Dimensionality &LHS,
                                          const Dimensionality &RHS) const;

  /// Finds the first access pattern matching the raw access
  /// dimensionality \p Dims.
  std::optional<AccessMatch> matchAccess(const Dimensionality &Dims) const;

  /// All access patterns matching, in priority order.
  std::vector<AccessMatch> matchAccessAll(const Dimensionality &Dims) const;

  /// Applies the first call signature for \p Callee accepting \p ArgDims;
  /// returns the result dimensionality, or nullopt when no signature
  /// matches.
  std::optional<Dimensionality>
  matchCall(const std::string &Callee,
            const std::vector<Dimensionality> &ArgDims) const;

  /// True when some signature exists for \p Callee (regardless of arg
  /// shapes).
  bool knowsCall(const std::string &Callee) const;

  size_t numBinaryPatterns() const { return BinaryPatterns.size(); }
  size_t numAccessPatterns() const { return AccessPatterns.size(); }
  size_t numCallPatterns() const { return CallPatterns.size(); }

  const std::vector<BinaryPattern> &binaryPatterns() const {
    return BinaryPatterns;
  }
  const std::vector<AccessPattern> &accessPatterns() const {
    return AccessPatterns;
  }

private:
  std::vector<BinaryPattern> BinaryPatterns;
  std::vector<AccessPattern> AccessPatterns;
  std::vector<CallPattern> CallPatterns;
  bool Frozen = false;
};

/// Registers the built-in patterns (the paper's Table 2 plus the general
/// matrix-product forms): dot product, broadcast-by-repmat, diagonal
/// access, matrix-by-matrix / matrix-by-vector products and outer
/// products.
void registerBuiltinPatterns(PatternDatabase &DB);

/// A database preloaded with the builtin patterns.
PatternDatabase makeDefaultPatternDatabase();

} // namespace mvec

#endif // MVEC_PATTERNS_PATTERNDATABASE_H
