//===- Pattern.cpp - Loop pattern descriptions ------------------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "patterns/Pattern.h"

using namespace mvec;

bool mvec::matchShape(const PatternShape &Shape, const Dimensionality &Dims,
                      PatternBindings &Bindings) {
  // Compare against the reduced form and ignore trailing 1s in the pattern
  // too, mirroring the compatibility relation.
  Dimensionality Reduced = Dims.reduced();
  size_t ShapeLen = Shape.size();
  while (ShapeLen > 0 && Shape[ShapeLen - 1].kind() == PatternDim::Kind::One)
    --ShapeLen;
  if (ShapeLen != Reduced.size())
    return false;

  for (size_t I = 0; I != ShapeLen; ++I) {
    DimSymbol S = Reduced[I];
    switch (Shape[I].kind()) {
    case PatternDim::Kind::One:
      if (!S.isOne())
        return false;
      break;
    case PatternDim::Kind::Star:
      if (!S.isStar())
        return false;
      break;
    case PatternDim::Kind::Var: {
      if (!S.isRange())
        return false;
      unsigned Var = Shape[I].varIndex();
      auto Existing = Bindings.lookup(Var);
      if (Existing) {
        if (*Existing != S.loop())
          return false;
        break;
      }
      // Distinct pattern variables must bind distinct loops.
      for (const auto &[OtherVar, Loop] : Bindings.VarToLoop)
        if (OtherVar != Var && Loop == S.loop())
          return false;
      Bindings.VarToLoop[Var] = S.loop();
      break;
    }
    }
  }
  return true;
}

Dimensionality mvec::instantiateShape(const PatternShape &Shape,
                                      const PatternBindings &Bindings) {
  std::vector<DimSymbol> Symbols;
  Symbols.reserve(Shape.size());
  for (const PatternDim &D : Shape) {
    switch (D.kind()) {
    case PatternDim::Kind::One:
      Symbols.push_back(DimSymbol::one());
      break;
    case PatternDim::Kind::Star:
      Symbols.push_back(DimSymbol::star());
      break;
    case PatternDim::Kind::Var: {
      auto Loop = Bindings.lookup(D.varIndex());
      Symbols.push_back(Loop ? DimSymbol::range(*Loop) : DimSymbol::star());
      break;
    }
    }
  }
  return Dimensionality(std::move(Symbols));
}
