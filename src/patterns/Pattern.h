//===- Pattern.h - Loop pattern descriptions --------------------*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The extensible loop pattern database of the paper's Sec. 3. Each pattern
/// is keyed by an operator and the vectorized dimensionalities of its
/// operands, written with pattern variables r1, r2, ... that unify with
/// concrete loop ranges; a matched pattern supplies the output
/// dimensionality and a transformation that rewrites the parse tree.
///
/// Two pattern classes exist, mirroring the paper:
///  - binary-operator patterns (e.g. the dot product X(i,:)*Y(:,i) becoming
///    sum(X(...)'. *Y(...)) );
///  - matrix-access patterns (operator "(.)"), which rewrite subscripted
///    accesses whose vectorized dimensionality repeats a range symbol, such
///    as the diagonal access A(i,i).
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_PATTERNS_PATTERN_H
#define MVEC_PATTERNS_PATTERN_H

#include "deps/LoopNest.h"
#include "frontend/AST.h"
#include "shape/Dim.h"

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mvec {

/// One abstract dimension in a pattern shape: 1, *, or a pattern variable
/// rK that unifies with a concrete loop range.
class PatternDim {
public:
  enum class Kind : uint8_t { One, Star, Var };

  static PatternDim one() { return PatternDim(Kind::One, 0); }
  static PatternDim star() { return PatternDim(Kind::Star, 0); }
  /// Pattern variable rK (K >= 1). Distinct variables bind distinct loops.
  static PatternDim var(unsigned K) { return PatternDim(Kind::Var, K); }

  Kind kind() const { return TheKind; }
  unsigned varIndex() const { return VarIndex; }

private:
  PatternDim(Kind K, unsigned VarIndex) : TheKind(K), VarIndex(VarIndex) {}
  Kind TheKind;
  unsigned VarIndex;
};

using PatternShape = std::vector<PatternDim>;

/// Bindings from pattern variables to concrete loops, produced by matching.
struct PatternBindings {
  std::map<unsigned, LoopId> VarToLoop;

  std::optional<LoopId> lookup(unsigned Var) const {
    auto It = VarToLoop.find(Var);
    if (It == VarToLoop.end())
      return std::nullopt;
    return It->second;
  }
};

/// Context handed to a pattern's transformation: the nest (for loop ranges
/// and trip counts) and the unification bindings.
struct PatternContext {
  const LoopNest *Nest = nullptr;
  PatternBindings Bindings;

  /// Header of the loop bound to pattern variable \p Var (null if absent).
  const LoopHeader *headerForVar(unsigned Var) const {
    if (!Nest)
      return nullptr;
    auto Loop = Bindings.lookup(Var);
    if (!Loop)
      return nullptr;
    return Nest->headerFor(*Loop);
  }
};

/// Rewrites a matched binary expression. Receives the effective operator
/// (the dimension checker may have turned a scalar '*' into '.*') and the
/// (already checked and possibly transpose-adjusted) operand trees, pre
/// index-substitution; the returned tree must have the pattern's declared
/// output dimensionality.
using BinaryTransformFn = std::function<ExprPtr(
    BinaryOp Op, ExprPtr LHS, ExprPtr RHS, const PatternContext &)>;

/// Rewrites a matched subscripted access (e.g. the diagonal A(i,i) into a
/// column-major linear access). Returns null when the access's subscripts
/// resist the rewrite (e.g. non-affine), in which case matching falls
/// through to other patterns.
using AccessTransformFn =
    std::function<ExprPtr(const IndexExpr &Access, const PatternContext &)>;

/// A binary-operator pattern entry.
struct BinaryPattern {
  std::string Name;
  BinaryOp Op;
  /// When true, Op is ignored and the pattern applies to every pointwise
  /// arithmetic operator (the paper's pattern 2 matches any (.)).
  bool AnyPointwiseOp = false;
  PatternShape LHS;
  PatternShape RHS;
  PatternShape Out;
  BinaryTransformFn Transform;
};

/// A matrix-access pattern entry (operator class "(.)").
struct AccessPattern {
  std::string Name;
  PatternShape In; ///< the raw vectorized dimensionality of the access
  PatternShape Out;
  AccessTransformFn Transform;
};

/// Computes a call's output dimensionality from its argument
/// dimensionalities, or nullopt when the signature rejects them.
using CallDimRule = std::function<std::optional<Dimensionality>(
    const std::vector<Dimensionality> &)>;

/// A function-call dimensionality signature — the paper's Sec. 7 proposal
/// ("defining the input and output dimensionalities of the function").
/// Declares how a call's result shape follows from its arguments' shapes,
/// letting the vectorizer treat the call like a matrix access. The default
/// built-ins cover the pointwise math functions (cos, sqrt, ...) and the
/// elementwise two-argument functions (mod, min, max); plugins may add
/// their own.
struct CallPattern {
  std::string Name;   ///< display name
  std::string Callee; ///< matched function name
  unsigned MinArgs = 1;
  unsigned MaxArgs = 1;
  CallDimRule DimRule;
};

/// A successful binary-pattern match.
struct BinaryMatch {
  const BinaryPattern *Pattern = nullptr;
  PatternBindings Bindings;
  Dimensionality OutDims;
};

/// A successful access-pattern match.
struct AccessMatch {
  const AccessPattern *Pattern = nullptr;
  PatternBindings Bindings;
  Dimensionality OutDims;
};

/// Matches \p Shape against \p Dims, extending \p Bindings. Pattern
/// variables unify with range symbols (consistently; distinct variables
/// take distinct loops); 1 matches 1; * matches *. Trailing 1 dimensions
/// are ignored on both sides.
bool matchShape(const PatternShape &Shape, const Dimensionality &Dims,
                PatternBindings &Bindings);

/// Instantiates a pattern shape under \p Bindings.
Dimensionality instantiateShape(const PatternShape &Shape,
                                const PatternBindings &Bindings);

} // namespace mvec

#endif // MVEC_PATTERNS_PATTERN_H
