//===- PatternDatabase.cpp - Extensible pattern registry --------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "patterns/PatternDatabase.h"

using namespace mvec;

std::vector<BinaryMatch>
PatternDatabase::matchBinaryAll(BinaryOp Op, const Dimensionality &LHS,
                                const Dimensionality &RHS) const {
  std::vector<BinaryMatch> Matches;
  for (const BinaryPattern &P : BinaryPatterns) {
    if (P.AnyPointwiseOp) {
      if (!isPointwiseArithOp(Op) && !isElementwiseRelOp(Op))
        continue;
    } else if (P.Op != Op) {
      continue;
    }
    PatternBindings Bindings;
    if (!matchShape(P.LHS, LHS, Bindings))
      continue;
    if (!matchShape(P.RHS, RHS, Bindings))
      continue;
    BinaryMatch Match;
    Match.Pattern = &P;
    Match.Bindings = Bindings;
    Match.OutDims = instantiateShape(P.Out, Bindings);
    Matches.push_back(std::move(Match));
  }
  return Matches;
}

std::optional<BinaryMatch>
PatternDatabase::matchBinary(BinaryOp Op, const Dimensionality &LHS,
                             const Dimensionality &RHS) const {
  std::vector<BinaryMatch> Matches = matchBinaryAll(Op, LHS, RHS);
  if (Matches.empty())
    return std::nullopt;
  return std::move(Matches.front());
}

std::vector<AccessMatch>
PatternDatabase::matchAccessAll(const Dimensionality &Dims) const {
  std::vector<AccessMatch> Matches;
  for (const AccessPattern &P : AccessPatterns) {
    PatternBindings Bindings;
    if (!matchShape(P.In, Dims, Bindings))
      continue;
    AccessMatch Match;
    Match.Pattern = &P;
    Match.Bindings = Bindings;
    Match.OutDims = instantiateShape(P.Out, Bindings);
    Matches.push_back(std::move(Match));
  }
  return Matches;
}

std::optional<AccessMatch>
PatternDatabase::matchAccess(const Dimensionality &Dims) const {
  std::vector<AccessMatch> Matches = matchAccessAll(Dims);
  if (Matches.empty())
    return std::nullopt;
  return std::move(Matches.front());
}

PatternDatabase mvec::makeDefaultPatternDatabase() {
  PatternDatabase DB;
  registerBuiltinPatterns(DB);
  return DB;
}

std::optional<Dimensionality>
PatternDatabase::matchCall(const std::string &Callee,
                           const std::vector<Dimensionality> &ArgDims) const {
  for (const CallPattern &P : CallPatterns) {
    if (P.Callee != Callee)
      continue;
    if (ArgDims.size() < P.MinArgs || ArgDims.size() > P.MaxArgs)
      continue;
    if (auto Out = P.DimRule(ArgDims))
      return Out;
  }
  return std::nullopt;
}

bool PatternDatabase::knowsCall(const std::string &Callee) const {
  for (const CallPattern &P : CallPatterns)
    if (P.Callee == Callee)
      return true;
  return false;
}
