//===- Oracle.h - Differential fuzzing oracle -------------------*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The verdict machinery of the fuzzing subsystem. A candidate program is
/// pushed through vectorizeSource + diffRunLimited and classified:
///
///   Ok        the transformation preserved semantics (or left the
///             program alone) — the paper's Sec. 4 property held;
///   Rejected  the *input* was at fault (parse/annotation error, the
///             original program itself crashed or overran its budget) —
///             expected for mutated candidates, never a finding;
///   Finding   the *pipeline* is at fault: it crashed, produced a
///             program that fails to parse or run, diverged from the
///             original, or ran away (hang).
///
/// Findings carry a bucket signature — a short, stable string derived
/// from the failure point (crash text / first divergent variable /
/// normalized runtime error) — used to deduplicate the stream and to key
/// the corpus. Batch classification fans out over
/// mvec::service::VectorizationService workers with per-job deadlines
/// and step budgets, so a hang becomes a finding instead of a stall.
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_FUZZ_ORACLE_H
#define MVEC_FUZZ_ORACLE_H

#include "fuzz/Generator.h"
#include "service/VectorizationService.h"
#include "vectorizer/Options.h"

#include <chrono>
#include <memory>
#include <string>
#include <vector>

namespace mvec {
namespace fuzz {

enum class FindingKind {
  Crash,              ///< the pipeline threw while vectorizing
  TransformedRunError,///< vectorized program fails to parse or to run
  Mismatch,           ///< both ran; final workspaces or output diverge
  Hang,               ///< transformed run (or the vectorizer) overran
  EngineDivergence,   ///< tree-walker and bytecode VM disagree on a program
  CostDivergence,     ///< cost-model-on output diverges from cost-model-off
};

/// Display name for \p Kind ("crash", "mismatch", ...).
const char *findingKindName(FindingKind Kind);

/// One defect the oracle observed.
struct Finding {
  FindingKind Kind = FindingKind::Mismatch;
  /// Dedup signature: "mismatch:var:s", "trun:<normalized error>", ...
  std::string Bucket;
  /// Full failure description (divergent values, diagnostics, ...).
  std::string Message;
  /// The offending program.
  std::string Source;
  /// Provenance: generator family or mutation trace.
  std::string Family;
};

/// Classification of one candidate.
struct Verdict {
  enum class State { Ok, Rejected, Finding };
  State S = State::Ok;
  /// Valid only when S == Finding.
  Finding F;

  bool ok() const { return S == State::Ok; }
  bool rejected() const { return S == State::Rejected; }
  bool isFinding() const { return S == State::Finding; }
};

/// Which execution tier(s) the oracle validates with. Ast and Vm pick
/// one tier for the differential (original vs transformed) runs; Both
/// additionally cross-checks the two tiers against each other on every
/// program (original, and the vectorized output when one was produced),
/// demanding byte-identical behaviour — see engineDiffRun(). A
/// divergence is a FindingKind::EngineDivergence.
enum class EngineMode { Ast, Vm, Both };

/// Whether the profitability cost model participates. Off reproduces the
/// paper's vectorize-whenever-legal behaviour; On attaches a model to
/// every candidate; Both runs each candidate through *both*
/// configurations and demands that the two transformed programs behave
/// identically — keeping a loop (or choosing another mul-chain variant)
/// must never change semantics. A divergence is a
/// FindingKind::CostDivergence.
enum class CostMode { Off, On, Both };

struct OracleConfig {
  /// Service workers for checkBatch.
  unsigned Jobs = 4;
  /// Result-cache entries (mutants repeat; identical candidates are
  /// served without re-running).
  size_t CacheCapacity = 256;
  /// Wall-clock budget per candidate; hangs become findings.
  std::chrono::milliseconds Deadline{2000};
  /// Deterministic per-run statement budget for the differential runs.
  uint64_t MaxSteps = 2000000;
  /// Workspace comparison tolerance (reductions reorder FP sums).
  double Tol = 1e-7;
  /// Execution tier(s); see EngineMode.
  EngineMode Engine = EngineMode::Ast;
  /// Cost-model participation; see CostMode.
  CostMode Cost = CostMode::Off;
  /// Model used under CostMode::On/Both (null = the built-in conservative
  /// profile). Must outlive the oracle.
  const cost::CostModel *Model = nullptr;
  VectorizerOptions Opts;
};

class Oracle {
public:
  explicit Oracle(OracleConfig Config = {});
  ~Oracle();

  Oracle(const Oracle &) = delete;
  Oracle &operator=(const Oracle &) = delete;

  /// Classifies one candidate synchronously in the calling thread (used
  /// by the reducer's predicate and by corpus replay). Applies the same
  /// budgets and produces the same buckets as checkBatch.
  Verdict check(const std::string &Source,
                const std::string &Family = std::string()) const;

  /// Cross-checks the tree-walker and bytecode VM on \p Source under the
  /// oracle's budgets (see engineDiffRun): Ok when behaviour is
  /// byte-identical (or the comparison is inconclusive because a
  /// wall-clock interrupt fired), Rejected when the program does not
  /// parse, an EngineDivergence finding otherwise. check()/checkBatch()
  /// run this automatically under EngineMode::Both.
  Verdict engineCheck(const std::string &Source,
                      const std::string &Family = std::string()) const;

  /// Classifies many candidates in parallel on the service's workers.
  /// Results are in candidate order.
  std::vector<Verdict> checkBatch(const std::vector<GenProgram> &Candidates);

  /// Maps a service JobResult onto a verdict — the single classification
  /// point for the batch path. Exposed for unit tests.
  static Verdict classifyJob(const JobResult &R);

  /// Bucket-normalizes \p Message: digit runs become '#', whitespace is
  /// collapsed, the result is truncated. Keeps buckets stable across
  /// varying sizes, values and locations.
  static std::string normalizeForBucket(const std::string &Message);

  const OracleConfig &config() const { return Config; }
  ServiceMetrics &metrics();

private:
  /// The differential (original vs transformed) classification under one
  /// specific options configuration; fills \p TransformedOut with the
  /// vectorized source when the pipeline produced one.
  Verdict checkImpl(const std::string &Source, const std::string &Family,
                    const VectorizerOptions &Opts,
                    std::string *TransformedOut) const;
  /// The model consulted under CostMode::On/Both.
  const cost::CostModel *costModel() const;
  /// Compares the model-off and model-on transformed programs; returns a
  /// CostDivergence finding when their behaviour differs.
  Verdict crossCheckCost(const std::string &Source, const std::string &Family,
                         const std::string &OffOut,
                         const std::string &OnOut) const;

  OracleConfig Config;
  std::unique_ptr<VectorizationService> Service;
};

} // namespace fuzz
} // namespace mvec

#endif // MVEC_FUZZ_ORACLE_H
