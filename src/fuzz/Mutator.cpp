//===- Mutator.cpp - Corpus program mutation --------------------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Mutator.h"

#include <cctype>
#include <vector>

using namespace mvec;
using namespace mvec::fuzz;

namespace {

std::vector<std::string> splitLines(const std::string &S) {
  std::vector<std::string> Lines;
  std::string Current;
  for (char C : S) {
    if (C == '\n') {
      Lines.push_back(Current);
      Current.clear();
    } else {
      Current += C;
    }
  }
  if (!Current.empty())
    Lines.push_back(Current);
  return Lines;
}

std::string joinLines(const std::vector<std::string> &Lines) {
  std::string S;
  for (const std::string &Line : Lines) {
    S += Line;
    S += '\n';
  }
  return S;
}

std::string trimmed(const std::string &Line) {
  size_t Begin = Line.find_first_not_of(" \t");
  return Begin == std::string::npos ? std::string() : Line.substr(Begin);
}

/// A plain assignment/expression line — not a comment, loop header or
/// terminator. The unit of splicing, deletion and duplication.
bool isSimpleStatementLine(const std::string &Line) {
  std::string T = trimmed(Line);
  return !T.empty() && T[0] != '%' && T.rfind("for", 0) != 0 &&
         T.rfind("while", 0) != 0 && T.rfind("if", 0) != 0 && T != "end" &&
         T.find('=') != std::string::npos && T.back() == ';';
}

bool isLoopHeaderLine(const std::string &Line) {
  return trimmed(Line).rfind("for ", 0) == 0;
}

} // namespace

Mutant Mutator::mutate(const std::string &Source, const std::string *Donor) {
  Mutant Result;
  Result.Source = Source;
  int Count = R.range(1, 3);
  for (int I = 0; I != Count; ++I) {
    // Draw a mutation kind; skip kinds with no mutation point this round.
    int Kind = R.range(0, 6);
    bool Applied = false;
    const char *Name = "";
    switch (Kind) {
    case 0:
      Applied = swapOperator(Result.Source);
      Name = "swap-op";
      break;
    case 1:
      Applied = jitterNumber(Result.Source);
      Name = "jitter-num";
      break;
    case 2:
      Applied = jitterAnnotation(Result.Source);
      Name = "jitter-ann";
      break;
    case 3:
      Applied = permuteLoopHeaders(Result.Source);
      Name = "permute-loops";
      break;
    case 4:
      Applied = Donor && spliceStatement(Result.Source, *Donor);
      Name = "splice";
      break;
    case 5:
      Applied = deleteStatement(Result.Source);
      Name = "delete-stmt";
      break;
    default:
      Applied = duplicateStatement(Result.Source);
      Name = "dup-stmt";
      break;
    }
    if (Applied) {
      if (!Result.Trace.empty())
        Result.Trace += ',';
      Result.Trace += Name;
    }
  }
  return Result;
}

bool Mutator::swapOperator(std::string &S) {
  // Candidate operator occurrences outside comments: the pointwise
  // two-character forms first, then the bare arithmetic characters.
  static const std::vector<std::string> Pool = {"+",  "-",  "*",  "/",
                                                "^",  ".*", "./", ".^"};
  struct Site {
    size_t Pos;
    size_t Len;
  };
  std::vector<Site> Sites;
  bool InComment = false;
  for (size_t I = 0; I != S.size(); ++I) {
    char C = S[I];
    if (C == '\n') {
      InComment = false;
      continue;
    }
    if (InComment)
      continue;
    if (C == '%') {
      InComment = true;
      continue;
    }
    if (C == '.' && I + 1 != S.size() &&
        (S[I + 1] == '*' || S[I + 1] == '/' || S[I + 1] == '^')) {
      Sites.push_back({I, 2});
      ++I;
      continue;
    }
    if ((C == '+' || C == '-' || C == '*' || C == '/' || C == '^') &&
        (I == 0 || S[I - 1] != '.'))
      Sites.push_back({I, 1});
  }
  if (Sites.empty())
    return false;
  const Site &Chosen = Sites[R.range(0, static_cast<int>(Sites.size()) - 1)];
  std::string Current = S.substr(Chosen.Pos, Chosen.Len);
  std::string Replacement = Current;
  while (Replacement == Current)
    Replacement = R.pick(Pool);
  S.replace(Chosen.Pos, Chosen.Len, Replacement);
  return true;
}

bool Mutator::jitterNumber(std::string &S) {
  // Integer literals only: a digit run not adjacent to '.' (floats keep
  // their value; sizes and bounds are where the interesting shifts are).
  struct Site {
    size_t Pos;
    size_t Len;
  };
  std::vector<Site> Sites;
  bool InComment = false;
  for (size_t I = 0; I != S.size(); ++I) {
    if (S[I] == '\n') {
      InComment = false;
      continue;
    }
    if (InComment)
      continue;
    if (S[I] == '%') {
      InComment = true;
      continue;
    }
    if (!std::isdigit(static_cast<unsigned char>(S[I])))
      continue;
    size_t End = I;
    while (End != S.size() &&
           std::isdigit(static_cast<unsigned char>(S[End])))
      ++End;
    bool DotBefore = I != 0 && S[I - 1] == '.';
    bool DotAfter = End != S.size() && S[End] == '.';
    bool IdentBefore =
        I != 0 && (std::isalpha(static_cast<unsigned char>(S[I - 1])) ||
                   S[I - 1] == '_');
    if (!DotBefore && !DotAfter && !IdentBefore)
      Sites.push_back({I, End - I});
    I = End - 1;
  }
  if (Sites.empty())
    return false;
  const Site &Chosen = Sites[R.range(0, static_cast<int>(Sites.size()) - 1)];
  long Value = std::stol(S.substr(Chosen.Pos, Chosen.Len));
  long Delta = 0;
  while (Delta == 0)
    Delta = R.range(-2, 2);
  Value = std::max(0l, Value + Delta);
  S.replace(Chosen.Pos, Chosen.Len, std::to_string(Value));
  return true;
}

bool Mutator::jitterAnnotation(std::string &S) {
  static const std::vector<std::string> Shapes = {"(1,*)", "(*,1)", "(*,*)",
                                                  "(1)"};
  std::vector<std::string> Lines = splitLines(S);
  std::vector<size_t> AnnLines;
  for (size_t I = 0; I != Lines.size(); ++I)
    if (trimmed(Lines[I]).rfind("%!", 0) == 0)
      AnnLines.push_back(I);
  if (AnnLines.empty())
    return false;
  std::string &Line =
      Lines[AnnLines[R.range(0, static_cast<int>(AnnLines.size()) - 1)]];
  struct Site {
    size_t Pos;
    size_t Len;
  };
  std::vector<Site> Sites;
  for (const std::string &Shape : Shapes)
    for (size_t Pos = Line.find(Shape); Pos != std::string::npos;
         Pos = Line.find(Shape, Pos + 1))
      Sites.push_back({Pos, Shape.size()});
  if (Sites.empty())
    return false;
  const Site &Chosen = Sites[R.range(0, static_cast<int>(Sites.size()) - 1)];
  std::string Current = Line.substr(Chosen.Pos, Chosen.Len);
  std::string Replacement = Current;
  while (Replacement == Current)
    Replacement = R.pick(Shapes);
  Line.replace(Chosen.Pos, Chosen.Len, Replacement);
  S = joinLines(Lines);
  return true;
}

bool Mutator::permuteLoopHeaders(std::string &S) {
  std::vector<std::string> Lines = splitLines(S);
  std::vector<size_t> Headers;
  for (size_t I = 0; I != Lines.size(); ++I)
    if (isLoopHeaderLine(Lines[I]))
      Headers.push_back(I);
  if (Headers.size() < 2)
    return false;
  int A = R.range(0, static_cast<int>(Headers.size()) - 1);
  int B = A;
  while (B == A)
    B = R.range(0, static_cast<int>(Headers.size()) - 1);
  std::swap(Lines[Headers[A]], Lines[Headers[B]]);
  S = joinLines(Lines);
  return true;
}

bool Mutator::spliceStatement(std::string &S, const std::string &Donor) {
  std::vector<std::string> DonorLines = splitLines(Donor);
  std::vector<std::string> Candidates;
  for (const std::string &Line : DonorLines)
    if (isSimpleStatementLine(Line))
      Candidates.push_back(trimmed(Line));
  if (Candidates.empty())
    return false;
  std::vector<std::string> Lines = splitLines(S);
  size_t At = static_cast<size_t>(R.range(0, static_cast<int>(Lines.size())));
  Lines.insert(Lines.begin() + At, "  " + R.pick(Candidates));
  S = joinLines(Lines);
  return true;
}

bool Mutator::deleteStatement(std::string &S) {
  std::vector<std::string> Lines = splitLines(S);
  std::vector<size_t> Candidates;
  for (size_t I = 0; I != Lines.size(); ++I)
    if (isSimpleStatementLine(Lines[I]))
      Candidates.push_back(I);
  if (Candidates.empty())
    return false;
  Lines.erase(Lines.begin() +
              Candidates[R.range(0, static_cast<int>(Candidates.size()) - 1)]);
  S = joinLines(Lines);
  return true;
}

bool Mutator::duplicateStatement(std::string &S) {
  std::vector<std::string> Lines = splitLines(S);
  std::vector<size_t> Candidates;
  for (size_t I = 0; I != Lines.size(); ++I)
    if (isSimpleStatementLine(Lines[I]))
      Candidates.push_back(I);
  if (Candidates.empty())
    return false;
  size_t At = Candidates[R.range(0, static_cast<int>(Candidates.size()) - 1)];
  Lines.insert(Lines.begin() + At, Lines[At]);
  S = joinLines(Lines);
  return true;
}
