//===- Corpus.cpp - On-disk finding corpus -----------------------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Corpus.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace mvec;
using namespace mvec::fuzz;

namespace fs = std::filesystem;

namespace {

/// Parses "key=value" pairs out of a "% fuzz-finding:" header line.
std::string headerValue(const std::string &Line, const std::string &Key) {
  size_t Pos = Line.find(Key + "=");
  if (Pos == std::string::npos)
    return std::string();
  Pos += Key.size() + 1;
  size_t End = Pos;
  while (End != Line.size() &&
         !std::isspace(static_cast<unsigned char>(Line[End])))
    ++End;
  return Line.substr(Pos, End - Pos);
}

FindingKind kindFromName(const std::string &Name) {
  if (Name == "crash")
    return FindingKind::Crash;
  if (Name == "transformed-run-error")
    return FindingKind::TransformedRunError;
  if (Name == "hang")
    return FindingKind::Hang;
  return FindingKind::Mismatch;
}

/// Fills the metadata fields of \p Entry from the leading comment lines
/// of its source. Unknown or absent headers leave the defaults.
void parseHeaders(CorpusEntry &Entry) {
  std::istringstream In(Entry.Source);
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.rfind("% fuzz-finding:", 0) == 0) {
      Entry.Kind = kindFromName(headerValue(Line, "kind"));
      Entry.Fixed = headerValue(Line, "status") == "fixed";
      continue;
    }
    if (Line.rfind("% bucket:", 0) == 0) {
      std::string Bucket = Line.substr(std::string("% bucket:").size());
      size_t Begin = Bucket.find_first_not_of(' ');
      Entry.Bucket =
          Begin == std::string::npos ? std::string() : Bucket.substr(Begin);
      continue;
    }
    // Headers only appear at the top; the first non-header line ends the
    // scan (blank lines and other comments are allowed in between).
    if (!Line.empty() && Line[0] != '%')
      break;
  }
}

} // namespace

Corpus::Corpus(std::string Dir) : Dir(std::move(Dir)) {}

size_t Corpus::load() {
  Entries.clear();
  std::error_code EC;
  if (!fs::is_directory(Dir, EC))
    return 0;
  std::vector<fs::path> Files;
  for (const fs::directory_entry &DE : fs::directory_iterator(Dir, EC))
    if (DE.is_regular_file() && DE.path().extension() == ".m")
      Files.push_back(DE.path());
  // directory_iterator order is unspecified; sort for reproducible
  // replay reports and mutation-donor selection.
  std::sort(Files.begin(), Files.end());
  for (const fs::path &File : Files) {
    std::ifstream In(File);
    if (!In)
      continue;
    std::ostringstream Buffer;
    Buffer << In.rdbuf();
    CorpusEntry Entry;
    Entry.Path = File.string();
    Entry.Name = File.stem().string();
    Entry.Source = Buffer.str();
    parseHeaders(Entry);
    Entries.push_back(std::move(Entry));
  }
  return Entries.size();
}

bool Corpus::containsBucket(const std::string &Bucket) const {
  for (const CorpusEntry &Entry : Entries)
    if (Entry.Bucket == Bucket)
      return true;
  return false;
}

std::string Corpus::slugify(const std::string &Bucket) {
  std::string Slug;
  for (char C : Bucket) {
    if (std::isalnum(static_cast<unsigned char>(C)))
      Slug += static_cast<char>(
          std::tolower(static_cast<unsigned char>(C)));
    else if (!Slug.empty() && Slug.back() != '-')
      Slug += '-';
  }
  while (!Slug.empty() && Slug.back() == '-')
    Slug.pop_back();
  if (Slug.empty())
    Slug = "finding";
  if (Slug.size() > 64)
    Slug.resize(64);
  return Slug;
}

std::string Corpus::formatEntry(const Finding &F, const std::string &Body,
                                bool Fixed) {
  std::string Out;
  Out += "% fuzz-finding: kind=";
  Out += findingKindName(F.Kind);
  Out += " status=";
  Out += Fixed ? "fixed" : "open";
  Out += '\n';
  Out += "% bucket: " + F.Bucket + '\n';
  if (!F.Family.empty())
    Out += "% family: " + F.Family + '\n';
  Out += Body;
  if (Out.empty() || Out.back() != '\n')
    Out += '\n';
  return Out;
}

std::string Corpus::add(const Finding &F, const std::string &ReducedSource) {
  if (containsBucket(F.Bucket))
    return std::string();
  std::error_code EC;
  fs::create_directories(Dir, EC);
  std::string Slug = slugify(F.Bucket);
  fs::path Path = fs::path(Dir) / (Slug + ".m");
  // A slug collision with a different bucket gets a numeric suffix.
  for (unsigned N = 2; fs::exists(Path, EC); ++N)
    Path = fs::path(Dir) / (Slug + "-" + std::to_string(N) + ".m");
  CorpusEntry Entry;
  Entry.Path = Path.string();
  Entry.Name = Path.stem().string();
  Entry.Bucket = F.Bucket;
  Entry.Kind = F.Kind;
  Entry.Fixed = false;
  Entry.Source = formatEntry(F, ReducedSource, /*Fixed=*/false);
  std::ofstream Out(Path);
  if (!Out)
    return std::string();
  Out << Entry.Source;
  Out.close();
  Entries.push_back(std::move(Entry));
  return Entries.back().Path;
}

std::vector<ReplayResult> Corpus::replay(const Oracle &O) const {
  std::vector<ReplayResult> Results;
  Results.reserve(Entries.size());
  for (const CorpusEntry &Entry : Entries) {
    ReplayResult R;
    R.Entry = &Entry;
    R.V = O.check(Entry.Source, "corpus:" + Entry.Name);
    // A fixed entry is a regression test: it must vectorize and match.
    // Rejection also counts as a regression — the stored reproducer
    // stopped being a valid program, which defeats its purpose.
    R.Regressed = Entry.Fixed && !R.V.ok();
    Results.push_back(std::move(R));
  }
  return Results;
}
