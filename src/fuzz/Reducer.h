//===- Reducer.h - Test-case reduction --------------------------*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST-level delta debugging: shrinks a failing program to a minimal
/// reproducer while a caller-supplied predicate keeps holding. The
/// predicate is typically "the oracle still reports the same bucket",
/// which pins the reduction to one defect; any predicate works, so tests
/// can drive the reducer with synthetic failures.
///
/// The loop alternates three passes to a fixpoint: ddmin-style statement
/// (subtree) removal, greedy expression simplification (drop an operand
/// of a binary, unwrap transposes, collapse subscripts and literals),
/// and shape-annotation pruning. Candidates that no longer parse simply
/// fail the predicate, so every accepted step is a valid program.
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_FUZZ_REDUCER_H
#define MVEC_FUZZ_REDUCER_H

#include <cstddef>
#include <functional>
#include <string>

namespace mvec {
namespace fuzz {

/// Returns true while the candidate still reproduces the failure under
/// reduction. Called many times; must be deterministic.
using FailPredicate = std::function<bool(const std::string &)>;

struct ReduceOptions {
  /// Fixpoint rounds over the three passes.
  unsigned MaxRounds = 6;
  /// Hard cap on predicate invocations (each runs the full oracle).
  unsigned MaxChecks = 2000;
};

struct ReduceResult {
  /// The minimized program (equal to the input when nothing shrank).
  std::string Reduced;
  size_t OriginalTokens = 0;
  size_t ReducedTokens = 0;
  /// Predicate invocations spent.
  unsigned Checks = 0;
};

/// Number of lexical tokens in \p Source, excluding separators — the
/// size metric reduction minimizes.
size_t countTokens(const std::string &Source);

/// Shrinks \p Source while \p StillFails holds. \p StillFails must be
/// true for \p Source itself; otherwise the input is returned unchanged.
ReduceResult reduceProgram(const std::string &Source,
                           const FailPredicate &StillFails,
                           const ReduceOptions &Opts = {});

} // namespace fuzz
} // namespace mvec

#endif // MVEC_FUZZ_REDUCER_H
