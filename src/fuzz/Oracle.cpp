//===- Oracle.cpp - Differential fuzzing oracle -----------------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Oracle.h"

#include "cost/CostModel.h"
#include "driver/Pipeline.h"

#include <cctype>

using namespace mvec;
using namespace mvec::fuzz;

const char *mvec::fuzz::findingKindName(FindingKind Kind) {
  switch (Kind) {
  case FindingKind::Crash:
    return "crash";
  case FindingKind::TransformedRunError:
    return "transformed-run-error";
  case FindingKind::Mismatch:
    return "mismatch";
  case FindingKind::Hang:
    return "hang";
  case FindingKind::EngineDivergence:
    return "engine-divergence";
  case FindingKind::CostDivergence:
    return "cost-divergence";
  }
  return "unknown";
}

namespace {

bool startsWith(const std::string &S, const char *Prefix) {
  return S.rfind(Prefix, 0) == 0;
}

/// Extracts the text between the first pair of single quotes ("variable
/// 'name' differs" -> "name"); empty when there is no quoted token.
std::string firstQuoted(const std::string &S) {
  size_t Open = S.find('\'');
  if (Open == std::string::npos)
    return std::string();
  size_t Close = S.find('\'', Open + 1);
  if (Close == std::string::npos)
    return std::string();
  return S.substr(Open + 1, Close - Open - 1);
}

Verdict finding(FindingKind Kind, std::string Bucket, std::string Message) {
  Verdict V;
  V.S = Verdict::State::Finding;
  V.F.Kind = Kind;
  V.F.Bucket = std::move(Bucket);
  V.F.Message = std::move(Message);
  return V;
}

Verdict rejected() {
  Verdict V;
  V.S = Verdict::State::Rejected;
  return V;
}

/// Shared classification of a differential-run failure description — the
/// strings produced by diffRunLimited (Pipeline.cpp). Both the sync path
/// (which holds the DiffOutcome) and the batch path (which recovers it
/// from the JobResult message) land here, so buckets are identical.
Verdict classifyDiff(DiffStatus Status, const std::string &Msg) {
  switch (Status) {
  case DiffStatus::Match:
    return Verdict{};
  case DiffStatus::Cancelled:
    return rejected();
  case DiffStatus::TimedOut:
    // A slow original is the input's fault; a slow transformed program
    // means the transformation changed the amount of work.
    if (startsWith(Msg, "original program"))
      return rejected();
    return finding(FindingKind::Hang, "hang:transformed", Msg);
  case DiffStatus::Error:
    if (startsWith(Msg, "original program"))
      return rejected();
    if (startsWith(Msg, "transformed program does not parse"))
      return finding(FindingKind::TransformedRunError,
                     "trun:parse:" + Oracle::normalizeForBucket(Msg), Msg);
    if (startsWith(Msg, "transformed program failed: ")) {
      std::string Err = Msg.substr(std::string("transformed program failed: ")
                                       .size());
      return finding(FindingKind::TransformedRunError,
                     "trun:" + Oracle::normalizeForBucket(Err), Msg);
    }
    return finding(FindingKind::TransformedRunError,
                   "trun:" + Oracle::normalizeForBucket(Msg), Msg);
  case DiffStatus::Mismatch:
    if (startsWith(Msg, "variable '")) {
      std::string Var = firstQuoted(Msg);
      if (Msg.find("missing after transformation") != std::string::npos)
        return finding(FindingKind::Mismatch, "mismatch:missing:" + Var, Msg);
      return finding(FindingKind::Mismatch, "mismatch:var:" + Var, Msg);
    }
    if (startsWith(Msg, "transformation introduced variable"))
      return finding(FindingKind::Mismatch,
                     "mismatch:introduced:" + firstQuoted(Msg), Msg);
    return finding(FindingKind::Mismatch, "mismatch:output", Msg);
  }
  return rejected();
}

} // namespace

std::string Oracle::normalizeForBucket(const std::string &Message) {
  std::string Out;
  bool LastWasHash = false, LastWasSpace = false;
  for (char C : Message) {
    if (std::isdigit(static_cast<unsigned char>(C))) {
      if (!LastWasHash)
        Out += '#';
      LastWasHash = true;
      LastWasSpace = false;
      continue;
    }
    LastWasHash = false;
    if (std::isspace(static_cast<unsigned char>(C))) {
      if (!LastWasSpace && !Out.empty())
        Out += ' ';
      LastWasSpace = true;
      continue;
    }
    LastWasSpace = false;
    Out += C;
  }
  while (!Out.empty() && Out.back() == ' ')
    Out.pop_back();
  if (Out.size() > 96)
    Out.resize(96);
  return Out;
}

Oracle::Oracle(OracleConfig Config) : Config(Config) {
  ServiceConfig SC;
  SC.Workers = Config.Jobs;
  SC.CacheCapacity = Config.CacheCapacity;
  SC.DefaultDeadline = Config.Deadline;
  // Submission happens in batches sized to the worker count; a roomy
  // queue keeps the generator ahead of the workers.
  SC.QueueCapacity = std::max<size_t>(64, 8 * Config.Jobs);
  // Degradation would repackage "internal error:" crashes as Degraded
  // passthrough results and hide them from the oracle; the fuzzer wants
  // the raw failure, not the graceful fallback.
  SC.Resilience.DegradeOnExhaustion = false;
  SC.Resilience.Retry.MaxAttempts = 1;
  // Vm mode validates on the bytecode tier; Both keeps the service on the
  // tree-walker and layers the engine cross-check on top (engineCheck).
  SC.Engine = Config.Engine == EngineMode::Vm ? ExecEngine::Vm
                                              : ExecEngine::Ast;
  Service = std::make_unique<VectorizationService>(SC);
}

Oracle::~Oracle() = default;

ServiceMetrics &Oracle::metrics() { return Service->metrics(); }

Verdict Oracle::engineCheck(const std::string &Source,
                            const std::string &Family) const {
  Verdict V;
  try {
    RunLimits Limits;
    Limits.MaxSteps = Config.MaxSteps;
    if (Config.Deadline.count() > 0)
      Limits.Deadline = std::chrono::steady_clock::now() + Config.Deadline;
    DiffOutcome Diff = engineDiffRun(Source, Limits);
    switch (Diff.Status) {
    case DiffStatus::Match:
      break;
    case DiffStatus::Error:     // the program itself does not parse
    case DiffStatus::TimedOut:  // wall-clock interrupt: inconclusive
    case DiffStatus::Cancelled:
      V = rejected();
      break;
    case DiffStatus::Mismatch:
      V = finding(FindingKind::EngineDivergence,
                  "engine:" + normalizeForBucket(Diff.Message), Diff.Message);
      break;
    }
  } catch (const std::exception &E) {
    V = finding(FindingKind::Crash,
                "crash:" + normalizeForBucket(E.what()),
                std::string("internal error: ") + E.what());
  } catch (...) {
    V = finding(FindingKind::Crash, "crash:unknown",
                "internal error: unknown exception");
  }
  if (V.isFinding()) {
    V.F.Source = Source;
    V.F.Family = Family;
  }
  return V;
}

const cost::CostModel *Oracle::costModel() const {
  if (Config.Cost == CostMode::Off)
    return nullptr;
  return Config.Model ? Config.Model : &cost::builtinCostModel();
}

Verdict Oracle::checkImpl(const std::string &Source,
                          const std::string &Family,
                          const VectorizerOptions &Opts,
                          std::string *TransformedOut) const {
  Verdict V;
  try {
    PipelineResult P = vectorizeSource(Source, Opts);
    if (!P.succeeded()) {
      // The pipeline refused the input with diagnostics; for a fuzzer
      // that is the expected fate of malformed mutants, not a defect.
      V = rejected();
    } else {
      if (TransformedOut)
        *TransformedOut = P.VectorizedSource;
      RunLimits Limits;
      Limits.MaxSteps = Config.MaxSteps;
      // Mutation can make the code contradict its %! annotations; a
      // divergence on a lying input blames the input, not the vectorizer.
      Limits.CheckAnnotations = true;
      if (Config.Deadline.count() > 0)
        Limits.Deadline = std::chrono::steady_clock::now() + Config.Deadline;
      if (Config.Engine == EngineMode::Vm)
        Limits.Engine = ExecEngine::Vm;
      DiffOutcome Diff =
          diffRunLimited(Source, P.VectorizedSource, Limits, Config.Tol);
      V = classifyDiff(Diff.Status, Diff.Message);
      if (V.ok() && Config.Engine == EngineMode::Both) {
        // The vectorized output is a program too; both tiers must agree
        // on it as well.
        Verdict E = engineCheck(P.VectorizedSource, Family);
        if (E.isFinding())
          return E;
      }
    }
  } catch (const std::exception &E) {
    V = finding(FindingKind::Crash,
                "crash:" + normalizeForBucket(E.what()),
                std::string("internal error: ") + E.what());
  } catch (...) {
    V = finding(FindingKind::Crash, "crash:unknown",
                "internal error: unknown exception");
  }
  if (V.isFinding()) {
    V.F.Source = Source;
    V.F.Family = Family;
  }
  return V;
}

Verdict Oracle::crossCheckCost(const std::string &Source,
                               const std::string &Family,
                               const std::string &OffOut,
                               const std::string &OnOut) const {
  if (OffOut == OnOut)
    return Verdict{};
  RunLimits Limits;
  Limits.MaxSteps = Config.MaxSteps;
  if (Config.Deadline.count() > 0)
    Limits.Deadline = std::chrono::steady_clock::now() + Config.Deadline;
  if (Config.Engine == EngineMode::Vm)
    Limits.Engine = ExecEngine::Vm;
  // Both outputs already matched the original within Tol, so by the
  // triangle inequality they agree within 2*Tol; a wider gap means the
  // cost model changed semantics, not just rounding.
  DiffOutcome Diff = diffRunLimited(OffOut, OnOut, Limits, 2 * Config.Tol);
  if (Diff.Status != DiffStatus::Mismatch)
    return Verdict{}; // re-run noise (budget/interrupt), not a verdict
  Verdict V = finding(FindingKind::CostDivergence,
                      "cost-divergence:" + normalizeForBucket(Diff.Message),
                      "cost-model-on output diverges from cost-model-off "
                      "output: " +
                          Diff.Message);
  V.F.Source = Source;
  V.F.Family = Family;
  return V;
}

Verdict Oracle::check(const std::string &Source,
                      const std::string &Family) const {
  // Under EngineMode::Both, the tier cross-check runs first: an engine
  // divergence on the *original* program poisons any differential verdict
  // about the transformation, so it dominates.
  if (Config.Engine == EngineMode::Both) {
    Verdict E = engineCheck(Source, Family);
    if (E.isFinding())
      return E;
  }
  VectorizerOptions Base = Config.Opts;
  VectorizerOptions WithModel = Base;
  WithModel.Cost = costModel();

  if (Config.Cost != CostMode::Both)
    return checkImpl(Source, Family,
                     Config.Cost == CostMode::On ? WithModel : Base, nullptr);

  // CostMode::Both: model-off first (its buckets are the stable,
  // paper-faithful ones), then model-on, then the off-vs-on semantic
  // cross-check on the two transformed programs.
  std::string OffOut, OnOut;
  Verdict Off = checkImpl(Source, Family, Base, &OffOut);
  if (!Off.ok())
    return Off;
  Verdict On = checkImpl(Source, Family, WithModel, &OnOut);
  if (On.isFinding()) {
    // The defect only manifests with the model attached; mark the bucket
    // so it never collapses into an off-mode signature.
    On.F.Bucket = "cost:" + On.F.Bucket;
    return On;
  }
  if (!On.ok())
    return On;
  Verdict Cross = crossCheckCost(Source, Family, OffOut, OnOut);
  return Cross.isFinding() ? Cross : Off;
}

Verdict Oracle::classifyJob(const JobResult &R) {
  switch (R.Status) {
  case JobStatus::Succeeded:
    return Verdict{};
  case JobStatus::Cancelled:
  case JobStatus::Degraded:
    // Degraded should not occur with DegradeOnExhaustion off (see the
    // constructor); treat it as non-finding if a custom config allows it.
    return rejected();
  case JobStatus::TimedOut: {
    if (startsWith(R.Message, "deadline exceeded during vectorization"))
      return finding(FindingKind::Hang, "hang:vectorize", R.Message);
    const char *Prefix = "validation timed out: ";
    std::string Msg = startsWith(R.Message, Prefix)
                          ? R.Message.substr(std::string(Prefix).size())
                          : R.Message;
    return classifyDiff(DiffStatus::TimedOut, Msg);
  }
  case JobStatus::Failed: {
    if (startsWith(R.Message, "internal error: "))
      return finding(
          FindingKind::Crash,
          "crash:" + normalizeForBucket(
                         R.Message.substr(std::string("internal error: ")
                                              .size())),
          R.Message);
    const char *Prefix = "validation failed: ";
    if (startsWith(R.Message, Prefix)) {
      std::string Msg = R.Message.substr(std::string(Prefix).size());
      // Re-derive the diff status from the message shape; the two
      // failure classes diffRunLimited can produce under this prefix are
      // Error ("... program ...") and Mismatch (everything else).
      DiffStatus Status = startsWith(Msg, "original program") ||
                                  startsWith(Msg, "transformed program")
                              ? DiffStatus::Error
                              : DiffStatus::Mismatch;
      return classifyDiff(Status, Msg);
    }
    // Anything else is the pipeline's diagnostics for an input it
    // refused (parse/annotation errors): invalid input, not a finding.
    return rejected();
  }
  }
  return rejected();
}

std::vector<Verdict>
Oracle::checkBatch(const std::vector<GenProgram> &Candidates) {
  const bool CostBoth = Config.Cost == CostMode::Both;
  std::vector<JobSpec> Specs;
  Specs.reserve(Candidates.size() * (CostBoth ? 2 : 1));
  for (const GenProgram &Candidate : Candidates) {
    JobSpec Spec;
    Spec.Name = Candidate.Family;
    Spec.Source = Candidate.Source;
    Spec.Opts = Config.Opts;
    if (Config.Cost == CostMode::On)
      Spec.Opts.Cost = costModel();
    Spec.Validate = true;
    Spec.Deadline = Config.Deadline;
    Spec.ValidateTol = Config.Tol;
    Spec.MaxSteps = Config.MaxSteps;
    Spec.CheckAnnotations = true;
    if (CostBoth) {
      // Paired submission: the model-on twin rides the same batch (the
      // options fingerprint separates the cache entries), and the
      // verdict loop below cross-checks each pair.
      JobSpec Twin = Spec;
      Twin.Opts.Cost = costModel();
      Specs.push_back(std::move(Spec));
      Specs.push_back(std::move(Twin));
    } else {
      Specs.push_back(std::move(Spec));
    }
  }
  std::vector<JobResult> Results = Service->runBatch(std::move(Specs));
  std::vector<Verdict> Verdicts;
  Verdicts.reserve(Candidates.size());
  for (size_t I = 0; I != Candidates.size(); ++I) {
    const JobResult &R = Results[CostBoth ? 2 * I : I];
    Verdict V = classifyJob(R);
    if (V.isFinding()) {
      V.F.Source = Candidates[I].Source;
      V.F.Family = Candidates[I].Family;
    } else if (Config.Engine == EngineMode::Both) {
      // Tier cross-check on top of the service verdict: the original
      // always, the vectorized output when one was produced. A pipeline
      // finding above still wins — it already names a defect.
      V = engineCheck(Candidates[I].Source, Candidates[I].Family);
      if (!V.isFinding() && R.succeeded() && !R.VectorizedSource.empty())
        V = engineCheck(R.VectorizedSource, Candidates[I].Family);
      if (!V.isFinding())
        V = classifyJob(R);
    }
    if (CostBoth && !V.isFinding()) {
      const JobResult &ROn = Results[2 * I + 1];
      Verdict On = classifyJob(ROn);
      if (On.isFinding()) {
        On.F.Bucket = "cost:" + On.F.Bucket;
        On.F.Source = Candidates[I].Source;
        On.F.Family = Candidates[I].Family;
        V = std::move(On);
      } else if (R.succeeded() && ROn.succeeded()) {
        Verdict Cross =
            crossCheckCost(Candidates[I].Source, Candidates[I].Family,
                           R.VectorizedSource, ROn.VectorizedSource);
        if (Cross.isFinding())
          V = std::move(Cross);
      }
    }
    Verdicts.push_back(std::move(V));
  }
  return Verdicts;
}
