//===- Mutator.h - Corpus program mutation ----------------------*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Text-level mutation of existing corpus programs. Mutations are
/// deliberately applied to the source text rather than the AST so they
/// can perturb everything the pipeline consumes — including the `%!`
/// shape annotations, which the AST printer does not carry. A mutant
/// that no longer parses (or no longer runs) is simply rejected by the
/// oracle; only the transformed-versus-original contract counts as a
/// finding.
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_FUZZ_MUTATOR_H
#define MVEC_FUZZ_MUTATOR_H

#include "fuzz/Rng.h"

#include <string>

namespace mvec {
namespace fuzz {

/// One mutated candidate plus the mutation trace (for triage reports).
struct Mutant {
  std::string Source;
  /// Comma-separated names of the mutations applied ("swap-op,jitter-num").
  std::string Trace;
};

class Mutator {
public:
  explicit Mutator(uint64_t Seed) : R(Seed) {}

  /// Applies 1–3 random mutations to \p Source. \p Donor, when non-null,
  /// supplies statements for splicing. Falls back to returning the input
  /// unchanged (with an empty trace) when no mutation point exists.
  Mutant mutate(const std::string &Source,
                const std::string *Donor = nullptr);

private:
  bool swapOperator(std::string &S);
  bool jitterNumber(std::string &S);
  bool jitterAnnotation(std::string &S);
  bool permuteLoopHeaders(std::string &S);
  bool spliceStatement(std::string &S, const std::string &Donor);
  bool deleteStatement(std::string &S);
  bool duplicateStatement(std::string &S);

  Rng R;
};

} // namespace fuzz
} // namespace mvec

#endif // MVEC_FUZZ_MUTATOR_H
