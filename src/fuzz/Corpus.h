//===- Corpus.h - On-disk finding corpus ------------------------*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Persistence and triage for fuzzer findings. Each corpus entry is a
/// plain MATLAB file whose leading comment lines carry the triage
/// metadata:
///
///   % fuzz-finding: kind=mismatch status=fixed
///   % bucket: mismatch:var:s
///   <the minimized program>
///
/// Entries are keyed by bucket signature: a second finding with a bucket
/// already on disk is a duplicate and is not re-saved. Entries marked
/// status=fixed double as a regression suite — \c replay re-runs every
/// entry through the oracle and reports fixed entries that fail again.
/// Entries marked status=open document known, not-yet-fixed defects; the
/// fuzz driver treats their buckets as known and only fails on buckets
/// that appear in neither set.
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_FUZZ_CORPUS_H
#define MVEC_FUZZ_CORPUS_H

#include "fuzz/Oracle.h"

#include <string>
#include <vector>

namespace mvec {
namespace fuzz {

struct CorpusEntry {
  /// Absolute or corpus-relative path of the backing file.
  std::string Path;
  /// File stem, e.g. "mismatch-var-s".
  std::string Name;
  /// Bucket signature from the "% bucket:" header (empty when absent).
  std::string Bucket;
  /// Finding kind from the header; Mismatch when unspecified.
  FindingKind Kind = FindingKind::Mismatch;
  /// "fixed" entries are regressions that must pass; "open" entries are
  /// known defects that may still fail.
  bool Fixed = false;
  /// Full file contents (headers included) — valid fuzz seed material.
  std::string Source;
};

/// Result of re-running one corpus entry through the oracle.
struct ReplayResult {
  const CorpusEntry *Entry = nullptr;
  Verdict V;
  /// True when the outcome contradicts the entry's status: a fixed entry
  /// that produced a finding again (regression), or was rejected outright
  /// (the stored reproducer no longer parses/runs).
  bool Regressed = false;
};

class Corpus {
public:
  /// Binds the corpus to \p Dir without touching the filesystem; call
  /// \c load to read existing entries. The directory is created lazily on
  /// the first \c add.
  explicit Corpus(std::string Dir);

  /// Reads every *.m file under the corpus directory. Returns the number
  /// of entries loaded; a missing directory is an empty corpus, not an
  /// error. Replaces any previously loaded state.
  size_t load();

  /// True when \p Bucket matches a loaded entry (fixed or open).
  bool containsBucket(const std::string &Bucket) const;

  /// Persists \p F as a new open entry with \p ReducedSource as the body
  /// and returns its path. Returns an empty string (and writes nothing)
  /// when the bucket is already present. File names are slugs of the
  /// bucket signature.
  std::string add(const Finding &F, const std::string &ReducedSource);

  /// Re-checks every entry against \p O. Fixed entries must come back
  /// Ok; anything else is flagged as regressed. Open entries are
  /// reported but never regress (they are allowed to keep failing — and
  /// also to start passing, e.g. after an unrelated fix).
  std::vector<ReplayResult> replay(const Oracle &O) const;

  const std::vector<CorpusEntry> &entries() const { return Entries; }
  const std::string &dir() const { return Dir; }

  /// Renders \p F and \p Body as a corpus file ("% fuzz-finding:" and
  /// "% bucket:" headers followed by the program). Exposed so tests and
  /// tools can mint entries without a Corpus instance.
  static std::string formatEntry(const Finding &F, const std::string &Body,
                                 bool Fixed);

  /// Filesystem-safe slug of a bucket signature ("mismatch:var:s" ->
  /// "mismatch-var-s").
  static std::string slugify(const std::string &Bucket);

private:
  std::string Dir;
  std::vector<CorpusEntry> Entries;
};

} // namespace fuzz
} // namespace mvec

#endif // MVEC_FUZZ_CORPUS_H
