//===- Generator.cpp - Random annotated-program generator -------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Generator.h"

#include <algorithm>

using namespace mvec;
using namespace mvec::fuzz;

namespace {

std::string num(int Value) { return std::to_string(Value); }

} // namespace

GenProgram Generator::next() {
  return generate(static_cast<unsigned>(R.range(0, NumFamilies - 1)));
}

GenProgram Generator::generate(unsigned FamilyIndex) {
  switch (FamilyIndex) {
  case 0:
    return pointwise();
  case 1:
    return nest2D();
  case 2:
    return reduction();
  case 3:
    return affineAccess();
  case 4:
    return dependence();
  case 5:
    return nestedAccumulator();
  case 6:
    return compound();
  default:
    return edgeRanges();
  }
}

//===----------------------------------------------------------------------===//
// Family: pointwise expressions over randomly oriented vectors
//===----------------------------------------------------------------------===//

GenProgram Generator::pointwise() {
  // Three operand vectors with random orientations; one output. Operands
  // are scalar loads x(i), y(i) and constants; denominators stay away
  // from zero because rand() is in (0,1) and we add 0.5.
  std::vector<std::string> Shapes = {"(1,n)", "(n,1)"};
  std::string SX = R.pick(Shapes), SY = R.pick(Shapes), SZ = R.pick(Shapes);
  auto Ann = [](const std::string &S) {
    return S == "(1,n)" ? "(1,*)" : "(*,1)";
  };
  std::vector<std::string> Ops = {"+", "-", ".*", "*", "./", "/"};
  std::string Op1 = R.pick(Ops), Op2 = R.pick(Ops);

  GenProgram P;
  P.Family = "pointwise";
  // Orientation mismatches are exactly what the transpose machinery must
  // absorb; every combination must vectorize.
  P.ExpectVectorized = true;
  P.Source =
      "n = " + num(R.range(3, 9)) + ";\n"
      "x = rand" + SX + "+0.5;\n"
      "y = rand" + SY + "+0.5;\n"
      "z = zeros" + SZ + ";\n"
      "%! x" + Ann(SX) + " y" + Ann(SY) + " z" + Ann(SZ) + " n(1)\n"
      "for i=1:n\n"
      "  z(i) = (x(i) " + Op1 + " y(i)) " + Op2 + " " +
      num(R.range(1, 3)) + ";\n"
      "end\n";
  return P;
}

//===----------------------------------------------------------------------===//
// Family: two-dimensional nests with transposed reads and broadcasts
//===----------------------------------------------------------------------===//

GenProgram Generator::nest2D() {
  std::vector<std::string> Terms = {"B(i,j)", "B(j,i)'", "c(i)",   "r(j)",
                                    "2",      "B(i,j)",  "B(j,i)"};
  // Note: B(j,i)' reads a scalar, so the transpose has no runtime effect;
  // both forms exercise the analysis identically.
  std::vector<std::string> Ops = {"+", "-", ".*"};
  std::string T1 = R.pick(Terms), T2 = R.pick(Terms);
  std::string Op = R.pick(Ops);
  int M = R.range(3, 6), N = R.range(3, 6);

  GenProgram P;
  P.Family = "nest2d";
  P.Source =
      "m = " + num(M) + "; n = " + num(N) + ";\n"
      "B = rand(" + num(std::max(M, N)) + "," + num(std::max(M, N)) + ");\n"
      "c = rand(m,1);\nr = rand(1,n);\nA = zeros(m,n);\n"
      "%! B(*,*) c(*,1) r(1,*) A(*,*) m(1) n(1)\n"
      "for i=1:m\n for j=1:n\n"
      "  A(i,j) = " + T1 + " " + Op + " " + T2 + ";\n"
      " end\nend\n";
  return P;
}

//===----------------------------------------------------------------------===//
// Family: additive reductions
//===----------------------------------------------------------------------===//

GenProgram Generator::reduction() {
  std::vector<std::string> Factors = {"v(i)", "w(j)", "M(i,j)", "M(j,i)",
                                      "2",    "v(i)"};
  std::string F1 = R.pick(Factors), F2 = R.pick(Factors);
  std::string AccOp = R.flip() ? "+" : "-";
  int N = R.range(3, 7);

  GenProgram P;
  P.Family = "reduction";
  P.Source =
      "n = " + num(N) + ";\n"
      "v = rand(1,n);\nw = rand(n,1);\nM = rand(n,n);\ns = 1;\n"
      "%! v(1,*) w(*,1) M(*,*) s(1) n(1)\n"
      "for i=1:n\n for j=1:n\n"
      "  s = s " + AccOp + " " + F1 + "*" + F2 + ";\n"
      " end\nend\n";
  return P;
}

//===----------------------------------------------------------------------===//
// Family: strided loops and affine diagonal-style accesses
//===----------------------------------------------------------------------===//

GenProgram Generator::affineAccess() {
  int C1 = R.range(1, 2), C2 = R.range(0, 2);
  int C3 = R.range(1, 2), C4 = R.range(0, 2);
  int Trip = R.range(3, 6);
  int Start = R.range(1, 2), Step = R.range(1, 2);
  // Large enough for the largest affine access 2*i+2 at the last
  // iteration.
  int Size = 2 * (Start + Step * (Trip - 1)) + 4;
  auto Affine = [&](int A, int B) {
    std::string S = A == 1 ? "i" : num(A) + "*i";
    if (B != 0)
      S += "+" + num(B);
    return S;
  };
  int Stop = Start + Step * (Trip - 1);

  GenProgram P;
  P.Family = "affine";
  P.Source =
      "A = rand(" + num(Size) + "," + num(Size) + ");\n"
      "b = rand(1," + num(Size) + ");\n"
      "a = zeros(1," + num(Size) + ");\n"
      "%! A(*,*) b(1,*) a(1,*)\n"
      "for i=" + num(Start) + ":" + num(Step) + ":" + num(Stop) + "\n"
      "  a(i) = A(" + Affine(C1, C2) + "," + Affine(C3, C4) + ")*b(i);\n"
      "end\n";
  return P;
}

//===----------------------------------------------------------------------===//
// Family: recurrences and dependences — the vectorizer must never break
// programs it cannot fully vectorize
//===----------------------------------------------------------------------===//

GenProgram Generator::dependence() {
  std::vector<std::string> Bodies = {
      "v(i) = v(i-1)+x(i);",          // true recurrence
      "v(i) = x(i); y(i) = v(i)*2;",  // forward flow
      "y(i) = x(i+1); x(i) = 0.5;",   // anti dependence
      "v(i) = x(i); v(i) = v(i)+1;",  // output dependence
      "s = s + x(i); y(i) = x(i);",   // reduction + independent
      "y(i) = x(n+1-i);",             // reversal read (independent)
  };
  std::string Body = R.pick(Bodies);
  int N = R.range(4, 9);

  GenProgram P;
  P.Family = "dependence";
  P.Source =
      "n = " + num(N) + ";\n"
      "x = rand(1,n+1);\nv = rand(1,n);\ny = zeros(1,n);\ns = 0;\n"
      "%! x(1,*) v(1,*) y(1,*) s(1) n(1)\n"
      "for i=2:n\n  " + Body + "\nend\n";
  return P;
}

//===----------------------------------------------------------------------===//
// Family: nested accumulators — inner scalar reduction feeding an outer
// elementwise write (the matvec shape)
//===----------------------------------------------------------------------===//

GenProgram Generator::nestedAccumulator() {
  int M = R.range(2, 5), N = R.range(2, 5);
  bool RowW = R.flip(), RowU = R.flip(), RowZ = R.flip();
  std::vector<std::string> Terms = {"M(i,j)*w(j)", "M(i,j)",
                                    "w(j)*u(i)", "M(i,j)*w(j)*u(i)"};
  std::string Term = R.pick(Terms);
  std::vector<std::string> Inits = {"0", "u(i)"};
  std::string Init = R.pick(Inits);
  std::vector<std::string> Finals = {"t", "t*2", "t+u(i)"};
  std::string Final = R.pick(Finals);

  GenProgram P;
  P.Family = "nested-acc";
  P.Source =
      "m = " + num(M) + "; n = " + num(N) + ";\n"
      "M = rand(m,n);\n"
      "w = rand(" + std::string(RowW ? "1,n" : "n,1") + ");\n"
      "u = rand(" + std::string(RowU ? "1,m" : "m,1") + ");\n"
      "z = zeros(" + std::string(RowZ ? "1,m" : "m,1") + ");\n"
      "%! M(*,*) w" + (RowW ? "(1,*)" : "(*,1)") +
      " u" + (RowU ? "(1,*)" : "(*,1)") +
      " z" + (RowZ ? "(1,*)" : "(*,1)") + " t(1) m(1) n(1)\n"
      "for i=1:m\n"
      "  t = " + Init + ";\n"
      "  for j=1:n\n"
      "    t = t + " + Term + ";\n"
      "  end\n"
      "  z(i) = " + Final + ";\n"
      "end\n";
  return P;
}

//===----------------------------------------------------------------------===//
// Family: compound scripts — several loops and whole-array statements over
// shared arrays, mixing diagonals, broadcasts, reductions, builtins and
// powers
//===----------------------------------------------------------------------===//

GenProgram Generator::compound() {
  std::vector<std::string> Segments = {
      // Diagonal read via duplicate loop symbol.
      "for i=1:n\n  a(i) = X(i,i)*x(i);\nend\n",
      // Transposed read plus column broadcast.
      "for i=1:n\n for j=1:n\n  A(i,j) = X(j,i)+y(i);\n end\nend\n",
      // Full 2-D reduction with both orientations in the term.
      "for i=1:n\n for j=1:n\n  s = s + X(i,j)*y(i)*x(j);\n end\nend\n",
      // Strided recurrence: must stay sequential.
      "for i=2:2:n\n  a(i) = a(i-1)+1;\nend\n",
      // Powers (matrix ^ on scalars, pointwise .^).
      "for i=1:n\n  b(i) = x(i)^2 + y(i).^2;\nend\n",
      // Pointwise builtins with call-dimensionality signatures.
      "for i=1:n\n  a(i) = abs(x(i)) + sqrt(y(i));\nend\n",
      // Two-argument elementwise builtins.
      "for i=1:n\n  b(i) = max(x(i), y(i)) - min(x(i), 0.5);\nend\n",
      // Loop index used as a value inside the expression.
      "for i=1:n\n  a(i) = mod(i, 3) + x(i);\nend\n",
      // Reversal read.
      "for i=1:n\n  a(i) = x(n+1-i)*2;\nend\n",
      // Whole-array statement between loops.
      "x = x*0.5;\n",
      // Observable output must survive the transformation byte-for-byte.
      "disp(s);\n",
  };
  int NumSegments = R.range(2, 4);

  GenProgram P;
  P.Family = "compound";
  P.Source =
      "n = " + num(R.range(4, 7)) + ";\n"
      "X = rand(n,n);\nx = rand(1,n);\ny = rand(n,1)+0.5;\n"
      "a = zeros(1,n);\nb = zeros(n,1);\nA = zeros(n,n);\ns = 0;\n"
      "%! X(*,*) x(1,*) y(*,1) a(1,*) b(*,1) A(*,*) s(1) n(1)\n";
  for (int I = 0; I != NumSegments; ++I)
    P.Source += R.pick(Segments);
  return P;
}

//===----------------------------------------------------------------------===//
// Family: degenerate and descending ranges
//===----------------------------------------------------------------------===//

GenProgram Generator::edgeRanges() {
  int N = R.range(0, 5); // may be zero: some loops never run
  int M = R.range(2, 6);
  std::vector<std::string> Headers = {
      "for i=1:n\n",    "for i=2:n\n",   "for i=n:-1:1\n",
      "for i=m:-2:1\n", "for i=1:0\n",   "for i=3:3\n",
      "for i=1:2:m\n",
  };
  std::vector<std::string> Bodies = {
      "  y(i) = x(i)+1;\n",
      "  y(i) = x(i+2)*x(i);\n",
      "  s = s + x(i);\n",
      "  y(i) = i;\n",
  };
  int NumLoops = R.range(1, 2);

  GenProgram P;
  P.Family = "edge-ranges";
  P.Source =
      "n = " + num(N) + "; m = " + num(M) + ";\n"
      "x = rand(1," + num(M + N + 4) + ");\n"
      "y = zeros(1," + num(M + N + 4) + ");\ns = 0;\n"
      "%! x(1,*) y(1,*) s(1) n(1) m(1)\n";
  for (int I = 0; I != NumLoops; ++I)
    P.Source += R.pick(Headers) + R.pick(Bodies) + "end\n";
  return P;
}
