//===- Reducer.cpp - Test-case reduction ------------------------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Reducer.h"

#include "frontend/ASTPrinter.h"
#include "frontend/ASTUtils.h"
#include "frontend/Parser.h"
#include "support/Casting.h"

#include <set>
#include <sstream>

using namespace mvec;
using namespace mvec::fuzz;

size_t mvec::fuzz::countTokens(const std::string &Source) {
  DiagnosticEngine Diags;
  Lexer Lex(Source, Diags);
  size_t Count = 0;
  for (const Token &Tok : Lex.lexAll())
    if (Tok.Kind != TokenKind::Eof && Tok.Kind != TokenKind::Newline)
      ++Count;
  return Count;
}

namespace {

//===----------------------------------------------------------------------===//
// Emission: annotations first, then the printed program. Annotations are
// script-global, so their position does not matter semantically.
//===----------------------------------------------------------------------===//

std::string emit(const Program &P, const std::vector<std::string> &Anns) {
  std::string Out;
  for (const std::string &Ann : Anns)
    if (!Ann.empty())
      Out += "%! " + Ann + "\n";
  Out += printProgram(P);
  return Out;
}

//===----------------------------------------------------------------------===//
// Statement-subtree removal (ddmin over pre-order ordinals)
//===----------------------------------------------------------------------===//

unsigned subtreeSize(const Stmt &S) {
  unsigned Size = 1;
  if (const auto *For = dyn_cast<ForStmt>(&S)) {
    for (const StmtPtr &Child : For->body())
      Size += subtreeSize(*Child);
  } else if (const auto *While = dyn_cast<WhileStmt>(&S)) {
    for (const StmtPtr &Child : While->body())
      Size += subtreeSize(*Child);
  } else if (const auto *If = dyn_cast<IfStmt>(&S)) {
    for (const IfStmt::Branch &Branch : If->branches())
      for (const StmtPtr &Child : Branch.Body)
        Size += subtreeSize(*Child);
  }
  return Size;
}

unsigned countStmts(const Program &P) {
  unsigned Total = 0;
  for (const StmtPtr &S : P.Stmts)
    Total += subtreeSize(*S);
  return Total;
}

/// Erases every statement whose pre-order ordinal falls in
/// [\p Begin, \p End). Removing a loop removes its whole subtree, whose
/// ordinals are consumed either way so numbering stays stable.
void removeRange(std::vector<StmtPtr> &Body, unsigned &Counter,
                 unsigned Begin, unsigned End) {
  for (auto It = Body.begin(); It != Body.end();) {
    unsigned Ord = Counter;
    unsigned Size = subtreeSize(**It);
    if (Ord >= Begin && Ord < End) {
      Counter += Size;
      It = Body.erase(It);
      continue;
    }
    ++Counter;
    if (auto *For = dyn_cast<ForStmt>(It->get()))
      removeRange(For->body(), Counter, Begin, End);
    else if (auto *While = dyn_cast<WhileStmt>(It->get()))
      removeRange(While->body(), Counter, Begin, End);
    else if (auto *If = dyn_cast<IfStmt>(It->get()))
      for (IfStmt::Branch &Branch : If->branches())
        removeRange(Branch.Body, Counter, Begin, End);
    ++It;
  }
}

Program withoutRange(const Program &P, unsigned Begin, unsigned End) {
  Program Clone = P.cloneProgram();
  unsigned Counter = 0;
  removeRange(Clone.Stmts, Counter, Begin, End);
  return Clone;
}

//===----------------------------------------------------------------------===//
// Expression simplification edits
//===----------------------------------------------------------------------===//

/// Walks a program counting simplification points; when the counter hits
/// Target, the edit is applied to the rebuilt clone. A pass with an
/// unreachable Target measures the number of available edits.
struct EditCtx {
  unsigned Next = 0;
  unsigned Target = ~0u;
  bool Applied = false;

  bool hit() { return Next++ == Target; }
};

ExprPtr editExpr(const Expr &E, EditCtx &C);

std::vector<ExprPtr> editArgs(const std::vector<ExprPtr> &Args, EditCtx &C) {
  std::vector<ExprPtr> Out;
  Out.reserve(Args.size());
  for (const ExprPtr &Arg : Args)
    Out.push_back(editExpr(*Arg, C));
  return Out;
}

ExprPtr editExpr(const Expr &E, EditCtx &C) {
  switch (E.kind()) {
  case Expr::Kind::Number: {
    const auto &N = cast<NumberExpr>(E);
    if (N.value() != 0 && N.value() != 1 && C.hit()) {
      C.Applied = true;
      return makeNumber(1);
    }
    return E.clone();
  }
  case Expr::Kind::Binary: {
    const auto &B = cast<BinaryExpr>(E);
    if (C.hit()) {
      C.Applied = true;
      return B.lhs()->clone();
    }
    if (C.hit()) {
      C.Applied = true;
      return B.rhs()->clone();
    }
    return makeBinary(B.op(), editExpr(*B.lhs(), C), editExpr(*B.rhs(), C));
  }
  case Expr::Kind::Unary: {
    const auto &U = cast<UnaryExpr>(E);
    if (C.hit()) {
      C.Applied = true;
      return U.operand()->clone();
    }
    return makeUnary(U.op(), editExpr(*U.operand(), C));
  }
  case Expr::Kind::Transpose: {
    const auto &T = cast<TransposeExpr>(E);
    if (C.hit()) {
      C.Applied = true;
      return T.operand()->clone();
    }
    return makeTranspose(editExpr(*T.operand(), C));
  }
  case Expr::Kind::Index: {
    const auto &I = cast<IndexExpr>(E);
    if (C.hit()) {
      C.Applied = true;
      return makeNumber(1);
    }
    return std::make_unique<IndexExpr>(I.base()->clone(),
                                       editArgs(I.args(), C), I.loc());
  }
  case Expr::Kind::Matrix: {
    const auto &M = cast<MatrixExpr>(E);
    if (!M.rows().empty() && !M.rows().front().empty() && C.hit()) {
      C.Applied = true;
      return M.rows().front().front()->clone();
    }
    std::vector<MatrixExpr::Row> Rows;
    for (const MatrixExpr::Row &Row : M.rows())
      Rows.push_back(editArgs(Row, C));
    return std::make_unique<MatrixExpr>(std::move(Rows), M.loc());
  }
  case Expr::Kind::Range: {
    const auto &R = cast<RangeExpr>(E);
    return std::make_unique<RangeExpr>(
        editExpr(*R.start(), C),
        R.step() ? editExpr(*R.step(), C) : nullptr, editExpr(*R.stop(), C),
        R.loc());
  }
  default:
    return E.clone();
  }
}

std::vector<StmtPtr> editBody(const std::vector<StmtPtr> &Body, EditCtx &C);

StmtPtr editStmt(const Stmt &S, EditCtx &C) {
  if (const auto *Assign = dyn_cast<AssignStmt>(&S)) {
    // The LHS gets one dedicated edit — dropping the subscript entirely
    // (z(i) = e  ->  z = e); its subscript arguments are simplified like
    // any expression, but the LHS node itself must stay assignable.
    ExprPtr LHS;
    if (const auto *Idx = dyn_cast<IndexExpr>(Assign->lhs())) {
      if (C.hit()) {
        C.Applied = true;
        LHS = Idx->base()->clone();
      } else {
        LHS = std::make_unique<IndexExpr>(Idx->base()->clone(),
                                          editArgs(Idx->args(), C),
                                          Idx->loc());
      }
    } else {
      LHS = Assign->lhs()->clone();
    }
    return std::make_unique<AssignStmt>(std::move(LHS),
                                        editExpr(*Assign->rhs(), C), S.loc());
  }
  if (const auto *E = dyn_cast<ExprStmt>(&S))
    return std::make_unique<ExprStmt>(editExpr(*E->expr(), C), S.loc());
  if (const auto *For = dyn_cast<ForStmt>(&S))
    return std::make_unique<ForStmt>(For->indexVar(),
                                     editExpr(*For->range(), C),
                                     editBody(For->body(), C), S.loc());
  if (const auto *While = dyn_cast<WhileStmt>(&S))
    return std::make_unique<WhileStmt>(editExpr(*While->cond(), C),
                                       editBody(While->body(), C), S.loc());
  if (const auto *If = dyn_cast<IfStmt>(&S)) {
    std::vector<IfStmt::Branch> Branches;
    for (const IfStmt::Branch &Branch : If->branches()) {
      IfStmt::Branch NewBranch;
      NewBranch.Cond = Branch.Cond ? editExpr(*Branch.Cond, C) : nullptr;
      NewBranch.Body = editBody(Branch.Body, C);
      Branches.push_back(std::move(NewBranch));
    }
    return std::make_unique<IfStmt>(std::move(Branches), S.loc());
  }
  return S.clone();
}

std::vector<StmtPtr> editBody(const std::vector<StmtPtr> &Body, EditCtx &C) {
  std::vector<StmtPtr> Out;
  Out.reserve(Body.size());
  for (const StmtPtr &S : Body)
    Out.push_back(editStmt(*S, C));
  return Out;
}

Program applyEdit(const Program &P, unsigned Target, bool &Applied) {
  EditCtx C;
  C.Target = Target;
  Program Out;
  Out.Stmts = editBody(P.Stmts, C);
  Applied = C.Applied;
  return Out;
}

unsigned countEdits(const Program &P) {
  EditCtx C; // unreachable target: pure counting pass
  Program Discard;
  Discard.Stmts = editBody(P.Stmts, C);
  return C.Next;
}

//===----------------------------------------------------------------------===//
// Annotation pruning
//===----------------------------------------------------------------------===//

void collectProgramIdentifiers(const Program &P, std::set<std::string> &Names) {
  visitStmts(P.Stmts, [&Names](const Stmt &S) {
    auto Collect = [&Names](const Expr *E) {
      if (E)
        collectIdentifiers(*E, Names);
    };
    if (const auto *Assign = dyn_cast<AssignStmt>(&S)) {
      Collect(Assign->lhs());
      Collect(Assign->rhs());
    } else if (const auto *E = dyn_cast<ExprStmt>(&S)) {
      Collect(E->expr());
    } else if (const auto *For = dyn_cast<ForStmt>(&S)) {
      Names.insert(For->indexVar());
      Collect(For->range());
    } else if (const auto *While = dyn_cast<WhileStmt>(&S)) {
      Collect(While->cond());
    } else if (const auto *If = dyn_cast<IfStmt>(&S)) {
      for (const IfStmt::Branch &Branch : If->branches())
        Collect(Branch.Cond.get());
    }
  });
}

std::vector<std::string> splitEntries(const std::string &Text) {
  std::vector<std::string> Entries;
  std::istringstream In(Text);
  std::string Entry;
  while (In >> Entry)
    Entries.push_back(Entry);
  return Entries;
}

std::string joinEntries(const std::vector<std::string> &Entries) {
  std::string Out;
  for (const std::string &Entry : Entries) {
    if (!Out.empty())
      Out += ' ';
    Out += Entry;
  }
  return Out;
}

std::string entryName(const std::string &Entry) {
  return Entry.substr(0, Entry.find('('));
}

} // namespace

ReduceResult mvec::fuzz::reduceProgram(const std::string &Source,
                                       const FailPredicate &StillFails,
                                       const ReduceOptions &Opts) {
  ReduceResult Res;
  Res.Reduced = Source;
  Res.OriginalTokens = Res.ReducedTokens = countTokens(Source);

  auto Check = [&](const std::string &Candidate) {
    if (Res.Checks >= Opts.MaxChecks)
      return false;
    ++Res.Checks;
    return StillFails(Candidate);
  };

  DiagnosticEngine Diags;
  ParseResult Parsed = parseMatlab(Source, Diags);
  if (Diags.hasErrors())
    return Res;
  Program Current = std::move(Parsed.Prog);
  std::vector<std::string> Anns;
  for (const AnnotationComment &Ann : Parsed.Annotations)
    Anns.push_back(Ann.Text);

  // The round-tripped form must itself reproduce; otherwise the failure
  // is tied to surface syntax the printer normalizes away, and we leave
  // the input untouched.
  if (!Check(emit(Current, Anns)))
    return Res;

  auto Adopt = [&](Program P, std::vector<std::string> A) {
    Current = std::move(P);
    Anns = std::move(A);
  };

  for (unsigned Round = 0; Round != Opts.MaxRounds; ++Round) {
    bool Changed = false;

    // Pass 1: ddmin over statement subtrees, largest chunks first.
    for (bool Progress = true; Progress;) {
      Progress = false;
      unsigned Total = countStmts(Current);
      for (unsigned Chunk = std::max(1u, Total / 2); Chunk != 0 && !Progress;
           Chunk /= 2) {
        for (unsigned Begin = 0; Begin < Total; Begin += Chunk) {
          Program Candidate = withoutRange(Current, Begin, Begin + Chunk);
          if (Check(emit(Candidate, Anns))) {
            Adopt(std::move(Candidate), Anns);
            Changed = Progress = true;
            break;
          }
        }
      }
    }

    // Pass 2: greedy expression simplification.
    for (bool Progress = true; Progress;) {
      Progress = false;
      unsigned NumEdits = countEdits(Current);
      for (unsigned Target = 0; Target != NumEdits; ++Target) {
        bool Applied = false;
        Program Candidate = applyEdit(Current, Target, Applied);
        if (!Applied)
          continue;
        if (Check(emit(Candidate, Anns))) {
          Adopt(std::move(Candidate), Anns);
          Progress = Changed = true;
          break;
        }
      }
    }

    // Pass 3: prune shape-annotation entries. Unreferenced entries go in
    // one shot; surviving entries are then attacked one at a time.
    {
      std::set<std::string> Used;
      collectProgramIdentifiers(Current, Used);
      std::vector<std::string> Pruned;
      for (const std::string &Ann : Anns) {
        std::vector<std::string> Kept;
        for (const std::string &Entry : splitEntries(Ann))
          if (Used.count(entryName(Entry)))
            Kept.push_back(Entry);
        if (!Kept.empty())
          Pruned.push_back(joinEntries(Kept));
      }
      if (Pruned != Anns && Check(emit(Current, Pruned))) {
        Anns = std::move(Pruned);
        Changed = true;
      }
      for (bool Progress = true; Progress;) {
        Progress = false;
        for (size_t I = 0; I != Anns.size() && !Progress; ++I) {
          std::vector<std::string> Entries = splitEntries(Anns[I]);
          for (size_t J = 0; J != Entries.size(); ++J) {
            std::vector<std::string> Fewer = Entries;
            Fewer.erase(Fewer.begin() + J);
            std::vector<std::string> Candidate = Anns;
            if (Fewer.empty())
              Candidate.erase(Candidate.begin() + I);
            else
              Candidate[I] = joinEntries(Fewer);
            if (Check(emit(Current, Candidate))) {
              Anns = std::move(Candidate);
              Progress = Changed = true;
              break;
            }
          }
        }
      }
    }

    if (!Changed)
      break;
  }

  Res.Reduced = emit(Current, Anns);
  Res.ReducedTokens = countTokens(Res.Reduced);
  return Res;
}
