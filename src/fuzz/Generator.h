//===- Generator.h - Random annotated-program generator ---------*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Grammar-based generation of shape-annotated MATLAB loop nests — the
/// program source of the fuzzing subsystem and of the PropertyTest
/// sweeps. Each family is one grammar over a region of the vectorizer's
/// input space (orientation mismatches, 2-D nests with transposed reads,
/// reductions, strided/diagonal affine accesses, dependence shapes,
/// nested accumulators, compound multi-loop scripts, degenerate ranges).
/// Generation is bit-stable: the same seed produces byte-identical
/// sources on every platform (see Rng.h).
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_FUZZ_GENERATOR_H
#define MVEC_FUZZ_GENERATOR_H

#include "fuzz/Rng.h"

#include <string>

namespace mvec {
namespace fuzz {

/// One generated candidate program.
struct GenProgram {
  /// Annotated MATLAB source, ready for the pipeline.
  std::string Source;
  /// Display name of the generating family ("pointwise", ...).
  std::string Family;
  /// True when the family guarantees every generated program fully
  /// vectorizes (the property tests additionally assert
  /// StmtsVectorized > 0 for these).
  bool ExpectVectorized = false;
};

/// Generates one program per call. Construct with the candidate's seed;
/// every family draws from the same deterministic stream, so
/// Generator(S).family() is a pure function of S.
class Generator {
public:
  explicit Generator(uint64_t Seed) : R(Seed) {}

  /// Number of grammar families generate() accepts.
  static constexpr unsigned NumFamilies = 8;

  /// Generates from a uniformly chosen family.
  GenProgram next();

  /// Generates from family \p FamilyIndex in [0, NumFamilies).
  GenProgram generate(unsigned FamilyIndex);

  // The individual grammars. The first five are the (extended) families
  // factored out of tests/PropertyTest.cpp; the last three exist for the
  // fuzzer's sake.

  /// Pointwise expressions over randomly oriented vectors; every
  /// combination must vectorize.
  GenProgram pointwise();
  /// Two-dimensional nests with transposed reads and broadcasts.
  GenProgram nest2D();
  /// Additive reductions into a scalar accumulator.
  GenProgram reduction();
  /// Strided loops and affine (diagonal-style) subscripts.
  GenProgram affineAccess();
  /// Recurrences and dependences the vectorizer must not break.
  GenProgram dependence();
  /// Two-level nests with an inner scalar accumulator feeding an outer
  /// elementwise write.
  GenProgram nestedAccumulator();
  /// Multi-loop scripts mixing diagonals, broadcasts, reductions,
  /// builtins, powers and whole-array statements.
  GenProgram compound();
  /// Degenerate and descending loop ranges (empty trips, single trips,
  /// negative steps, strides past the end).
  GenProgram edgeRanges();

private:
  Rng R;
};

} // namespace fuzz
} // namespace mvec

#endif // MVEC_FUZZ_GENERATOR_H
