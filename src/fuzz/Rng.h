//===- Rng.h - Deterministic fuzzing RNG ------------------------*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The random source for the fuzzing subsystem. Deliberately not
/// <random>: the standard distributions are implementation-defined, and
/// the fuzzer promises that `--seed N` reproduces the identical program
/// stream on every platform and standard library. splitmix64 plus plain
/// modular reduction is bit-stable everywhere (the modulo bias is
/// irrelevant at our range sizes).
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_FUZZ_RNG_H
#define MVEC_FUZZ_RNG_H

#include <cassert>
#include <cstdint>
#include <vector>

namespace mvec {
namespace fuzz {

class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed) {}

  /// Next 64 raw bits (splitmix64).
  uint64_t next() {
    uint64_t Z = (State += 0x9e3779b97f4a7c15ull);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Z ^ (Z >> 31);
  }

  /// Uniform integer in [Lo, Hi], inclusive.
  int range(int Lo, int Hi) {
    assert(Lo <= Hi && "empty range");
    return Lo + static_cast<int>(next() %
                                 static_cast<uint64_t>(Hi - Lo + 1));
  }

  bool flip() { return next() & 1; }

  /// True with probability Percent/100.
  bool percent(int Percent) { return range(0, 99) < Percent; }

  template <typename T> const T &pick(const std::vector<T> &Options) {
    assert(!Options.empty() && "pick from empty set");
    return Options[range(0, static_cast<int>(Options.size()) - 1)];
  }

  /// Derives an independent stream: mixes \p Salt into the current seed
  /// without consuming from this stream. Used to give candidate K its own
  /// generator so the stream stays reproducible no matter how many draws
  /// each candidate makes.
  static uint64_t deriveSeed(uint64_t Seed, uint64_t Salt) {
    Rng R(Seed ^ (Salt * 0x2545f4914f6cdd1dull + 0x9e3779b97f4a7c15ull));
    return R.next();
  }

private:
  uint64_t State;
};

} // namespace fuzz
} // namespace mvec

#endif // MVEC_FUZZ_RNG_H
