//===- Io.cpp - EINTR-safe fd I/O helpers -----------------------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Io.h"

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace mvec;
using Clock = std::chrono::steady_clock;

namespace {

/// Milliseconds left until \p Deadline, clamped at zero. INT_MAX-safe
/// for the poll() argument.
int remainingMs(Clock::time_point Deadline) {
  auto Left = std::chrono::duration_cast<std::chrono::milliseconds>(
                  Deadline - Clock::now())
                  .count();
  if (Left <= 0)
    return 0;
  if (Left > 3600'000)
    return 3600'000;
  return static_cast<int>(Left);
}

} // namespace

int io::pollFor(int Fd, short Events, int TimeoutMs) {
  bool Bounded = TimeoutMs >= 0;
  Clock::time_point Deadline =
      Bounded ? Clock::now() + std::chrono::milliseconds(TimeoutMs)
              : Clock::time_point();
  for (;;) {
    pollfd P{};
    P.fd = Fd;
    P.events = Events;
    int N = ::poll(&P, 1, Bounded ? remainingMs(Deadline) : -1);
    if (N > 0)
      return N;
    if (N == 0) {
      if (Bounded && remainingMs(Deadline) == 0)
        return 0;
      continue;
    }
    if (errno == EINTR)
      continue;
    return -1;
  }
}

ssize_t io::recvSome(int Fd, void *Buf, size_t Len) {
  for (;;) {
    ssize_t N = ::recv(Fd, Buf, Len, 0);
    if (N >= 0 || errno != EINTR)
      return N;
  }
}

ssize_t io::readSome(int Fd, void *Buf, size_t Len) {
  for (;;) {
    ssize_t N = ::read(Fd, Buf, Len);
    if (N >= 0 || errno != EINTR)
      return N;
  }
}

bool io::sendFull(int Fd, const void *Buf, size_t Len, int TimeoutMs) {
  const uint8_t *P = static_cast<const uint8_t *>(Buf);
  bool Bounded = TimeoutMs >= 0;
  Clock::time_point Deadline =
      Bounded ? Clock::now() + std::chrono::milliseconds(TimeoutMs)
              : Clock::time_point();
  // With a budget, send non-blocking: a blocking fd would otherwise park
  // this thread in send() indefinitely (never reaching EAGAIN) and the
  // deadline below could never fire. Unbounded sends keep the fd's own
  // blocking behavior.
  int Flags = MSG_NOSIGNAL | (Bounded ? MSG_DONTWAIT : 0);
  while (Len > 0) {
    ssize_t N = ::send(Fd, P, Len, Flags);
    if (N > 0) {
      P += N;
      Len -= static_cast<size_t>(N);
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Socket buffer full (slow reader, or an SO_SNDTIMEO tick fired).
      // Wait for writability within the remaining budget, then retry.
      int Left = Bounded ? remainingMs(Deadline) : -1;
      if (Bounded && Left == 0)
        return false;
      int R = io::pollFor(Fd, POLLOUT, Left);
      if (R > 0)
        continue;
      return false;
    }
    return false; // EPIPE/ECONNRESET/zero-length send: peer is gone.
  }
  return true;
}

bool io::writeFull(int Fd, const void *Buf, size_t Len) {
  const uint8_t *P = static_cast<const uint8_t *>(Buf);
  while (Len > 0) {
    ssize_t N = ::write(Fd, P, Len);
    if (N > 0) {
      P += N;
      Len -= static_cast<size_t>(N);
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    return false;
  }
  return true;
}
