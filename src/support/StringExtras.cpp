//===- StringExtras.cpp - String helpers ----------------------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/StringExtras.h"

#include <cctype>
#include <cmath>
#include <cstdio>

using namespace mvec;

std::string mvec::join(const std::vector<std::string> &Parts,
                       std::string_view Sep) {
  std::string Result;
  for (size_t I = 0, E = Parts.size(); I != E; ++I) {
    if (I != 0)
      Result += Sep;
    Result += Parts[I];
  }
  return Result;
}

std::string_view mvec::trim(std::string_view S) {
  size_t Begin = 0, End = S.size();
  while (Begin < End && std::isspace(static_cast<unsigned char>(S[Begin])))
    ++Begin;
  while (End > Begin && std::isspace(static_cast<unsigned char>(S[End - 1])))
    --End;
  return S.substr(Begin, End - Begin);
}

std::vector<std::string> mvec::split(std::string_view S, char Sep) {
  std::vector<std::string> Fields;
  size_t Start = 0;
  while (true) {
    size_t Pos = S.find(Sep, Start);
    if (Pos == std::string_view::npos) {
      Fields.emplace_back(S.substr(Start));
      return Fields;
    }
    Fields.emplace_back(S.substr(Start, Pos - Start));
    Start = Pos + 1;
  }
}

std::string mvec::formatMatlabNumber(double Value) {
  if (std::isfinite(Value) && Value == std::floor(Value) &&
      std::fabs(Value) < 1e15) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%.0f", Value);
    return Buf;
  }
  char Buf[48];
  std::snprintf(Buf, sizeof(Buf), "%.17g", Value);
  // Trim needless precision when a shorter form round-trips.
  for (int Precision = 1; Precision < 17; ++Precision) {
    char Short[48];
    std::snprintf(Short, sizeof(Short), "%.*g", Precision, Value);
    double Parsed = 0;
    std::sscanf(Short, "%lf", &Parsed);
    if (Parsed == Value)
      return Short;
  }
  return Buf;
}

bool mvec::startsWith(std::string_view S, std::string_view Prefix) {
  return S.size() >= Prefix.size() && S.substr(0, Prefix.size()) == Prefix;
}
