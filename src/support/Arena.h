//===- Arena.h - Bump-pointer allocator for AST nodes -----------*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bump-pointer arena for AST nodes plus the thread-local scope that
/// routes `new Expr`/`new Stmt` into it. A parse tree is built and torn
/// down as a unit, so individual `delete`s of arena nodes are wasted
/// work; the arena frees everything at once when the owning Program dies.
///
/// Nodes created outside any ArenaScope (tests, pattern templates, cache
/// entries) fall back to the heap. Every node carries a one-word header
/// recording which allocator produced it, so unique_ptr ownership keeps
/// working unchanged and arena and heap nodes can be mixed freely in one
/// tree: `operator delete` runs the destructor either way and releases
/// memory only for heap nodes.
///
/// Thread-safety: an arena is single-threaded by construction — the scope
/// pointer is thread_local and each Program's tree is built on one thread.
/// Destroying a Program on a different thread than the one that built it
/// is fine (the arena is just memory).
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_SUPPORT_ARENA_H
#define MVEC_SUPPORT_ARENA_H

#include "resilience/ResourceGovernor.h"

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace mvec {

/// Bump-pointer allocator. Allocations are never freed individually;
/// everything is released when the arena is destroyed.
class ArenaAllocator {
public:
  ArenaAllocator() = default;
  ArenaAllocator(const ArenaAllocator &) = delete;
  ArenaAllocator &operator=(const ArenaAllocator &) = delete;

  void *allocate(size_t Size, size_t Align) {
    uintptr_t P = reinterpret_cast<uintptr_t>(Cur);
    uintptr_t Aligned = (P + Align - 1) & ~(uintptr_t(Align) - 1);
    if (Aligned + Size <= reinterpret_cast<uintptr_t>(End)) {
      Cur = reinterpret_cast<char *>(Aligned + Size);
      Allocated += Size;
      return reinterpret_cast<void *>(Aligned);
    }
    return allocateSlow(Size, Align);
  }

  /// Total bytes handed out (excluding block slack).
  size_t bytesAllocated() const { return Allocated; }
  size_t numBlocks() const { return Blocks.size(); }

private:
  void *allocateSlow(size_t Size, size_t Align) {
    size_t BlockSize = NextBlockSize;
    if (BlockSize < Size + Align)
      BlockSize = Size + Align;
    Blocks.push_back(std::make_unique<char[]>(BlockSize));
    Cur = Blocks.back().get();
    End = Cur + BlockSize;
    if (NextBlockSize < MaxBlockSize)
      NextBlockSize *= 2;
    return allocate(Size, Align);
  }

  static constexpr size_t MaxBlockSize = 1u << 20;
  std::vector<std::unique_ptr<char[]>> Blocks;
  char *Cur = nullptr;
  char *End = nullptr;
  size_t NextBlockSize = 4096;
  size_t Allocated = 0;
};

namespace detail {

/// The arena new AST nodes on this thread are allocated from, or null for
/// plain heap allocation.
inline ArenaAllocator *&tlsNodeArena() {
  thread_local ArenaAllocator *Current = nullptr;
  return Current;
}

/// Node header: one max_align_t-sized word in front of every AST node
/// recording its origin so operator delete can tell them apart.
inline constexpr size_t NodeHeaderSize = alignof(std::max_align_t);
inline constexpr uint64_t HeapTag = 0;
inline constexpr uint64_t ArenaTag = 1;

inline void *allocNode(size_t Size) {
  // Single choke point for AST node memory (arena and heap paths alike):
  // the per-job governor, when installed, accounts every node here.
  chargeMemory(Size + NodeHeaderSize);
  char *Raw;
  uint64_t Tag;
  if (ArenaAllocator *A = tlsNodeArena()) {
    Raw = static_cast<char *>(
        A->allocate(Size + NodeHeaderSize, alignof(std::max_align_t)));
    Tag = ArenaTag;
  } else {
    Raw = static_cast<char *>(::operator new(Size + NodeHeaderSize));
    Tag = HeapTag;
  }
  *reinterpret_cast<uint64_t *>(Raw) = Tag;
  return Raw + NodeHeaderSize;
}

inline void freeNode(void *P) noexcept {
  if (!P)
    return;
  char *Raw = static_cast<char *>(P) - NodeHeaderSize;
  if (*reinterpret_cast<uint64_t *>(Raw) == HeapTag)
    ::operator delete(Raw);
  // Arena nodes: the destructor has already run; the memory goes away with
  // the arena.
}

} // namespace detail

/// RAII guard directing AST node allocation on the current thread into
/// \p A (pass null to force heap allocation, e.g. while cloning a tree
/// into a long-lived cache). Scopes nest; the previous arena is restored
/// on destruction.
class ArenaScope {
public:
  explicit ArenaScope(ArenaAllocator *A)
      : Prev(detail::tlsNodeArena()) {
    detail::tlsNodeArena() = A;
  }
  ~ArenaScope() { detail::tlsNodeArena() = Prev; }
  ArenaScope(const ArenaScope &) = delete;
  ArenaScope &operator=(const ArenaScope &) = delete;

private:
  ArenaAllocator *Prev;
};

} // namespace mvec

#endif // MVEC_SUPPORT_ARENA_H
