//===- StringInterner.h - Interned identifier symbols -----------*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide string interner and the `Symbol` handle it hands out.
/// Identifiers dominate the vectorizer's hot comparisons (is this the loop
/// index? does this nest read `rand`?), and interning turns each of those
/// from a string compare into a pointer compare.
///
/// Interner lifetime: the global interner is created on first use and
/// intentionally never destroyed, so a Symbol — and the `const std::string&`
/// it exposes — stays valid for the life of the process. That lets AST
/// nodes in static storage (pattern templates, cached nests) keep their
/// symbols across any destruction order.
///
/// Determinism: `Symbol::operator<` orders by string content, not address,
/// so containers and sorts keyed on Symbol iterate in the same order on
/// every run.
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_SUPPORT_STRINGINTERNER_H
#define MVEC_SUPPORT_STRINGINTERNER_H

#include <array>
#include <cstddef>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_set>

namespace mvec {

/// A handle to an interned string. Trivially copyable; equality is a
/// pointer compare. The default-constructed Symbol is the unique "empty"
/// handle and compares equal only to itself.
class Symbol {
public:
  Symbol() = default;

  /// The interned spelling. Valid for the process lifetime. The empty
  /// Symbol yields the empty string.
  const std::string &str() const { return Ptr ? *Ptr : emptyString(); }
  const char *c_str() const { return str().c_str(); }

  bool empty() const { return !Ptr; }
  explicit operator bool() const { return Ptr != nullptr; }

  friend bool operator==(Symbol A, Symbol B) { return A.Ptr == B.Ptr; }
  friend bool operator!=(Symbol A, Symbol B) { return A.Ptr != B.Ptr; }
  /// Content order (deterministic across runs), not address order.
  friend bool operator<(Symbol A, Symbol B) {
    if (A.Ptr == B.Ptr)
      return false;
    return A.str() < B.str();
  }

  /// Address-based hash (stable within a process; fine for unordered
  /// containers whose iteration order is never observed).
  size_t hash() const {
    return std::hash<const std::string *>()(Ptr);
  }

private:
  friend class StringInterner;
  explicit Symbol(const std::string *P) : Ptr(P) {}
  static const std::string &emptyString();

  const std::string *Ptr = nullptr;
};

/// Thread-safe string interner. Sharded to keep concurrent parser threads
/// off each other's locks; storage is node-based, so element addresses are
/// stable across rehashes.
class StringInterner {
public:
  /// Interns \p S, returning the canonical Symbol for its content. The
  /// empty string interns to the empty Symbol.
  Symbol intern(std::string_view S);

  /// The process-wide interner AST identifiers go through. Never
  /// destroyed (see file comment).
  static StringInterner &global();

private:
  struct TransparentHash {
    using is_transparent = void;
    size_t operator()(std::string_view S) const {
      return std::hash<std::string_view>()(S);
    }
  };
  struct TransparentEq {
    using is_transparent = void;
    bool operator()(std::string_view A, std::string_view B) const {
      return A == B;
    }
  };
  struct Shard {
    std::mutex M;
    std::unordered_set<std::string, TransparentHash, TransparentEq> Set;
  };

  static constexpr size_t NumShards = 16;
  std::array<Shard, NumShards> Shards;
};

/// Shorthand for StringInterner::global().intern(S).
inline Symbol internSymbol(std::string_view S) {
  return StringInterner::global().intern(S);
}

} // namespace mvec

template <> struct std::hash<mvec::Symbol> {
  size_t operator()(mvec::Symbol S) const { return S.hash(); }
};

#endif // MVEC_SUPPORT_STRINGINTERNER_H
