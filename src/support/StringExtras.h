//===- StringExtras.h - String helpers --------------------------*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small string utilities shared across the project.
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_SUPPORT_STRINGEXTRAS_H
#define MVEC_SUPPORT_STRINGEXTRAS_H

#include <string>
#include <string_view>
#include <vector>

namespace mvec {

/// Joins \p Parts with \p Sep between consecutive elements.
std::string join(const std::vector<std::string> &Parts, std::string_view Sep);

/// Strips leading and trailing whitespace.
std::string_view trim(std::string_view S);

/// Splits \p S on \p Sep, keeping empty fields.
std::vector<std::string> split(std::string_view S, char Sep);

/// Formats a double the way MATLAB source would print an integral constant
/// ("3" not "3.000000"); non-integral values keep enough digits to
/// round-trip.
std::string formatMatlabNumber(double Value);

/// True if \p S starts with \p Prefix.
bool startsWith(std::string_view S, std::string_view Prefix);

} // namespace mvec

#endif // MVEC_SUPPORT_STRINGEXTRAS_H
