//===- ContentHash.h - Content-addressing hash helpers ----------*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one FNV-1a implementation every content-addressed tier keys off:
/// the in-memory ContentCache, the per-nest NestCache, and the daemon's
/// on-disk DiskStore. Centralizing it here (with the canonical hex
/// spelling of a key) guarantees the tiers can never disagree about what
/// a given source hashes to — a memory-tier key IS the disk-tier file
/// name, IS the nest-context hash.
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_SUPPORT_CONTENTHASH_H
#define MVEC_SUPPORT_CONTENTHASH_H

#include <cstdint>
#include <string>

namespace mvec {

/// 64-bit FNV-1a over \p Data, continuing from \p Hash (pass the default
/// to start a fresh hash).
uint64_t fnv1aHash(const std::string &Data,
                   uint64_t Hash = 0xcbf29ce484222325ull);

/// Folds the raw 64-bit \p Word into \p Hash one byte at a time
/// (little-endian), with the same FNV-1a rounds as fnv1aHash. Used to mix
/// configuration fingerprints into a source hash so a toggle flip never
/// cancels against a source edit.
uint64_t fnv1aMix(uint64_t Word, uint64_t Hash);

/// The canonical textual spelling of a content key: exactly 16 lowercase
/// hex digits, zero-padded. Stable across platforms and releases — disk
/// stores persist it as the entry file name, so changing this format is a
/// store-version bump.
std::string contentHexKey(uint64_t Key);

/// Parses a string produced by contentHexKey. Returns false (leaving
/// \p Key untouched) unless \p Hex is exactly 16 lowercase hex digits.
bool parseContentHexKey(const std::string &Hex, uint64_t &Key);

} // namespace mvec

#endif // MVEC_SUPPORT_CONTENTHASH_H
