//===- ContentHash.cpp - Content-addressing hash helpers --------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/ContentHash.h"

using namespace mvec;

uint64_t mvec::fnv1aHash(const std::string &Data, uint64_t Hash) {
  for (unsigned char C : Data) {
    Hash ^= C;
    Hash *= 0x100000001b3ull;
  }
  return Hash;
}

uint64_t mvec::fnv1aMix(uint64_t Word, uint64_t Hash) {
  for (int Byte = 0; Byte != 8; ++Byte) {
    Hash ^= (Word >> (8 * Byte)) & 0xFF;
    Hash *= 0x100000001b3ull;
  }
  return Hash;
}

std::string mvec::contentHexKey(uint64_t Key) {
  static const char Digits[] = "0123456789abcdef";
  std::string Hex(16, '0');
  for (int I = 15; I >= 0; --I) {
    Hex[static_cast<size_t>(I)] = Digits[Key & 0xF];
    Key >>= 4;
  }
  return Hex;
}

bool mvec::parseContentHexKey(const std::string &Hex, uint64_t &Key) {
  if (Hex.size() != 16)
    return false;
  uint64_t Out = 0;
  for (char C : Hex) {
    Out <<= 4;
    if (C >= '0' && C <= '9')
      Out |= static_cast<uint64_t>(C - '0');
    else if (C >= 'a' && C <= 'f')
      Out |= static_cast<uint64_t>(C - 'a' + 10);
    else
      return false;
  }
  Key = Out;
  return true;
}
