//===- StringInterner.cpp - Interned identifier symbols ---------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/StringInterner.h"

using namespace mvec;

const std::string &Symbol::emptyString() {
  static const std::string Empty;
  return Empty;
}

Symbol StringInterner::intern(std::string_view S) {
  if (S.empty())
    return Symbol();
  size_t H = std::hash<std::string_view>()(S);
  Shard &Sh = Shards[H % NumShards];
  std::lock_guard<std::mutex> Lock(Sh.M);
  auto It = Sh.Set.find(S);
  if (It == Sh.Set.end())
    It = Sh.Set.emplace(S).first;
  return Symbol(&*It);
}

StringInterner &StringInterner::global() {
  // Leaked on purpose: symbols must outlive every static AST (pattern
  // templates, cached nests), and static destruction order is unknowable.
  static StringInterner *G = new StringInterner();
  return *G;
}
