//===- Diagnostics.h - Diagnostic collection --------------------*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small diagnostic engine. Library code never writes to stderr directly;
/// it reports through a DiagnosticEngine which tools can print or inspect.
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_SUPPORT_DIAGNOSTICS_H
#define MVEC_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLoc.h"

#include <string>
#include <vector>

namespace mvec {

enum class DiagSeverity { Note, Remark, Warning, Error };

/// One reported diagnostic.
struct Diagnostic {
  DiagSeverity Severity = DiagSeverity::Error;
  SourceLoc Loc;
  std::string Message;
};

/// Collects diagnostics produced by the frontend and the vectorizer.
///
/// Remarks are used to explain vectorization decisions (why a loop was or
/// was not vectorized), mirroring compiler optimization remarks.
class DiagnosticEngine {
public:
  void report(DiagSeverity Severity, SourceLoc Loc, std::string Message);

  void error(SourceLoc Loc, std::string Message) {
    report(DiagSeverity::Error, Loc, std::move(Message));
  }
  void warning(SourceLoc Loc, std::string Message) {
    report(DiagSeverity::Warning, Loc, std::move(Message));
  }
  void remark(SourceLoc Loc, std::string Message) {
    report(DiagSeverity::Remark, Loc, std::move(Message));
  }
  void note(SourceLoc Loc, std::string Message) {
    report(DiagSeverity::Note, Loc, std::move(Message));
  }

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  void clear() {
    Diags.clear();
    NumErrors = 0;
  }

  /// Renders all diagnostics as "file:line:col: severity: message" lines.
  std::string str(const std::string &FileName = "<input>") const;

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

/// Returns the display name for \p Severity ("error", "warning", ...).
const char *severityName(DiagSeverity Severity);

} // namespace mvec

#endif // MVEC_SUPPORT_DIAGNOSTICS_H
