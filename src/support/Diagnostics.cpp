//===- Diagnostics.cpp - Diagnostic collection ----------------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

#include <sstream>

using namespace mvec;

const char *mvec::severityName(DiagSeverity Severity) {
  switch (Severity) {
  case DiagSeverity::Note:
    return "note";
  case DiagSeverity::Remark:
    return "remark";
  case DiagSeverity::Warning:
    return "warning";
  case DiagSeverity::Error:
    return "error";
  }
  return "unknown";
}

void DiagnosticEngine::report(DiagSeverity Severity, SourceLoc Loc,
                              std::string Message) {
  if (Severity == DiagSeverity::Error)
    ++NumErrors;
  Diags.push_back(Diagnostic{Severity, Loc, std::move(Message)});
}

std::string DiagnosticEngine::str(const std::string &FileName) const {
  std::ostringstream OS;
  for (const Diagnostic &D : Diags) {
    OS << FileName;
    if (D.Loc.isValid())
      OS << ':' << D.Loc.Line << ':' << D.Loc.Col;
    OS << ": " << severityName(D.Severity) << ": " << D.Message << '\n';
  }
  return OS.str();
}
