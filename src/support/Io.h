//===- Io.h - EINTR-safe fd I/O helpers -------------------------*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small retrying wrappers around read/recv/send/poll shared by every
/// file-descriptor path in the tree (the daemon's TCP transport and the
/// sandbox's parent<->worker socketpairs). They exist because the bare
/// syscalls have three sharp edges that every call site used to handle —
/// or mishandle — independently:
///
///   * EINTR: any of them can return early when a signal lands (SIGCHLD
///     from a reaped worker, SIGHUP reload). All helpers retry.
///   * Partial transfer: send/write may move fewer bytes than asked;
///     sendFull/writeFull loop until done.
///   * Wedged peers: a peer that stops reading would block a send
///     forever; sendFull takes an overall wall-clock budget enforced
///     with poll(POLLOUT), after which the transfer fails and the caller
///     tears the connection down.
///
/// All send paths use MSG_NOSIGNAL so a dead peer yields EPIPE instead
/// of a process-killing SIGPIPE, independent of the caller's signal
/// setup.
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_SUPPORT_IO_H
#define MVEC_SUPPORT_IO_H

#include <cstddef>
#include <sys/types.h>

namespace mvec {
namespace io {

/// poll(2) for \p Events on \p Fd, retrying EINTR against a fixed
/// wall-clock deadline. Returns >0 when ready, 0 on timeout, <0 on a
/// non-retryable poll error. \p TimeoutMs < 0 waits forever.
int pollFor(int Fd, short Events, int TimeoutMs);

/// recv(2) retrying EINTR. Returns the byte count (0 = orderly EOF) or
/// -1 with errno set (including EAGAIN/EWOULDBLOCK from SO_RCVTIMEO
/// ticks, which callers use as a stop-flag poll point).
ssize_t recvSome(int Fd, void *Buf, size_t Len);

/// read(2) retrying EINTR (for non-socket fds).
ssize_t readSome(int Fd, void *Buf, size_t Len);

/// Sends all \p Len bytes with MSG_NOSIGNAL, retrying EINTR and partial
/// transfers, spending at most \p TimeoutMs wall-clock overall (< 0 =
/// no limit). A bounded send uses MSG_DONTWAIT + poll(POLLOUT) so the
/// budget holds even on a blocking fd. Returns false when the peer died
/// or the budget ran out; the stream position is then indeterminate and
/// the fd should be closed.
bool sendFull(int Fd, const void *Buf, size_t Len, int TimeoutMs = -1);

/// write(2) analogue of sendFull for non-socket fds (no timeout; pipes
/// to dead readers fail with EPIPE only if SIGPIPE is ignored —
/// callers on pipes must arrange that themselves).
bool writeFull(int Fd, const void *Buf, size_t Len);

} // namespace io
} // namespace mvec

#endif // MVEC_SUPPORT_IO_H
