//===- SourceLoc.h - Source locations for diagnostics ----------*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight 1-based line/column source locations.
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_SUPPORT_SOURCELOC_H
#define MVEC_SUPPORT_SOURCELOC_H

#include <cstdint>

namespace mvec {

/// A position in the input buffer. Line and column are 1-based; a value of
/// zero means "unknown" (e.g. for synthesized AST nodes).
struct SourceLoc {
  uint32_t Line = 0;
  uint32_t Col = 0;

  SourceLoc() = default;
  SourceLoc(uint32_t Line, uint32_t Col) : Line(Line), Col(Col) {}

  bool isValid() const { return Line != 0; }

  friend bool operator==(const SourceLoc &A, const SourceLoc &B) {
    return A.Line == B.Line && A.Col == B.Col;
  }
};

} // namespace mvec

#endif // MVEC_SUPPORT_SOURCELOC_H
