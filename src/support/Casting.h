//===- Casting.h - LLVM-style isa/cast/dyn_cast templates ------*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-rolled RTTI in the style of llvm/Support/Casting.h. Classes opt in by
/// providing a static `classof(const Base *)` predicate, typically backed by
/// a kind discriminator.
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_SUPPORT_CASTING_H
#define MVEC_SUPPORT_CASTING_H

#include <cassert>
#include <type_traits>

namespace mvec {

/// Returns true if \p Val is an instance of (a subclass of) \p To.
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

template <typename To, typename From>
  requires(!std::is_pointer_v<From>)
bool isa(const From &Val) {
  return To::classof(&Val);
}

/// Checked downcast: asserts that \p Val really is a \p To.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type!");
  return static_cast<To *>(Val);
}

template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type!");
  return static_cast<const To *>(Val);
}

template <typename To, typename From> To &cast(From &Val) {
  assert(isa<To>(&Val) && "cast<> argument of incompatible type!");
  return static_cast<To &>(Val);
}

template <typename To, typename From> const To &cast(const From &Val) {
  assert(isa<To>(&Val) && "cast<> argument of incompatible type!");
  return static_cast<const To &>(Val);
}

/// Checking downcast: returns null when \p Val is not a \p To.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return Val && isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return Val && isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

/// Like isa<>, but tolerates a null pointer (returns false).
template <typename To, typename From> bool isa_and_present(const From *Val) {
  return Val && isa<To>(Val);
}

} // namespace mvec

#endif // MVEC_SUPPORT_CASTING_H
