//===- Vectorizer.h - Top-level vectorization driver ------------*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public entry point of the library: source-to-source vectorization of
/// a parsed MATLAB program. Walks every for-loop nest (outermost first),
/// normalizes index variables, builds the dependence graph and runs the
/// dimension-checking code generator; nests that fail the eligibility
/// checks are kept and their inner loops tried independently.
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_VECTORIZER_VECTORIZER_H
#define MVEC_VECTORIZER_VECTORIZER_H

#include "frontend/AST.h"
#include "patterns/PatternDatabase.h"
#include "shape/ShapeEnv.h"
#include "support/Diagnostics.h"
#include "vectorizer/Options.h"

namespace mvec {

class NestCache;

struct VectorizeStats {
  unsigned LoopNestsConsidered = 0;
  /// Nests where at least one statement was emitted in vector form.
  unsigned LoopNestsImproved = 0;
  unsigned StmtsVectorized = 0;
  unsigned StmtsSequential = 0;
  /// Sequential loops materialized in vectorized output (partial
  /// vectorization indicator).
  unsigned SequentialLoopsEmitted = 0;
  unsigned IneligibleNests = 0;
  /// Statements a legal vectorization existed for but the cost model kept
  /// in loop form (0 unless VectorizerOptions::Cost is set).
  unsigned StmtsCostKept = 0;
  /// Nests where the cost model kept at least one such statement.
  unsigned NestsKeptLoop = 0;
  /// Mul-chain associations where the cost model overrode the default
  /// most-reductions-folded grouping in emitted code.
  unsigned VariantOverrides = 0;
};

/// Vectorizes \p P under shape environment \p Env using pattern database
/// \p DB, returning the transformed program. Remarks (when enabled) and
/// warnings go to \p Diags; the input program is never modified.
///
/// \p Cache, when given, memoizes per-loop-nest outcomes across calls
/// (see NestCache.h); it is bypassed whenever remarks are enabled, since
/// replayed outcomes cannot reproduce per-run source locations. There is
/// deliberately no process-global default cache — cold-path measurements
/// must stay honest — so callers wanting nest reuse own one explicitly
/// (the service layer does).
Program vectorizeProgram(const Program &P, const ShapeEnv &Env,
                         const PatternDatabase &DB,
                         const VectorizerOptions &Opts,
                         DiagnosticEngine &Diags,
                         VectorizeStats *Stats = nullptr,
                         NestCache *Cache = nullptr);

} // namespace mvec

#endif // MVEC_VECTORIZER_VECTORIZER_H
