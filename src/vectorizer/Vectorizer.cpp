//===- Vectorizer.cpp - Top-level vectorization driver ----------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "vectorizer/Vectorizer.h"

#include "deps/DepAnalysis.h"
#include "deps/LoopNest.h"
#include "frontend/ASTPrinter.h"
#include "frontend/ASTUtils.h"
#include "vectorizer/Codegen.h"
#include "vectorizer/NestCache.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <optional>
#include <unordered_map>
#include <unordered_set>

using namespace mvec;

namespace {

/// Collects every name assigned anywhere under \p Body (assignment
/// targets, including indexed-assignment bases, and loop index
/// variables) into \p Names.
void collectAssignedNames(const std::vector<StmtPtr> &Body,
                          std::set<Symbol> &Names) {
  visitStmts(Body, [&](const Stmt &S) {
    if (const auto *A = dyn_cast<AssignStmt>(&S)) {
      if (const auto *Id = dyn_cast<IdentExpr>(A->lhs()))
        Names.insert(Id->sym());
      else if (const auto *Ix = dyn_cast<IndexExpr>(A->lhs()))
        if (const auto *Base = dyn_cast<IdentExpr>(Ix->base()))
          Names.insert(Base->sym());
    } else if (const auto *F = dyn_cast<ForStmt>(&S)) {
      Names.insert(F->indexSym());
    }
  });
}

/// Appends the chain of statements containing \p Target (outermost
/// first) to \p Path. Returns true when \p Target was found under
/// \p Body. \p Target itself is not part of the chain.
bool collectAncestors(const std::vector<StmtPtr> &Body, const Stmt *Target,
                      std::vector<const Stmt *> &Path) {
  for (const StmtPtr &SP : Body) {
    const Stmt *S = SP.get();
    if (S == Target)
      return true;
    bool Found = false;
    if (const auto *For = dyn_cast<ForStmt>(S))
      Found = collectAncestors(For->body(), Target, Path);
    else if (const auto *While = dyn_cast<WhileStmt>(S))
      Found = collectAncestors(While->body(), Target, Path);
    else if (const auto *If = dyn_cast<IfStmt>(S)) {
      for (const IfStmt::Branch &B : If->branches())
        if ((Found = collectAncestors(B.Body, Target, Path)))
          break;
    }
    if (Found) {
      Path.push_back(S);
      return true;
    }
  }
  return false;
}

/// Per-run side tables for the index-liveness check. Statement addresses
/// are stable for a whole vectorizeProgram run (the pass only splices
/// statements, never rewrites one in place, and the program arena never
/// recycles memory), so subtree facts can be memoized by Stmt identity.
struct LivenessScanner {
  /// Every identifier mentioned anywhere in the statement subtree
  /// (lazily computed, cached for the rest of the run).
  const std::unordered_set<Symbol> &mentionSet(const Stmt &S) {
    auto It = Mentions.find(&S);
    if (It != Mentions.end())
      return It->second;
    std::unordered_set<Symbol> Names;
    auto CollectFrom = [&Names](const Expr *E) {
      if (E)
        visitExpr(*E, [&Names](const Expr &Node) {
          if (const auto *Ident = dyn_cast<IdentExpr>(&Node))
            Names.insert(Ident->sym());
        });
    };
    auto Visit = [&](const Stmt &Sub) {
      if (const auto *A = dyn_cast<AssignStmt>(&Sub)) {
        CollectFrom(A->lhs());
        CollectFrom(A->rhs());
      } else if (const auto *E = dyn_cast<ExprStmt>(&Sub)) {
        CollectFrom(E->expr());
      } else if (const auto *F = dyn_cast<ForStmt>(&Sub)) {
        Names.insert(F->indexSym());
        CollectFrom(F->range());
      } else if (const auto *W = dyn_cast<WhileStmt>(&Sub)) {
        CollectFrom(W->cond());
      } else if (const auto *I = dyn_cast<IfStmt>(&Sub)) {
        for (const IfStmt::Branch &B : I->branches())
          CollectFrom(B.Cond.get());
      }
    };
    Visit(S);
    if (const auto *F = dyn_cast<ForStmt>(&S))
      visitStmts(F->body(), Visit);
    else if (const auto *W = dyn_cast<WhileStmt>(&S))
      visitStmts(W->body(), Visit);
    else if (const auto *I = dyn_cast<IfStmt>(&S))
      for (const IfStmt::Branch &B : I->branches())
        visitStmts(B.Body, Visit);
    return Mentions.emplace(&S, std::move(Names)).first->second;
  }

  /// True when some statement outside loop \p L's subtree may read
  /// \p V — the value \p L's index variable holds after the loop
  /// finishes. A sibling for-loop that itself iterates over \p V rebinds
  /// the name, so reads in its body are not charged to \p L (its range
  /// expression is evaluated before the rebinding and still counts).
  /// \p AncestorsOfL holds the statements containing L, so "does this
  /// sibling loop contain L" is a set lookup instead of a subtree walk.
  bool readsIndexOutside(const std::vector<StmtPtr> &Body, Symbol V,
                         const ForStmt *L,
                         const std::unordered_set<const Stmt *> &AncestorsOfL) {
    for (const StmtPtr &SP : Body) {
      const Stmt *S = SP.get();
      if (S == static_cast<const Stmt *>(L))
        continue; // reads under L observe the loop's own binding
      if (!mentionSet(*S).count(V))
        continue; // V does not occur anywhere under S
      if (stmtReads(*S, V, L, AncestorsOfL))
        return true;
    }
    return false;
  }

  /// readsIndexOutside against the top-level body, answered through a
  /// per-symbol partition of the top-level statements instead of a walk.
  /// The scan is an existence check — no statement's verdict depends on
  /// another's — and a statement's verdict for \p V cannot change while
  /// its subtree is untouched, so verdicts are computed once and sorted
  /// into Readers/Benign; only \p TopStmt (the top-level statement whose
  /// subtree contains \p L and is being rewritten right now) must be
  /// scanned live on every query.
  bool readsIndexOutsideTop(Symbol V, const ForStmt *L, const Stmt *TopStmt,
                            const std::unordered_set<const Stmt *> &AncestorsOfL) {
    if (TopStmt && mentionSet(*TopStmt).count(V) &&
        stmtReads(*TopStmt, V, L, AncestorsOfL))
      return true;
    auto It = Top.find(V);
    if (It == Top.end())
      return false;
    PerName &P = It->second;
    auto Excluded = [&](const Stmt *S) {
      return S == static_cast<const Stmt *>(L) || S == TopStmt;
    };
    for (const Stmt *S : P.Readers)
      if (!Excluded(S))
        return true;
    if (P.Unknown.empty())
      return false;
    bool Any = false;
    std::vector<const Stmt *> Pending(P.Unknown.begin(), P.Unknown.end());
    for (const Stmt *S : Pending) {
      if (Excluded(S))
        continue; // still in flux (or the nest itself); resolve later
      P.Unknown.erase(S);
      if (stmtReads(*S, V, L, AncestorsOfL)) {
        P.Readers.insert(S);
        Any = true;
      } else {
        P.Benign.insert(S);
      }
    }
    return Any;
  }

  /// Registers every top-level statement with the per-symbol partition.
  void indexTop(const std::vector<StmtPtr> &Body) {
    for (const StmtPtr &SP : Body)
      onTopInsert(*SP);
  }

  /// A top-level statement is about to be erased (its nest was rewritten).
  void onTopRemove(const Stmt &S) {
    for (Symbol Name : mentionSet(S)) {
      auto It = Top.find(Name);
      if (It == Top.end())
        continue;
      It->second.Readers.erase(&S);
      It->second.Benign.erase(&S);
      It->second.Unknown.erase(&S);
    }
  }

  /// A new top-level statement was spliced in; its verdicts are pending.
  void onTopInsert(const Stmt &S) {
    for (Symbol Name : mentionSet(S))
      Top[Name].Unknown.insert(&S);
  }

  /// The subtree of top-level statement \p S changed (an inner nest was
  /// rewritten): every cached verdict about it is void. Must run after
  /// the splice and after augment(), so mentionSet covers the new names.
  void invalidateTop(const Stmt &S) {
    for (Symbol Name : mentionSet(S)) {
      PerName &P = Top[Name];
      P.Readers.erase(&S);
      P.Benign.erase(&S);
      P.Unknown.insert(&S);
    }
  }

  /// Widens the cached mention sets of every statement in \p Enclosing
  /// with \p Names. Called when a rewrite splices new statements into a
  /// body nested under them: the rewrite can introduce identifiers
  /// (sum, repmat, ...) the enclosing subtrees never mentioned before,
  /// and a stale set would let the prune skip a genuine read. Supersets
  /// are always safe — the prune only relies on absence.
  void augment(const std::vector<const Stmt *> &Enclosing,
               const std::unordered_set<Symbol> &Names) {
    for (const Stmt *S : Enclosing) {
      auto It = Mentions.find(S);
      if (It != Mentions.end())
        It->second.insert(Names.begin(), Names.end());
    }
  }

private:
  /// Whether \p S (known to mention \p V somewhere in its subtree) reads
  /// the value \p V holds after loop \p L.
  bool stmtReads(const Stmt &S, Symbol V, const ForStmt *L,
                 const std::unordered_set<const Stmt *> &AncestorsOfL) {
    switch (S.kind()) {
    case Stmt::Kind::Assign: {
      const auto &A = cast<AssignStmt>(S);
      if (mentionsIdentifier(*A.rhs(), V))
        return true;
      // LHS subscripts are reads; a plain identifier LHS is a pure
      // write.
      return !isa<IdentExpr>(A.lhs()) && mentionsIdentifier(*A.lhs(), V);
    }
    case Stmt::Kind::Expr:
      return mentionsIdentifier(*cast<ExprStmt>(S).expr(), V);
    case Stmt::Kind::For: {
      const auto &F = cast<ForStmt>(S);
      if (mentionsIdentifier(*F.range(), V))
        return true;
      if (F.indexSym() == V && !AncestorsOfL.count(&F))
        return false;
      return readsIndexOutside(F.body(), V, L, AncestorsOfL);
    }
    case Stmt::Kind::While: {
      const auto &W = cast<WhileStmt>(S);
      return mentionsIdentifier(*W.cond(), V) ||
             readsIndexOutside(W.body(), V, L, AncestorsOfL);
    }
    case Stmt::Kind::If: {
      const auto &I = cast<IfStmt>(S);
      for (const IfStmt::Branch &B : I.branches()) {
        if (B.Cond && mentionsIdentifier(*B.Cond, V))
          return true;
        if (readsIndexOutside(B.Body, V, L, AncestorsOfL))
          return true;
      }
      return false;
    }
    default:
      return false;
    }
  }

  std::unordered_map<const Stmt *, std::unordered_set<Symbol>> Mentions;
  /// Top-level statements mentioning a symbol, partitioned by whether
  /// they read it in the liveness sense (Readers), provably do not
  /// (Benign), or have not been asked yet (Unknown).
  struct PerName {
    std::unordered_set<const Stmt *> Readers;
    std::unordered_set<const Stmt *> Benign;
    std::unordered_set<const Stmt *> Unknown;
  };
  std::unordered_map<Symbol, PerName> Top;
};

/// Row/column extents of \p E when they are statically known: literal-size
/// constructors (rand/zeros/ones/eye, reshape), elementwise builtins and
/// operators over operands with known extents, and scalars bound in
/// \p Constants. Used only to prove loop trip counts positive, so every
/// rule must be exact for programs the interpreter accepts; programs the
/// rules would misjudge (mismatched operand shapes, non-integer
/// constructor extents) error identically in original and transformed
/// form before the proof matters. Names in \p Assigned shadow builtins.
std::optional<std::pair<double, double>>
knownDimsOf(const Expr *E, const std::map<Symbol, double> &Constants,
            const std::map<Symbol, std::pair<double, double>> &Known,
            const std::set<Symbol> &Assigned) {
  if (!E)
    return std::nullopt;
  auto Recurse = [&](const Expr *Sub) {
    return knownDimsOf(Sub, Constants, Known, Assigned);
  };
  if (isa<NumberExpr>(E))
    return std::make_pair(1.0, 1.0);
  if (const auto *Id = dyn_cast<IdentExpr>(E)) {
    auto It = Known.find(Id->sym());
    if (It != Known.end())
      return It->second;
    if (Constants.count(Id->sym()))
      return std::make_pair(1.0, 1.0);
    return std::nullopt;
  }
  if (const auto *Un = dyn_cast<UnaryExpr>(E))
    return Recurse(Un->operand());
  if (const auto *Tr = dyn_cast<TransposeExpr>(E)) {
    auto D = Recurse(Tr->operand());
    if (!D)
      return std::nullopt;
    return std::make_pair(D->second, D->first);
  }
  if (const auto *Bin = dyn_cast<BinaryExpr>(E)) {
    auto A = Recurse(Bin->lhs());
    auto B = Recurse(Bin->rhs());
    if (!A || !B)
      return std::nullopt;
    bool AScalar = A->first == 1 && A->second == 1;
    bool BScalar = B->first == 1 && B->second == 1;
    if (isPointwiseArithOp(Bin->op()) || isElementwiseRelOp(Bin->op())) {
      if (AScalar)
        return B;
      if (BScalar || *A == *B)
        return A;
      return std::nullopt;
    }
    switch (Bin->op()) {
    case BinaryOp::Mul:
      if (AScalar)
        return B;
      if (BScalar)
        return A;
      if (A->second == B->first)
        return std::make_pair(A->first, B->second);
      return std::nullopt;
    case BinaryOp::Div:
    case BinaryOp::Pow:
      // Only the scalar-divisor/exponent cases are elementwise-like;
      // matrix divide/power shapes are not modeled.
      if (BScalar)
        return A;
      return std::nullopt;
    default:
      return std::nullopt;
    }
  }
  if (const auto *Ix = dyn_cast<IndexExpr>(E)) {
    Symbol FnSym = Ix->baseSym();
    if (FnSym.empty() || Assigned.count(FnSym))
      return std::nullopt;
    const std::string &Fn = FnSym.str();
    auto ConstArg = [&](unsigned I) -> std::optional<double> {
      double V;
      if (I < Ix->numArgs() && evaluateConstantWith(*Ix->arg(I), Constants, V) &&
          std::isfinite(V) && V >= 0 && V == std::floor(V))
        return V;
      return std::nullopt;
    };
    if (Fn == "rand" || Fn == "zeros" || Fn == "ones" || Fn == "eye") {
      if (Ix->numArgs() == 0)
        return std::make_pair(1.0, 1.0);
      if (Ix->numArgs() == 1) {
        auto N = ConstArg(0);
        if (N)
          return std::make_pair(*N, *N);
        return std::nullopt;
      }
      if (Ix->numArgs() == 2) {
        auto R = ConstArg(0);
        auto C = ConstArg(1);
        if (R && C)
          return std::make_pair(*R, *C);
      }
      return std::nullopt;
    }
    if (Fn == "reshape" && Ix->numArgs() == 3) {
      auto R = ConstArg(1);
      auto C = ConstArg(2);
      if (R && C)
        return std::make_pair(*R, *C);
      return std::nullopt;
    }
    // Elementwise single-argument builtins preserve extents.
    static const std::set<std::string> Elementwise = {
        "abs",  "sqrt",  "sin", "cos", "tan", "exp",
        "log",  "floor", "ceil", "round", "fix"};
    if (Elementwise.count(Fn) && Ix->numArgs() == 1)
      return Recurse(Ix->arg(0));
    if (Fn == "mod" && Ix->numArgs() == 2) {
      auto A = Recurse(Ix->arg(0));
      auto B = Recurse(Ix->arg(1));
      if (!A || !B)
        return std::nullopt;
      if (B->first == 1 && B->second == 1)
        return A;
      if ((A->first == 1 && A->second == 1) || *A == *B)
        return B;
      return std::nullopt;
    }
    return std::nullopt;
  }
  return std::nullopt;
}

/// Component-wise After - Before; every counter only ever grows.
VectorizeStats statsDelta(const VectorizeStats &Before,
                          const VectorizeStats &After) {
  VectorizeStats D;
  D.LoopNestsConsidered = After.LoopNestsConsidered - Before.LoopNestsConsidered;
  D.LoopNestsImproved = After.LoopNestsImproved - Before.LoopNestsImproved;
  D.StmtsVectorized = After.StmtsVectorized - Before.StmtsVectorized;
  D.StmtsSequential = After.StmtsSequential - Before.StmtsSequential;
  D.SequentialLoopsEmitted =
      After.SequentialLoopsEmitted - Before.SequentialLoopsEmitted;
  D.IneligibleNests = After.IneligibleNests - Before.IneligibleNests;
  D.StmtsCostKept = After.StmtsCostKept - Before.StmtsCostKept;
  D.NestsKeptLoop = After.NestsKeptLoop - Before.NestsKeptLoop;
  D.VariantOverrides = After.VariantOverrides - Before.VariantOverrides;
  return D;
}

void addStats(VectorizeStats &S, const VectorizeStats &Delta) {
  S.LoopNestsConsidered += Delta.LoopNestsConsidered;
  S.LoopNestsImproved += Delta.LoopNestsImproved;
  S.StmtsVectorized += Delta.StmtsVectorized;
  S.StmtsSequential += Delta.StmtsSequential;
  S.SequentialLoopsEmitted += Delta.SequentialLoopsEmitted;
  S.IneligibleNests += Delta.IneligibleNests;
  S.StmtsCostKept += Delta.StmtsCostKept;
  S.NestsKeptLoop += Delta.NestsKeptLoop;
  S.VariantOverrides += Delta.VariantOverrides;
}

class VectorizerDriver {
public:
  VectorizerDriver(const ShapeEnv &Env, const PatternDatabase &DB,
                   const VectorizerOptions &Opts, DiagnosticEngine &Diags,
                   VectorizeStats &Stats, NestCache *NCache)
      : Env(Env), DB(DB), Opts(Opts), Diags(Diags), Stats(Stats),
        NCache(NCache) {}

  void run(Program &P) {
    TopBody = &P.Stmts;
    collectAssignedNames(P.Stmts, Guards.AssignedNames);
    Liveness.indexTop(P.Stmts);
    processBody(P.Stmts);
  }

private:
  void processBody(std::vector<StmtPtr> &Body);

  /// Attempts to vectorize the nest rooted at \p Loop. Returns the
  /// replacement statements (an empty list when the nest was deleted as
  /// provably zero-trip), or nullopt when the loop should stay.
  std::optional<std::vector<StmtPtr>> tryNest(ForStmt &Loop);

  /// Serializes everything tryNest's verdict for a top-level \p Loop can
  /// depend on: the nest's printed text, the shape / constant / extent /
  /// assigned-name facts for every identifier the subtree mentions, the
  /// index-liveness verdict of each nest loop, and the configuration.
  /// Two nests with equal keys are guaranteed the same outcome.
  std::string nestCacheKey(ForStmt &Loop);

  /// Updates the constant/known-extent facts for a straight-line
  /// assignment reaching this program point on every execution.
  void recordAssignment(const AssignStmt &A) {
    if (const auto *Id = dyn_cast<IdentExpr>(A.lhs())) {
      double V;
      if (evaluateConstantWith(*A.rhs(), Guards.Constants, V))
        Guards.Constants[Id->sym()] = V;
      else
        Guards.Constants.erase(Id->sym());
      auto Dims = knownDimsOf(A.rhs(), Guards.Constants, Guards.KnownDims,
                              Guards.AssignedNames);
      if (Dims)
        Guards.KnownDims[Id->sym()] = *Dims;
      else
        Guards.KnownDims.erase(Id->sym());
    } else if (const auto *Ix = dyn_cast<IndexExpr>(A.lhs())) {
      if (const auto *Base = dyn_cast<IdentExpr>(Ix->base())) {
        Guards.Constants.erase(Base->sym());
        // An indexed write can grow the variable, so its recorded
        // extents are no longer trustworthy.
        Guards.KnownDims.erase(Base->sym());
      }
    }
  }

  void eraseAssignedConstants(const std::vector<StmtPtr> &Body) {
    std::set<Symbol> Assigned;
    collectAssignedNames(Body, Assigned);
    for (Symbol Name : Assigned) {
      Guards.Constants.erase(Name);
      Guards.KnownDims.erase(Name);
    }
  }

  ShapeEnv Env; ///< extended with enclosing loop indices while recursing
  const PatternDatabase &DB;
  const VectorizerOptions &Opts;
  DiagnosticEngine &Diags;
  VectorizeStats &Stats;
  /// Root statement list of the program being rewritten; liveness of
  /// loop index variables is judged against this whole tree.
  const std::vector<StmtPtr> *TopBody = nullptr;
  /// Facts codegen needs to stay sound when trip counts may be zero.
  CodegenGuards Guards;
  /// Memoized subtree facts for the liveness scan.
  LivenessScanner Liveness;
  /// Chain of compound statements the current processBody call is
  /// nested under; their cached mention sets are widened when a rewrite
  /// splices new statements below them.
  std::vector<const Stmt *> Enclosing;
  /// Cross-run nest outcome cache; null when the caller did not opt in.
  NestCache *NCache;
};

std::string VectorizerDriver::nestCacheKey(ForStmt &Loop) {
  std::string Key = printStmt(Loop);
  char Buf[80];

  // Context facts for every identifier the subtree mentions, in
  // deterministic (content) order. Identifiers the environment does not
  // know still contribute a line: "known nothing" must not collide with
  // "not mentioned".
  Key += "#env\n";
  const std::unordered_set<Symbol> &Mentions = Liveness.mentionSet(Loop);
  std::vector<Symbol> Sorted(Mentions.begin(), Mentions.end());
  std::sort(Sorted.begin(), Sorted.end());
  for (Symbol Name : Sorted) {
    Key += Name.str();
    Key += '=';
    if (std::optional<Dimensionality> Shape = Env.getShape(Name.str()))
      Key += Shape->str();
    else
      Key += '?';
    auto C = Guards.Constants.find(Name);
    if (C != Guards.Constants.end()) {
      std::snprintf(Buf, sizeof(Buf), ";c%.17g", C->second);
      Key += Buf;
    }
    auto D = Guards.KnownDims.find(Name);
    if (D != Guards.KnownDims.end()) {
      std::snprintf(Buf, sizeof(Buf), ";d%.17gx%.17g", D->second.first,
                    D->second.second);
      Key += Buf;
    }
    if (Guards.AssignedNames.count(Name))
      Key += ";a";
    Key += '\n';
  }

  // Liveness verdict of each nest loop's index variable, in the same
  // order tryNest tests them. The key is only built for top-level nests,
  // so the ancestor sets mirror tryNest's with Enclosing empty.
  Key += "#live ";
  std::vector<const ForStmt *> NestLoops;
  NestLoops.push_back(&Loop);
  visitStmts(Loop.body(), [&](const Stmt &S) {
    if (const auto *F = dyn_cast<ForStmt>(&S))
      NestLoops.push_back(F);
  });
  for (const ForStmt *F : NestLoops) {
    std::unordered_set<const Stmt *> Ancestors;
    const Stmt *TopStmt = nullptr;
    if (F != &Loop) {
      Ancestors.insert(&Loop);
      std::vector<const Stmt *> Path;
      collectAncestors(Loop.body(), F, Path);
      Ancestors.insert(Path.begin(), Path.end());
      TopStmt = &Loop;
    }
    Key += Liveness.readsIndexOutsideTop(F->indexSym(), F, TopStmt, Ancestors)
               ? '1'
               : '0';
  }

  std::snprintf(Buf, sizeof(Buf), "\n#cfg %llx/%p",
                static_cast<unsigned long long>(optionsFingerprint(Opts)),
                static_cast<const void *>(&DB));
  Key += Buf;
  return Key;
}

std::optional<std::vector<StmtPtr>> VectorizerDriver::tryNest(ForStmt &Loop) {
  ++Stats.LoopNestsConsidered;

  // Work on a clone: normalization rewrites the tree, and we only commit
  // when something was vectorized.
  StmtPtr CloneStmt = Loop.clone();
  auto *Clone = cast<ForStmt>(CloneStmt.get());
  if (Opts.NormalizeLoops)
    normalizeLoopIndices(*Clone);

  std::string Reason;
  auto Nest = buildLoopNest(*Clone, Reason);
  if (!Nest) {
    ++Stats.IneligibleNests;
    if (Opts.EmitRemarks)
      Diags.remark(Loop.loc(), "loop not a vectorization candidate: " +
                                   Reason);
    return std::nullopt;
  }

  // rand() draws from sequential generator state: hoisting an invariant
  // call changes how many draws happen, and reordering statements
  // changes which values land where. Any rewrite of a nest that draws
  // random numbers is observable, so refuse the whole nest.
  bool DrawsRandom = false;
  static const Symbol RandSym = internSymbol("rand");
  auto CheckExprForRand = [&DrawsRandom](const Expr &E) {
    if (mentionsIdentifier(E, RandSym))
      DrawsRandom = true;
  };
  visitStmts(Loop.body(), [&](const Stmt &S) {
    if (const auto *A = dyn_cast<AssignStmt>(&S)) {
      CheckExprForRand(*A->rhs());
      CheckExprForRand(*A->lhs());
    } else if (const auto *E = dyn_cast<ExprStmt>(&S)) {
      CheckExprForRand(*E->expr());
    } else if (const auto *F = dyn_cast<ForStmt>(&S)) {
      CheckExprForRand(*F->range());
    }
  });
  if (DrawsRandom) {
    ++Stats.IneligibleNests;
    if (Opts.EmitRemarks)
      Diags.remark(Loop.loc(), "loop not a vectorization candidate: body "
                               "draws random numbers (order-sensitive)");
    return std::nullopt;
  }

  // The interpreter leaves an index variable holding its final value
  // after the loop; neither the vector rewrite nor index normalization
  // reproduces that, so any possible later read of an index variable
  // makes the nest ineligible.
  std::vector<const ForStmt *> NestLoops;
  NestLoops.push_back(&Loop);
  visitStmts(Loop.body(), [&](const Stmt &S) {
    if (const auto *F = dyn_cast<ForStmt>(&S))
      NestLoops.push_back(F);
  });
  // Ancestors of the nest's loops are already known: the driver carries
  // the chain of compound statements enclosing the current body, and any
  // deeper ancestors lie inside Loop's own (small) subtree — no need to
  // search the whole program per loop.
  for (const ForStmt *F : NestLoops) {
    std::unordered_set<const Stmt *> Ancestors(Enclosing.begin(),
                                               Enclosing.end());
    if (F != &Loop) {
      Ancestors.insert(&Loop);
      std::vector<const Stmt *> Path;
      collectAncestors(Loop.body(), F, Path);
      Ancestors.insert(Path.begin(), Path.end());
    }
    // The one top-level statement whose subtree holds F and may still be
    // rewritten; every other top-level statement goes through the index.
    const Stmt *TopStmt = !Enclosing.empty()
                              ? Enclosing.front()
                              : (F == &Loop ? nullptr
                                            : static_cast<const Stmt *>(&Loop));
    if (TopBody &&
        Liveness.readsIndexOutsideTop(F->indexSym(), F, TopStmt, Ancestors)) {
      ++Stats.IneligibleNests;
      if (Opts.EmitRemarks)
        Diags.remark(Loop.loc(),
                     "loop not a vectorization candidate: index variable '" +
                         F->indexVar() + "' may be read after the loop");
      return std::nullopt;
    }
  }

  DepGraph Graph = buildDepGraph(*Nest, Env);
  CodegenResult Result = runCodegen(*Nest, Graph, Env, DB, Opts, Diags, Guards);

  Stats.StmtsVectorized += Result.VectorizedStmts;
  Stats.StmtsSequential += Result.SequentialStmts;
  if (Result.VectorizedStmts != 0)
    Stats.SequentialLoopsEmitted += Result.SequentialLoops;
  // Cost decisions are counted even when the nest stays untouched below:
  // "everything kept in loop form" is exactly the verdict the counters
  // and daemon STATS need to surface.
  Stats.StmtsCostKept += Result.CostKeptStmts;
  Stats.VariantOverrides += Result.VariantOverrides;
  if (Result.CostKeptStmts != 0)
    ++Stats.NestsKeptLoop;
  if (Result.VectorizedStmts == 0)
    return std::nullopt; // nothing improved: keep the original loop untouched

  ++Stats.LoopNestsImproved;
  return std::move(Result.Stmts);
}

void VectorizerDriver::processBody(std::vector<StmtPtr> &Body) {
  // Rewrites in place (splicing replacements at the loop's position) so
  // the whole program tree stays walkable mid-pass: the index-liveness
  // check inspects statements far from the nest being considered.
  for (size_t I = 0; I < Body.size(); ++I) {
    Stmt *S = Body[I].get();
    if (auto *Loop = dyn_cast<ForStmt>(S)) {
      // Names the loop subtree assigns hold unknown values afterwards
      // regardless of whether the nest is rewritten.
      eraseAssignedConstants(Loop->body());
      Guards.Constants.erase(Loop->indexSym());
      Guards.KnownDims.erase(Loop->indexSym());

      // The nest cache only serves top-level nests (inner nests see a
      // recursion-dependent environment) and never runs under remarks or
      // a cost-decision log: a replayed outcome cannot re-emit this run's
      // source locations or CostDecision records.
      bool UseCache =
          NCache && Enclosing.empty() && !Opts.EmitRemarks && !Opts.CostLog;
      std::string CacheKey;
      std::optional<std::vector<StmtPtr>> Replacement;
      bool Cached = false;
      if (UseCache) {
        CacheKey = nestCacheKey(*Loop);
        if (std::optional<NestCache::Outcome> Hit = NCache->lookup(CacheKey)) {
          Cached = true;
          addStats(Stats, Hit->Delta);
          if (Hit->Replaced)
            Replacement = std::move(Hit->Stmts);
        }
      }
      if (!Cached) {
        VectorizeStats Before = Stats;
        Replacement = tryNest(*Loop);
        if (UseCache)
          NCache->insert(CacheKey, Replacement.has_value(),
                         Replacement ? &*Replacement : nullptr,
                         statsDelta(Before, Stats));
      }
      if (Replacement) {
        // Commit the rewrite — possibly zero statements, when the whole
        // nest was provably zero-trip and simply removed.
        size_t N = Replacement->size();
        if (!Enclosing.empty()) {
          // Keep enclosing statements' cached mention sets a superset
          // of reality: the new statements may mention new names.
          std::unordered_set<Symbol> NewNames;
          for (const StmtPtr &R : *Replacement) {
            const auto &M = Liveness.mentionSet(*R);
            NewNames.insert(M.begin(), M.end());
          }
          Liveness.augment(Enclosing, NewNames);
        } else {
          // Top-level splice: the old statement leaves the liveness
          // index before it is destroyed.
          Liveness.onTopRemove(*Body[I]);
        }
        Body.erase(Body.begin() + I);
        Body.insert(Body.begin() + I,
                    std::make_move_iterator(Replacement->begin()),
                    std::make_move_iterator(Replacement->end()));
        if (Enclosing.empty()) {
          for (size_t J = I; J != I + N; ++J)
            Liveness.onTopInsert(*Body[J]);
        } else {
          // A rewrite landed somewhere under this top-level statement:
          // its cached liveness verdicts no longer hold.
          Liveness.invalidateTop(*Enclosing.front());
        }
        // Resume scanning at the first statement after the replacement
        // (unsigned wraparound at I==0, N==0 is undone by the ++I).
        I += N;
        --I;
        continue;
      }
      // Keep the loop; try loops nested inside it independently. Within
      // the body this loop's index variable is a scalar, and facts
      // established inside the body are conditional on the loop running.
      std::optional<Dimensionality> Saved = Env.getShape(Loop->indexVar());
      Env.setShape(Loop->indexVar(), Dimensionality::scalar());
      CodegenGuards SavedGuards = Guards;
      Enclosing.push_back(Loop);
      processBody(Loop->body());
      Enclosing.pop_back();
      Guards = std::move(SavedGuards);
      if (Saved)
        Env.setShape(Loop->indexVar(), *Saved);
      else
        Env.erase(Loop->indexVar());
      continue;
    }
    if (auto *While = dyn_cast<WhileStmt>(S)) {
      eraseAssignedConstants(While->body());
      CodegenGuards SavedGuards = Guards;
      Enclosing.push_back(While);
      processBody(While->body());
      Enclosing.pop_back();
      Guards = std::move(SavedGuards);
    } else if (auto *If = dyn_cast<IfStmt>(S)) {
      for (IfStmt::Branch &B : If->branches()) {
        eraseAssignedConstants(B.Body);
        CodegenGuards SavedGuards = Guards;
        Enclosing.push_back(If);
        processBody(B.Body);
        Enclosing.pop_back();
        Guards = std::move(SavedGuards);
      }
    } else if (const auto *A = dyn_cast<AssignStmt>(S)) {
      recordAssignment(*A);
    }
  }
}

} // namespace

Program mvec::vectorizeProgram(const Program &P, const ShapeEnv &Env,
                               const PatternDatabase &DB,
                               const VectorizerOptions &Opts,
                               DiagnosticEngine &Diags,
                               VectorizeStats *Stats, NestCache *Cache) {
  VectorizeStats LocalStats;
  VectorizeStats &S = Stats ? *Stats : LocalStats;
  Program Result = P.cloneProgram();
  // Every node the rewrite creates belongs to the result program, so the
  // whole pass runs inside its arena.
  ArenaScope Scope(Result.Arena.get());
  VectorizerDriver Driver(Env, DB, Opts, Diags, S, Cache);
  Driver.run(Result);
  return Result;
}
