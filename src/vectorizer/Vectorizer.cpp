//===- Vectorizer.cpp - Top-level vectorization driver ----------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "vectorizer/Vectorizer.h"

#include "deps/DepAnalysis.h"
#include "deps/LoopNest.h"
#include "frontend/ASTUtils.h"
#include "vectorizer/Codegen.h"

#include <cmath>
#include <optional>

using namespace mvec;

namespace {

/// Collects every name assigned anywhere under \p Body (assignment
/// targets, including indexed-assignment bases, and loop index
/// variables) into \p Names.
void collectAssignedNames(const std::vector<StmtPtr> &Body,
                          std::set<std::string> &Names) {
  visitStmts(Body, [&](const Stmt &S) {
    if (const auto *A = dyn_cast<AssignStmt>(&S)) {
      if (const auto *Id = dyn_cast<IdentExpr>(A->lhs()))
        Names.insert(Id->name());
      else if (const auto *Ix = dyn_cast<IndexExpr>(A->lhs()))
        if (const auto *Base = dyn_cast<IdentExpr>(Ix->base()))
          Names.insert(Base->name());
    } else if (const auto *F = dyn_cast<ForStmt>(&S)) {
      Names.insert(F->indexVar());
    }
  });
}

/// True when the statement \p Target occurs in the subtree under \p Body.
bool containsStmt(const std::vector<StmtPtr> &Body, const Stmt *Target) {
  bool Found = false;
  visitStmts(Body, [&](const Stmt &S) {
    if (&S == Target)
      Found = true;
  });
  return Found;
}

/// True when some statement outside loop \p L's subtree may read \p V —
/// the value \p L's index variable holds after the loop finishes. A
/// sibling for-loop that itself iterates over \p V rebinds the name, so
/// reads in its body are not charged to \p L (its range expression is
/// evaluated before the rebinding and still counts).
bool readsIndexOutside(const std::vector<StmtPtr> &Body, const std::string &V,
                       const ForStmt *L) {
  for (const StmtPtr &SP : Body) {
    const Stmt *S = SP.get();
    if (S == static_cast<const Stmt *>(L))
      continue; // reads under L observe the loop's own binding
    switch (S->kind()) {
    case Stmt::Kind::Assign: {
      const auto *A = cast<AssignStmt>(S);
      if (mentionsIdentifier(*A->rhs(), V))
        return true;
      // LHS subscripts are reads; a plain identifier LHS is a pure write.
      if (!isa<IdentExpr>(A->lhs()) && mentionsIdentifier(*A->lhs(), V))
        return true;
      break;
    }
    case Stmt::Kind::Expr:
      if (mentionsIdentifier(*cast<ExprStmt>(S)->expr(), V))
        return true;
      break;
    case Stmt::Kind::For: {
      const auto *F = cast<ForStmt>(S);
      if (mentionsIdentifier(*F->range(), V))
        return true;
      if (F->indexVar() == V && !containsStmt(F->body(), L))
        break;
      if (readsIndexOutside(F->body(), V, L))
        return true;
      break;
    }
    case Stmt::Kind::While: {
      const auto *W = cast<WhileStmt>(S);
      if (mentionsIdentifier(*W->cond(), V) ||
          readsIndexOutside(W->body(), V, L))
        return true;
      break;
    }
    case Stmt::Kind::If: {
      const auto *I = cast<IfStmt>(S);
      for (const IfStmt::Branch &B : I->branches()) {
        if (B.Cond && mentionsIdentifier(*B.Cond, V))
          return true;
        if (readsIndexOutside(B.Body, V, L))
          return true;
      }
      break;
    }
    default:
      break;
    }
  }
  return false;
}

/// Row/column extents of \p E when they are statically known: literal-size
/// constructors (rand/zeros/ones/eye, reshape), elementwise builtins and
/// operators over operands with known extents, and scalars bound in
/// \p Constants. Used only to prove loop trip counts positive, so every
/// rule must be exact for programs the interpreter accepts; programs the
/// rules would misjudge (mismatched operand shapes, non-integer
/// constructor extents) error identically in original and transformed
/// form before the proof matters. Names in \p Assigned shadow builtins.
std::optional<std::pair<double, double>>
knownDimsOf(const Expr *E, const std::map<std::string, double> &Constants,
            const std::map<std::string, std::pair<double, double>> &Known,
            const std::set<std::string> &Assigned) {
  if (!E)
    return std::nullopt;
  auto Recurse = [&](const Expr *Sub) {
    return knownDimsOf(Sub, Constants, Known, Assigned);
  };
  if (isa<NumberExpr>(E))
    return std::make_pair(1.0, 1.0);
  if (const auto *Id = dyn_cast<IdentExpr>(E)) {
    auto It = Known.find(Id->name());
    if (It != Known.end())
      return It->second;
    if (Constants.count(Id->name()))
      return std::make_pair(1.0, 1.0);
    return std::nullopt;
  }
  if (const auto *Un = dyn_cast<UnaryExpr>(E))
    return Recurse(Un->operand());
  if (const auto *Tr = dyn_cast<TransposeExpr>(E)) {
    auto D = Recurse(Tr->operand());
    if (!D)
      return std::nullopt;
    return std::make_pair(D->second, D->first);
  }
  if (const auto *Bin = dyn_cast<BinaryExpr>(E)) {
    auto A = Recurse(Bin->lhs());
    auto B = Recurse(Bin->rhs());
    if (!A || !B)
      return std::nullopt;
    bool AScalar = A->first == 1 && A->second == 1;
    bool BScalar = B->first == 1 && B->second == 1;
    if (isPointwiseArithOp(Bin->op()) || isElementwiseRelOp(Bin->op())) {
      if (AScalar)
        return B;
      if (BScalar || *A == *B)
        return A;
      return std::nullopt;
    }
    switch (Bin->op()) {
    case BinaryOp::Mul:
      if (AScalar)
        return B;
      if (BScalar)
        return A;
      if (A->second == B->first)
        return std::make_pair(A->first, B->second);
      return std::nullopt;
    case BinaryOp::Div:
    case BinaryOp::Pow:
      // Only the scalar-divisor/exponent cases are elementwise-like;
      // matrix divide/power shapes are not modeled.
      if (BScalar)
        return A;
      return std::nullopt;
    default:
      return std::nullopt;
    }
  }
  if (const auto *Ix = dyn_cast<IndexExpr>(E)) {
    std::string Fn = Ix->baseName();
    if (Fn.empty() || Assigned.count(Fn))
      return std::nullopt;
    auto ConstArg = [&](unsigned I) -> std::optional<double> {
      double V;
      if (I < Ix->numArgs() && evaluateConstantWith(*Ix->arg(I), Constants, V) &&
          std::isfinite(V) && V >= 0 && V == std::floor(V))
        return V;
      return std::nullopt;
    };
    if (Fn == "rand" || Fn == "zeros" || Fn == "ones" || Fn == "eye") {
      if (Ix->numArgs() == 0)
        return std::make_pair(1.0, 1.0);
      if (Ix->numArgs() == 1) {
        auto N = ConstArg(0);
        if (N)
          return std::make_pair(*N, *N);
        return std::nullopt;
      }
      if (Ix->numArgs() == 2) {
        auto R = ConstArg(0);
        auto C = ConstArg(1);
        if (R && C)
          return std::make_pair(*R, *C);
      }
      return std::nullopt;
    }
    if (Fn == "reshape" && Ix->numArgs() == 3) {
      auto R = ConstArg(1);
      auto C = ConstArg(2);
      if (R && C)
        return std::make_pair(*R, *C);
      return std::nullopt;
    }
    // Elementwise single-argument builtins preserve extents.
    static const std::set<std::string> Elementwise = {
        "abs",  "sqrt",  "sin", "cos", "tan", "exp",
        "log",  "floor", "ceil", "round", "fix"};
    if (Elementwise.count(Fn) && Ix->numArgs() == 1)
      return Recurse(Ix->arg(0));
    if (Fn == "mod" && Ix->numArgs() == 2) {
      auto A = Recurse(Ix->arg(0));
      auto B = Recurse(Ix->arg(1));
      if (!A || !B)
        return std::nullopt;
      if (B->first == 1 && B->second == 1)
        return A;
      if ((A->first == 1 && A->second == 1) || *A == *B)
        return B;
      return std::nullopt;
    }
    return std::nullopt;
  }
  return std::nullopt;
}

class VectorizerDriver {
public:
  VectorizerDriver(const ShapeEnv &Env, const PatternDatabase &DB,
                   const VectorizerOptions &Opts, DiagnosticEngine &Diags,
                   VectorizeStats &Stats)
      : Env(Env), DB(DB), Opts(Opts), Diags(Diags), Stats(Stats) {}

  void run(Program &P) {
    TopBody = &P.Stmts;
    collectAssignedNames(P.Stmts, Guards.AssignedNames);
    processBody(P.Stmts);
  }

private:
  void processBody(std::vector<StmtPtr> &Body);

  /// Attempts to vectorize the nest rooted at \p Loop. Returns the
  /// replacement statements (an empty list when the nest was deleted as
  /// provably zero-trip), or nullopt when the loop should stay.
  std::optional<std::vector<StmtPtr>> tryNest(ForStmt &Loop);

  /// Updates the constant/known-extent facts for a straight-line
  /// assignment reaching this program point on every execution.
  void recordAssignment(const AssignStmt &A) {
    if (const auto *Id = dyn_cast<IdentExpr>(A.lhs())) {
      double V;
      if (evaluateConstantWith(*A.rhs(), Guards.Constants, V))
        Guards.Constants[Id->name()] = V;
      else
        Guards.Constants.erase(Id->name());
      auto Dims = knownDimsOf(A.rhs(), Guards.Constants, Guards.KnownDims,
                              Guards.AssignedNames);
      if (Dims)
        Guards.KnownDims[Id->name()] = *Dims;
      else
        Guards.KnownDims.erase(Id->name());
    } else if (const auto *Ix = dyn_cast<IndexExpr>(A.lhs())) {
      if (const auto *Base = dyn_cast<IdentExpr>(Ix->base())) {
        Guards.Constants.erase(Base->name());
        // An indexed write can grow the variable, so its recorded
        // extents are no longer trustworthy.
        Guards.KnownDims.erase(Base->name());
      }
    }
  }

  void eraseAssignedConstants(const std::vector<StmtPtr> &Body) {
    std::set<std::string> Assigned;
    collectAssignedNames(Body, Assigned);
    for (const std::string &Name : Assigned) {
      Guards.Constants.erase(Name);
      Guards.KnownDims.erase(Name);
    }
  }

  ShapeEnv Env; ///< extended with enclosing loop indices while recursing
  const PatternDatabase &DB;
  const VectorizerOptions &Opts;
  DiagnosticEngine &Diags;
  VectorizeStats &Stats;
  /// Root statement list of the program being rewritten; liveness of
  /// loop index variables is judged against this whole tree.
  const std::vector<StmtPtr> *TopBody = nullptr;
  /// Facts codegen needs to stay sound when trip counts may be zero.
  CodegenGuards Guards;
};

std::optional<std::vector<StmtPtr>> VectorizerDriver::tryNest(ForStmt &Loop) {
  ++Stats.LoopNestsConsidered;

  // Work on a clone: normalization rewrites the tree, and we only commit
  // when something was vectorized.
  StmtPtr CloneStmt = Loop.clone();
  auto *Clone = cast<ForStmt>(CloneStmt.get());
  if (Opts.NormalizeLoops)
    normalizeLoopIndices(*Clone);

  std::string Reason;
  auto Nest = buildLoopNest(*Clone, Reason);
  if (!Nest) {
    ++Stats.IneligibleNests;
    if (Opts.EmitRemarks)
      Diags.remark(Loop.loc(), "loop not a vectorization candidate: " +
                                   Reason);
    return std::nullopt;
  }

  // rand() draws from sequential generator state: hoisting an invariant
  // call changes how many draws happen, and reordering statements
  // changes which values land where. Any rewrite of a nest that draws
  // random numbers is observable, so refuse the whole nest.
  bool DrawsRandom = false;
  auto CheckExprForRand = [&DrawsRandom](const Expr &E) {
    if (mentionsIdentifier(E, "rand"))
      DrawsRandom = true;
  };
  visitStmts(Loop.body(), [&](const Stmt &S) {
    if (const auto *A = dyn_cast<AssignStmt>(&S)) {
      CheckExprForRand(*A->rhs());
      CheckExprForRand(*A->lhs());
    } else if (const auto *E = dyn_cast<ExprStmt>(&S)) {
      CheckExprForRand(*E->expr());
    } else if (const auto *F = dyn_cast<ForStmt>(&S)) {
      CheckExprForRand(*F->range());
    }
  });
  if (DrawsRandom) {
    ++Stats.IneligibleNests;
    if (Opts.EmitRemarks)
      Diags.remark(Loop.loc(), "loop not a vectorization candidate: body "
                               "draws random numbers (order-sensitive)");
    return std::nullopt;
  }

  // The interpreter leaves an index variable holding its final value
  // after the loop; neither the vector rewrite nor index normalization
  // reproduces that, so any possible later read of an index variable
  // makes the nest ineligible.
  std::vector<const ForStmt *> NestLoops;
  NestLoops.push_back(&Loop);
  visitStmts(Loop.body(), [&](const Stmt &S) {
    if (const auto *F = dyn_cast<ForStmt>(&S))
      NestLoops.push_back(F);
  });
  for (const ForStmt *F : NestLoops) {
    if (TopBody && readsIndexOutside(*TopBody, F->indexVar(), F)) {
      ++Stats.IneligibleNests;
      if (Opts.EmitRemarks)
        Diags.remark(Loop.loc(),
                     "loop not a vectorization candidate: index variable '" +
                         F->indexVar() + "' may be read after the loop");
      return std::nullopt;
    }
  }

  DepGraph Graph = buildDepGraph(*Nest, Env);
  CodegenResult Result = runCodegen(*Nest, Graph, Env, DB, Opts, Diags, Guards);

  Stats.StmtsVectorized += Result.VectorizedStmts;
  Stats.StmtsSequential += Result.SequentialStmts;
  if (Result.VectorizedStmts != 0)
    Stats.SequentialLoopsEmitted += Result.SequentialLoops;
  if (Result.VectorizedStmts == 0)
    return std::nullopt; // nothing improved: keep the original loop untouched

  ++Stats.LoopNestsImproved;
  return std::move(Result.Stmts);
}

void VectorizerDriver::processBody(std::vector<StmtPtr> &Body) {
  // Rewrites in place (splicing replacements at the loop's position) so
  // the whole program tree stays walkable mid-pass: the index-liveness
  // check inspects statements far from the nest being considered.
  for (size_t I = 0; I < Body.size(); ++I) {
    Stmt *S = Body[I].get();
    if (auto *Loop = dyn_cast<ForStmt>(S)) {
      // Names the loop subtree assigns hold unknown values afterwards
      // regardless of whether the nest is rewritten.
      eraseAssignedConstants(Loop->body());
      Guards.Constants.erase(Loop->indexVar());
      Guards.KnownDims.erase(Loop->indexVar());

      std::optional<std::vector<StmtPtr>> Replacement = tryNest(*Loop);
      if (Replacement) {
        // Commit the rewrite — possibly zero statements, when the whole
        // nest was provably zero-trip and simply removed.
        size_t N = Replacement->size();
        Body.erase(Body.begin() + I);
        Body.insert(Body.begin() + I,
                    std::make_move_iterator(Replacement->begin()),
                    std::make_move_iterator(Replacement->end()));
        // Resume scanning at the first statement after the replacement
        // (unsigned wraparound at I==0, N==0 is undone by the ++I).
        I += N;
        --I;
        continue;
      }
      // Keep the loop; try loops nested inside it independently. Within
      // the body this loop's index variable is a scalar, and facts
      // established inside the body are conditional on the loop running.
      std::optional<Dimensionality> Saved = Env.getShape(Loop->indexVar());
      Env.setShape(Loop->indexVar(), Dimensionality::scalar());
      CodegenGuards SavedGuards = Guards;
      processBody(Loop->body());
      Guards = std::move(SavedGuards);
      if (Saved)
        Env.setShape(Loop->indexVar(), *Saved);
      else
        Env.erase(Loop->indexVar());
      continue;
    }
    if (auto *While = dyn_cast<WhileStmt>(S)) {
      eraseAssignedConstants(While->body());
      CodegenGuards SavedGuards = Guards;
      processBody(While->body());
      Guards = std::move(SavedGuards);
    } else if (auto *If = dyn_cast<IfStmt>(S)) {
      for (IfStmt::Branch &B : If->branches()) {
        eraseAssignedConstants(B.Body);
        CodegenGuards SavedGuards = Guards;
        processBody(B.Body);
        Guards = std::move(SavedGuards);
      }
    } else if (const auto *A = dyn_cast<AssignStmt>(S)) {
      recordAssignment(*A);
    }
  }
}

} // namespace

Program mvec::vectorizeProgram(const Program &P, const ShapeEnv &Env,
                               const PatternDatabase &DB,
                               const VectorizerOptions &Opts,
                               DiagnosticEngine &Diags,
                               VectorizeStats *Stats) {
  VectorizeStats LocalStats;
  VectorizeStats &S = Stats ? *Stats : LocalStats;
  Program Result = P.cloneProgram();
  VectorizerDriver Driver(Env, DB, Opts, Diags, S);
  Driver.run(Result);
  return Result;
}
