//===- Vectorizer.cpp - Top-level vectorization driver ----------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "vectorizer/Vectorizer.h"

#include "deps/DepAnalysis.h"
#include "deps/LoopNest.h"
#include "vectorizer/Codegen.h"

using namespace mvec;

namespace {

class VectorizerDriver {
public:
  VectorizerDriver(const ShapeEnv &Env, const PatternDatabase &DB,
                   const VectorizerOptions &Opts, DiagnosticEngine &Diags,
                   VectorizeStats &Stats)
      : Env(Env), DB(DB), Opts(Opts), Diags(Diags), Stats(Stats) {}

  void processBody(std::vector<StmtPtr> &Body);

private:
  /// Attempts to vectorize the nest rooted at \p Loop. Returns the
  /// replacement statements, or an empty vector when the loop should stay.
  std::vector<StmtPtr> tryNest(ForStmt &Loop);

  ShapeEnv Env; ///< extended with enclosing loop indices while recursing
  const PatternDatabase &DB;
  const VectorizerOptions &Opts;
  DiagnosticEngine &Diags;
  VectorizeStats &Stats;
};

std::vector<StmtPtr> VectorizerDriver::tryNest(ForStmt &Loop) {
  ++Stats.LoopNestsConsidered;

  // Work on a clone: normalization rewrites the tree, and we only commit
  // when something was vectorized.
  StmtPtr CloneStmt = Loop.clone();
  auto *Clone = cast<ForStmt>(CloneStmt.get());
  if (Opts.NormalizeLoops)
    normalizeLoopIndices(*Clone);

  std::string Reason;
  auto Nest = buildLoopNest(*Clone, Reason);
  if (!Nest) {
    ++Stats.IneligibleNests;
    if (Opts.EmitRemarks)
      Diags.remark(Loop.loc(), "loop not a vectorization candidate: " +
                                   Reason);
    return {};
  }

  DepGraph Graph = buildDepGraph(*Nest, Env);
  CodegenResult Result = runCodegen(*Nest, Graph, Env, DB, Opts, Diags);

  Stats.StmtsVectorized += Result.VectorizedStmts;
  Stats.StmtsSequential += Result.SequentialStmts;
  if (Result.VectorizedStmts != 0)
    Stats.SequentialLoopsEmitted += Result.SequentialLoops;
  if (Result.VectorizedStmts == 0)
    return {}; // nothing improved: keep the original loop untouched

  ++Stats.LoopNestsImproved;
  return std::move(Result.Stmts);
}

void VectorizerDriver::processBody(std::vector<StmtPtr> &Body) {
  std::vector<StmtPtr> NewBody;
  NewBody.reserve(Body.size());
  for (StmtPtr &S : Body) {
    if (auto *Loop = dyn_cast<ForStmt>(S.get())) {
      std::vector<StmtPtr> Replacement = tryNest(*Loop);
      if (!Replacement.empty()) {
        for (StmtPtr &R : Replacement)
          NewBody.push_back(std::move(R));
        continue;
      }
      // Keep the loop; try loops nested inside it independently. Within
      // the body this loop's index variable is a scalar.
      std::optional<Dimensionality> Saved = Env.getShape(Loop->indexVar());
      Env.setShape(Loop->indexVar(), Dimensionality::scalar());
      processBody(Loop->body());
      if (Saved)
        Env.setShape(Loop->indexVar(), *Saved);
      else
        Env.erase(Loop->indexVar());
      NewBody.push_back(std::move(S));
      continue;
    }
    if (auto *While = dyn_cast<WhileStmt>(S.get()))
      processBody(While->body());
    else if (auto *If = dyn_cast<IfStmt>(S.get()))
      for (IfStmt::Branch &B : If->branches())
        processBody(B.Body);
    NewBody.push_back(std::move(S));
  }
  Body = std::move(NewBody);
}

} // namespace

Program mvec::vectorizeProgram(const Program &P, const ShapeEnv &Env,
                               const PatternDatabase &DB,
                               const VectorizerOptions &Opts,
                               DiagnosticEngine &Diags,
                               VectorizeStats *Stats) {
  VectorizeStats LocalStats;
  VectorizeStats &S = Stats ? *Stats : LocalStats;
  Program Result = P.cloneProgram();
  VectorizerDriver Driver(Env, DB, Opts, Diags, S);
  Driver.processBody(Result.Stmts);
  return Result;
}
