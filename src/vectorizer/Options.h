//===- Options.h - Vectorizer configuration ---------------------*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Feature toggles for the vectorizer. Every paper mechanism can be
/// disabled independently, which the ablation benchmarks use to quantify
/// each mechanism's contribution.
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_VECTORIZER_OPTIONS_H
#define MVEC_VECTORIZER_OPTIONS_H

#include <vector>

namespace mvec {

namespace cost {
class CostModel;
struct CostDecision;
} // namespace cost

struct VectorizerOptions {
  /// Insert transposes to reconcile row/column mismatches (Sec. 2.2).
  bool EnableTransposes = true;
  /// Use the extensible pattern database (Sec. 3).
  bool EnablePatterns = true;
  /// Vectorize additive-reduction statements via Gamma and native matrix
  /// multiplication (Sec. 3.1).
  bool EnableReductions = true;
  /// Re-associate multiplication chains until dimension checking succeeds
  /// (Sec. 3.1, footnote 2).
  bool EnableReassociation = true;
  /// Normalize loop index variables before analysis (Sec. 4).
  bool NormalizeLoops = true;
  /// Distribute transposes inward in generated code ((A+B')' -> A'+B) —
  /// the follow-up optimization the paper mentions but does not
  /// investigate. Off by default to match the paper's generated forms.
  bool DistributeTransposes = false;
  /// Emit optimization remarks explaining decisions.
  bool EmitRemarks = false;
  /// Profitability model (null = vectorize whenever legal, the paper's
  /// behavior). When set, codegen estimates vectorized-vs-loop cost per
  /// nest statement and keeps the loop when the loop is cheaper; the
  /// mul-chain reassociation DP additionally ranks variants by modeled
  /// kernel cost. The pointee must outlive every vectorization run using
  /// these options; its fingerprint is mixed into optionsFingerprint so
  /// all cache tiers stay calibration-consistent.
  const cost::CostModel *Cost = nullptr;
  /// When non-null, codegen appends one CostDecision per nest statement
  /// (mvec_tool --explain-cost). Forces a NestCache bypass — decision
  /// logs, like remarks, are per-run diagnostics a cache hit would
  /// silently drop.
  std::vector<cost::CostDecision> *CostLog = nullptr;
};

} // namespace mvec

#endif // MVEC_VECTORIZER_OPTIONS_H
