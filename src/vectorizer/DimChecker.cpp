//===- DimChecker.cpp - Vectorized dimensionality checking ------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "vectorizer/DimChecker.h"

#include "cost/CostModel.h"
#include "frontend/ASTUtils.h"
#include "interp/Builtins.h"

#include <algorithm>
#include <bit>
#include <cmath>

using namespace mvec;

namespace {

bool containsStar(const Dimensionality &D) {
  for (DimSymbol S : D.symbols())
    if (S.isStar())
      return true;
  return false;
}

/// First position of range \p Loop in \p D, or -1.
int rangePosition(const Dimensionality &D, LoopId Loop) {
  for (size_t I = 0; I != D.size(); ++I)
    if (D[I].isRange() && D[I].loop() == Loop)
      return static_cast<int>(I);
  return -1;
}

/// A range symbol occurring more than once (the diagonal-access case).
std::optional<LoopId> duplicatedRange(const Dimensionality &D) {
  for (size_t I = 0; I != D.size(); ++I) {
    if (!D[I].isRange())
      continue;
    for (size_t J = I + 1; J != D.size(); ++J)
      if (D[J] == D[I])
        return D[I].loop();
  }
  return std::nullopt;
}

std::string dimsMismatch(const Dimensionality &A, const Dimensionality &B) {
  return A.str() + " vs " + B.str();
}

} // namespace

DimChecker::DimChecker(const LoopNest &Nest, unsigned Level, unsigned MaxLevel,
                       const ShapeEnv &Env, const PatternDatabase &DB,
                       const VectorizerOptions &Opts, DimCheckMemo *Memo)
    : Nest(Nest), Level(Level), MaxLevel(MaxLevel), Env(Env), DB(DB),
      Opts(Opts), Memo(Memo) {}

uint32_t DimCheckMemo::levelsMask(const Expr &E) {
  auto It = Masks.find(&E);
  if (It != Masks.end())
    return It->second;
  uint32_t M = 0;
  switch (E.kind()) {
  case Expr::Kind::Number:
  case Expr::Kind::String:
  case Expr::Kind::MagicColon:
  case Expr::Kind::EndKeyword:
    break;
  case Expr::Kind::Ident: {
    Symbol S = cast<IdentExpr>(E).sym();
    for (size_t I = 0; I != LevelSyms.size() && I < 32; ++I)
      if (LevelSyms[I] == S) {
        M = 1u << I;
        break;
      }
    break;
  }
  case Expr::Kind::Range: {
    const auto &R = cast<RangeExpr>(E);
    M = levelsMask(*R.start()) | levelsMask(*R.stop());
    if (R.step())
      M |= levelsMask(*R.step());
    break;
  }
  case Expr::Kind::Unary:
    M = levelsMask(*cast<UnaryExpr>(E).operand());
    break;
  case Expr::Kind::Binary: {
    const auto &B = cast<BinaryExpr>(E);
    M = levelsMask(*B.lhs()) | levelsMask(*B.rhs());
    break;
  }
  case Expr::Kind::Transpose:
    M = levelsMask(*cast<TransposeExpr>(E).operand());
    break;
  case Expr::Kind::Index: {
    const auto &I = cast<IndexExpr>(E);
    M = levelsMask(*I.base());
    for (unsigned A = 0, N = I.numArgs(); A != N; ++A)
      M |= levelsMask(*I.arg(A));
    break;
  }
  case Expr::Kind::Matrix:
    for (const auto &Row : cast<MatrixExpr>(E).rows())
      for (const ExprPtr &Elt : Row)
        M |= levelsMask(*Elt);
    break;
  }
  Masks.emplace(&E, M);
  return M;
}

unsigned DimCheckMemo::suffixKey(const Expr &E, unsigned Level) {
  uint32_t M = levelsMask(E);
  if (Level > 1)
    M &= Level > 32 ? 0u : ~((1u << (Level - 1)) - 1);
  if (!M)
    return 0;
  return static_cast<unsigned>(std::countr_zero(M)) + 1;
}

std::optional<LoopId> DimChecker::vectorizedLoop(Symbol Name) const {
  for (unsigned L = Level; L <= MaxLevel && L <= Nest.Loops.size(); ++L)
    if (Nest.Loops[L - 1].IndexSym == Name)
      return Nest.Loops[L - 1].Id;
  return std::nullopt;
}

bool DimChecker::isSequentialLoopVar(Symbol Name) const {
  for (unsigned L = 1; L <= Nest.Loops.size(); ++L) {
    if (L >= Level && L <= MaxLevel)
      continue;
    if (Nest.Loops[L - 1].IndexSym == Name)
      return true;
  }
  return false;
}

PatternContext
DimChecker::patternContext(const PatternBindings &Bindings) const {
  PatternContext Ctx;
  Ctx.Nest = &Nest;
  Ctx.Bindings = Bindings;
  return Ctx;
}

bool DimChecker::rhoConsistent(const CheckedExpr &L,
                               const CheckedExpr &R) const {
  for (LoopId Loop : L.Rho)
    if (R.Dims.containsRange(Loop))
      return false;
  for (LoopId Loop : R.Rho)
    if (L.Dims.containsRange(Loop))
      return false;
  return true;
}

CheckedExpr DimChecker::gammaReduce(CheckedExpr E, LoopId Loop) {
  int Pos = rangePosition(E.Dims, Loop);
  if (Pos >= 0) {
    std::vector<ExprPtr> Args;
    Args.push_back(std::move(E.E));
    Args.push_back(makeNumber(Pos + 1));
    E.E = makeCall("sum", std::move(Args));
    E.Dims.set(Pos, DimSymbol::one());
  } else {
    const LoopHeader *H = headerOf(Loop);
    assert(H && "reducing an unknown loop");
    E.E = makeBinary(BinaryOp::Mul, H->makeTripCountExpr(), std::move(E.E));
  }
  E.Rho.insert(Loop);
  return E;
}

//===----------------------------------------------------------------------===//
// Statement-level checking
//===----------------------------------------------------------------------===//

const Expr *DimChecker::matchAdditiveReduction(const AssignStmt &S,
                                               bool &IsSub) {
  const auto *B = dyn_cast<BinaryExpr>(S.rhs());
  if (!B)
    return nullptr;
  if (B->op() == BinaryOp::Add) {
    IsSub = false;
    if (exprEquals(*S.lhs(), *B->lhs()))
      return B->rhs();
    if (exprEquals(*S.lhs(), *B->rhs()))
      return B->lhs();
    return nullptr;
  }
  if (B->op() == BinaryOp::Sub) {
    IsSub = true;
    if (exprEquals(*S.lhs(), *B->lhs()))
      return B->rhs();
  }
  return nullptr;
}

std::optional<CheckedStmt>
DimChecker::checkStatement(const AssignStmt &S,
                           const std::set<LoopId> &RV) {
  Failure.clear();
  ReductionLoops.clear();

  if (RV.empty()) {
    auto R = check(*S.rhs());
    if (!R)
      return std::nullopt;
    auto L = checkLValue(*S.lhs());
    if (!L)
      return std::nullopt;
    if (!compatible(L->Dims, R->Dims) && !R->Dims.isScalarShape()) {
      if (Opts.EnableTransposes &&
          compatible(L->Dims, R->Dims.reversed())) {
        R->E = makeTranspose(std::move(R->E));
      } else {
        fail("assignment dimensionalities are incompatible: " +
             dimsMismatch(L->Dims, R->Dims));
        return std::nullopt;
      }
    }
    return CheckedStmt{std::move(L->E), std::move(R->E)};
  }

  // --- Additive reduction: A(J) = A(J) +/- E (Sec. 3.1).
  bool IsSub = false;
  const Expr *E = matchAdditiveReduction(S, IsSub);
  if (!E) {
    fail("statement is not an additive reduction");
    return std::nullopt;
  }
  auto L = checkLValue(*S.lhs());
  if (!L)
    return std::nullopt;

  ReductionLoops = RV;
  auto CE = check(*E);
  ReductionLoops.clear();
  if (!CE)
    return std::nullopt;

  // Apply Gamma to any reduction variable not yet consumed, outermost
  // first.
  for (const LoopHeader &H : Nest.Loops)
    if (RV.count(H.Id) && !CE->Rho.count(H.Id))
      *CE = gammaReduce(std::move(*CE), H.Id);
  if (CE->Rho != RV) {
    fail("reduced-variable set mismatch in reduction statement");
    return std::nullopt;
  }

  if (!compatible(L->Dims, CE->Dims) && !CE->Dims.isScalarShape()) {
    if (Opts.EnableTransposes && compatible(L->Dims, CE->Dims.reversed())) {
      CE->E = makeTranspose(std::move(CE->E));
    } else {
      fail("reduction dimensionalities are incompatible: " +
           dimsMismatch(L->Dims, CE->Dims));
      return std::nullopt;
    }
  }

  ExprPtr AccumRead = L->E->clone();
  ExprPtr NewRHS =
      makeBinary(IsSub ? BinaryOp::Sub : BinaryOp::Add, std::move(AccumRead),
                 std::move(CE->E));
  return CheckedStmt{std::move(L->E), std::move(NewRHS)};
}

std::optional<CheckedExpr> DimChecker::checkLValue(const Expr &E) {
  if (const auto *Ident = dyn_cast<IdentExpr>(&E)) {
    auto Shape = Env.getShape(Ident->name());
    if (!Shape)
      return fail("unknown shape for assignment target '" + Ident->name() +
                  "'");
    CheckedExpr C;
    C.E = E.clone();
    C.Dims = *Shape;
    return C;
  }
  if (const auto *Index = dyn_cast<IndexExpr>(&E))
    return checkIndex(*Index);
  return fail("unsupported assignment target");
}

std::optional<CheckedExpr> DimChecker::checkExpr(const Expr &E) {
  Failure.clear();
  return check(E);
}

//===----------------------------------------------------------------------===//
// Expression checking (Table 1 rules)
//===----------------------------------------------------------------------===//

std::optional<CheckedExpr> DimChecker::check(const Expr &E) {
  // Every recursive step funnels through here, so one counter bounds the
  // whole traversal (including the memoized fast path, whose clone() of a
  // cached subtree still recurses over the result).
  if (Depth >= MaxCheckDepth)
    return fail("expression nesting exceeds the vectorizer depth limit");
  ++Depth;
  struct DepthGuard {
    unsigned &D;
    ~DepthGuard() { --D; }
  } Guard{Depth};

  // Reduction checks thread gamma/rho state through the recursion; their
  // results are not a function of (node, level window) alone.
  if (!Memo || !ReductionLoops.empty())
    return checkImpl(E);

  unsigned Key = Memo->suffixKey(E, Level);
  auto It = Memo->Cache.find({&E, Key});
  if (It != Memo->Cache.end()) {
    const DimCheckMemo::Entry &Ent = It->second;
    if (!Ent.FailureDelta.empty())
      fail(Ent.FailureDelta);
    if (!Ent.Result)
      return std::nullopt;
    return Ent.Result->clone();
  }

  // Compute against a clean failure slot so the entry captures exactly the
  // diagnostics this subtree produces; fail()'s first-wins rule is then
  // reapplied against the caller's saved state.
  std::string Saved = std::move(Failure);
  Failure.clear();
  std::optional<CheckedExpr> R = checkImpl(E);
  DimCheckMemo::Entry Ent;
  Ent.FailureDelta = Failure;
  if (R)
    Ent.Result = R->clone();
  Memo->Cache.emplace(std::make_pair(&E, Key), std::move(Ent));
  if (!Saved.empty())
    Failure = std::move(Saved);
  return R;
}

std::optional<CheckedExpr> DimChecker::checkImpl(const Expr &E) {
  switch (E.kind()) {
  case Expr::Kind::Number: {
    CheckedExpr C;
    C.E = E.clone();
    C.Dims = Dimensionality::scalar();
    return C;
  }
  case Expr::Kind::String:
    return fail("string literals are not vectorizable");
  case Expr::Kind::Ident: {
    static const Symbol PiSym = internSymbol("pi");
    Symbol Name = cast<IdentExpr>(E).sym();
    CheckedExpr C;
    C.E = E.clone();
    if (auto Loop = vectorizedLoop(Name)) {
      C.Dims = Dimensionality{DimSymbol::one(), DimSymbol::range(*Loop)};
      return C;
    }
    if (isSequentialLoopVar(Name) || Name == PiSym) {
      C.Dims = Dimensionality::scalar();
      return C;
    }
    if (auto Shape = Env.getShape(Name.str())) {
      C.Dims = *Shape;
      return C;
    }
    return fail("unknown shape for variable '" + Name.str() + "'");
  }
  case Expr::Kind::MagicColon:
    return fail("':' outside of a subscript");
  case Expr::Kind::EndKeyword: {
    CheckedExpr C;
    C.E = E.clone();
    C.Dims = Dimensionality::scalar();
    return C;
  }
  case Expr::Kind::Range: {
    const auto &R = cast<RangeExpr>(E);
    auto Start = check(*R.start());
    if (!Start)
      return std::nullopt;
    std::optional<CheckedExpr> Step;
    if (R.step()) {
      Step = check(*R.step());
      if (!Step)
        return std::nullopt;
    }
    auto Stop = check(*R.stop());
    if (!Stop)
      return std::nullopt;
    if (!Start->Dims.isScalarShape() || !Stop->Dims.isScalarShape() ||
        (Step && !Step->Dims.isScalarShape()))
      return fail("range endpoints must stay scalar under vectorization");
    CheckedExpr C;
    C.E = makeRange(std::move(Start->E),
                    Step ? std::move(Step->E) : nullptr, std::move(Stop->E));
    C.Dims = Dimensionality::rowVector();
    return C;
  }
  case Expr::Kind::Unary: {
    const auto &U = cast<UnaryExpr>(E);
    auto Operand = check(*U.operand());
    if (!Operand)
      return std::nullopt;
    CheckedExpr C;
    C.E = makeUnary(U.op(), std::move(Operand->E));
    C.Dims = Operand->Dims;
    C.Rho = Operand->Rho;
    return C;
  }
  case Expr::Kind::Binary:
    return checkBinary(cast<BinaryExpr>(E));
  case Expr::Kind::Transpose: {
    auto Operand = check(*cast<TransposeExpr>(E).operand());
    if (!Operand)
      return std::nullopt;
    CheckedExpr C;
    C.E = makeTranspose(std::move(Operand->E));
    C.Dims = Operand->Dims.reversed();
    C.Rho = Operand->Rho;
    return C;
  }
  case Expr::Kind::Index:
    return checkIndex(cast<IndexExpr>(E));
  case Expr::Kind::Matrix:
    return fail("matrix literals are not vectorizable");
  }
  return fail("unsupported expression");
}

std::optional<CheckedExpr> DimChecker::checkBinary(const BinaryExpr &E) {
  BinaryOp Op = E.op();

  if (Op == BinaryOp::AndAnd || Op == BinaryOp::OrOr) {
    auto L = check(*E.lhs());
    auto R = check(*E.rhs());
    if (!L || !R)
      return std::nullopt;
    if (!L->Dims.isScalarShape() || !R->Dims.isScalarShape())
      return fail("short-circuit operators require scalar operands");
    CheckedExpr C;
    C.E = makeBinary(Op, std::move(L->E), std::move(R->E));
    C.Dims = Dimensionality::scalar();
    return C;
  }

  if (Op == BinaryOp::Mul)
    return checkMulChain(E);

  auto L = check(*E.lhs());
  if (!L)
    return std::nullopt;
  auto R = check(*E.rhs());
  if (!R)
    return std::nullopt;

  if (Op == BinaryOp::Add || Op == BinaryOp::Sub) {
    // Synchronize reduced-variable sets with Gamma (Sec. 3.1).
    for (LoopId Loop : std::set<LoopId>(R->Rho))
      if (!L->Rho.count(Loop))
        *L = gammaReduce(std::move(*L), Loop);
    for (LoopId Loop : std::set<LoopId>(L->Rho))
      if (!R->Rho.count(Loop))
        *R = gammaReduce(std::move(*R), Loop);
    if (ReductionLoops.empty())
      return combinePointwise(Op, std::move(*L), std::move(*R));

    // In a reduction context, Gamma is applied selectively wherever it
    // makes operands consistent (Sec. 3.1): when the sides carry
    // different reduction ranges (v(i) + w(j) under reduction of both i
    // and j), reduce those ranges out of both sides and retry.
    auto First = combinePointwise(Op, L->clone(), R->clone());
    if (First)
      return First;
    Failure.clear();
    for (const LoopHeader &H : Nest.Loops) {
      if (!ReductionLoops.count(H.Id))
        continue;
      bool InL = L->Dims.containsRange(H.Id);
      bool InR = R->Dims.containsRange(H.Id);
      if (!InL && !InR)
        continue;
      if (!L->Rho.count(H.Id))
        *L = gammaReduce(std::move(*L), H.Id);
      if (!R->Rho.count(H.Id))
        *R = gammaReduce(std::move(*R), H.Id);
    }
    return combinePointwise(Op, std::move(*L), std::move(*R));
  }

  if (Op == BinaryOp::Div) {
    if (!rhoConsistent(*L, *R))
      return fail("reduced variables appear in the other '/' operand");
    if (R->Dims.isScalarShape()) {
      CheckedExpr C;
      C.Dims = L->Dims;
      C.Rho = L->Rho;
      for (LoopId Loop : R->Rho)
        C.Rho.insert(Loop);
      C.E = makeBinary(Op, std::move(L->E), std::move(R->E));
      return C;
    }
    if (!containsStar(L->Dims) && !containsStar(R->Dims))
      return combinePointwise(BinaryOp::DotDiv, std::move(*L),
                              std::move(*R));
    return fail("matrix division is not vectorizable");
  }

  if (Op == BinaryOp::Pow) {
    if (L->Dims.isScalarShape() && R->Dims.isScalarShape()) {
      CheckedExpr C;
      C.Dims = Dimensionality::scalar();
      C.E = makeBinary(Op, std::move(L->E), std::move(R->E));
      return C;
    }
    if (!containsStar(L->Dims) && !containsStar(R->Dims))
      return combinePointwise(BinaryOp::DotPow, std::move(*L),
                              std::move(*R));
    return fail("matrix power is not vectorizable");
  }

  // Pointwise arithmetic, comparisons and elementwise logic.
  if (!rhoConsistent(*L, *R))
    return fail("reduced variables appear in the other operand");
  return combinePointwise(Op, std::move(*L), std::move(*R));
}

std::optional<CheckedExpr> DimChecker::combinePointwise(BinaryOp Op,
                                                        CheckedExpr L,
                                                        CheckedExpr R) {
  if (!rhoConsistent(L, R))
    return fail("reduced variables appear in the other operand");
  std::set<LoopId> Rho = L.Rho;
  Rho.insert(R.Rho.begin(), R.Rho.end());

  auto Finish = [&Rho](ExprPtr E, Dimensionality Dims) {
    CheckedExpr C;
    C.E = std::move(E);
    C.Dims = std::move(Dims);
    C.Rho = std::move(Rho);
    return C;
  };

  // Scalar operands are compatible with anything (Sec. 2.1 rules 2/3).
  if (L.Dims.isScalarShape())
    return Finish(makeBinary(Op, std::move(L.E), std::move(R.E)), R.Dims);
  if (R.Dims.isScalarShape())
    return Finish(makeBinary(Op, std::move(L.E), std::move(R.E)), L.Dims);

  if (compatible(L.Dims, R.Dims))
    return Finish(makeBinary(Op, std::move(L.E), std::move(R.E)), L.Dims);

  if (Opts.EnableTransposes) {
    if (compatible(L.Dims, R.Dims.reversed()))
      return Finish(makeBinary(Op, std::move(L.E),
                               makeTranspose(std::move(R.E))),
                    L.Dims);
    if (compatible(L.Dims.reversed(), R.Dims))
      return Finish(makeBinary(Op, makeTranspose(std::move(L.E)),
                               std::move(R.E)),
                    R.Dims);
  }

  if (Opts.EnablePatterns) {
    const bool TransposeChoices[2] = {false, true};
    for (bool TL : TransposeChoices) {
      for (bool TR : TransposeChoices) {
        if ((TL || TR) && !Opts.EnableTransposes)
          continue;
        Dimensionality DL = TL ? L.Dims.reversed() : L.Dims;
        Dimensionality DR = TR ? R.Dims.reversed() : R.Dims;
        for (const BinaryMatch &Match : DB.matchBinaryAll(Op, DL, DR)) {
          ExprPtr EL = TL ? makeTranspose(L.E->clone()) : L.E->clone();
          ExprPtr ER = TR ? makeTranspose(R.E->clone()) : R.E->clone();
          ExprPtr T = Match.Pattern->Transform(
              Op, std::move(EL), std::move(ER),
              patternContext(Match.Bindings));
          if (!T)
            continue;
          return Finish(std::move(T), Match.OutDims);
        }
      }
    }
  }

  return fail("incompatible pointwise operands: " +
              dimsMismatch(L.Dims, R.Dims));
}

double DimChecker::dimExtent(DimSymbol D) const {
  double Assumed = Opts.Cost ? Opts.Cost->assumedTrip() : 64.0;
  if (D.isOne())
    return 1.0;
  if (D.isRange()) {
    if (const LoopHeader *H = headerOf(D.loop())) {
      double Start, Stop, Step = 1.0;
      bool StepKnown = !H->Step || evaluateConstant(*H->Step, Step);
      if (H->StepConst)
        Step = *H->StepConst, StepKnown = true;
      if (H->Start && H->Stop && StepKnown && Step != 0 &&
          evaluateConstant(*H->Start, Start) &&
          evaluateConstant(*H->Stop, Stop)) {
        double Trips = std::floor((Stop - Start) / Step) + 1;
        if (Trips > 0)
          return Trips;
      }
    }
  }
  return Assumed; // Star or symbolic bounds: "assume large".
}

double DimChecker::dimsElems(const Dimensionality &D) const {
  double Elems = 1.0;
  for (DimSymbol S : D.symbols())
    Elems *= dimExtent(S);
  return Elems;
}

std::optional<CheckedExpr> DimChecker::combineMul(const CheckedExpr &L,
                                                  const CheckedExpr &R) {
  if (!rhoConsistent(L, R))
    return std::nullopt;
  std::set<LoopId> Rho = L.Rho;
  Rho.insert(R.Rho.begin(), R.Rho.end());

  // Each legal combination carries the modeled cost of its kernels so
  // checkMulChain can rank associative groupings; KernelNs is this
  // combination's own contribution on top of the operands'.
  double BaseNs = L.CostNs + R.CostNs;
  const cost::CostProfile &CP =
      (Opts.Cost ? *Opts.Cost : cost::builtinCostModel()).profile();
  auto Result = [&](ExprPtr E, Dimensionality Dims, double KernelNs,
                    std::optional<LoopId> Reduced = std::nullopt) {
    CheckedExpr C;
    C.E = std::move(E);
    C.Dims = std::move(Dims);
    C.Rho = Rho;
    C.CostNs = BaseNs + KernelNs;
    if (Reduced)
      C.Rho.insert(*Reduced);
    return C;
  };
  // Price of materializing a transposed operand.
  auto TransNs = [&](const CheckedExpr &Op) {
    return CP.TransposeNs * dimsElems(Op.Dims);
  };

  // Scalars multiply anything with a native '*'.
  if (L.Dims.isScalarShape())
    return Result(makeBinary(BinaryOp::Mul, L.E->clone(), R.E->clone()),
                  R.Dims, CP.ElementwiseNs * dimsElems(R.Dims));
  if (R.Dims.isScalarShape())
    return Result(makeBinary(BinaryOp::Mul, L.E->clone(), R.E->clone()),
                  L.Dims, CP.ElementwiseNs * dimsElems(L.Dims));

  const bool BothScalarPerIteration =
      !containsStar(L.Dims) && !containsStar(R.Dims);

  // Pointwise products take priority over reduction by matrix
  // multiplication (Sec. 3.1, footnote 1). A '*' between per-iteration
  // scalars vectorizes as '.*'.
  if (BothScalarPerIteration) {
    if (compatible(L.Dims, R.Dims))
      return Result(makeBinary(BinaryOp::DotMul, L.E->clone(), R.E->clone()),
                    L.Dims, CP.ElementwiseNs * dimsElems(L.Dims));
    if (Opts.EnableTransposes) {
      if (compatible(L.Dims, R.Dims.reversed()))
        return Result(makeBinary(BinaryOp::DotMul, L.E->clone(),
                                 makeTranspose(R.E->clone())),
                      L.Dims,
                      CP.ElementwiseNs * dimsElems(L.Dims) + TransNs(R));
      if (compatible(L.Dims.reversed(), R.Dims))
        return Result(makeBinary(BinaryOp::DotMul,
                                 makeTranspose(L.E->clone()), R.E->clone()),
                      R.Dims,
                      CP.ElementwiseNs * dimsElems(R.Dims) + TransNs(L));
    }
  }

  const bool TransposeChoices[2] = {false, true};

  // Implicit reduction through native matrix multiplication (Sec. 3.1).
  if (!ReductionLoops.empty()) {
    for (bool TL : TransposeChoices) {
      for (bool TR : TransposeChoices) {
        if ((TL || TR) && !Opts.EnableTransposes)
          continue;
        Dimensionality DL = TL ? L.Dims.reversed() : L.Dims;
        Dimensionality DR = TR ? R.Dims.reversed() : R.Dims;
        if (DL.size() != 2 || DR.size() != 2)
          continue;
        DimSymbol Inner = DL[1];
        if (!Inner.isRange() || DR[0] != Inner)
          continue;
        LoopId Reduced = Inner.loop();
        if (!ReductionLoops.count(Reduced) || Rho.count(Reduced))
          continue;
        // The reduced range must vanish from the result.
        if ((DL[0].isRange() && DL[0].loop() == Reduced) ||
            (DR[1].isRange() && DR[1].loop() == Reduced))
          continue;
        // A native product computes all (row, col) pairs; if both outer
        // dimensions carried the same range the original code only needed
        // the diagonal, so the product form is not equivalent.
        if (DL[0].isRange() && DL[0] == DR[1])
          continue;
        ExprPtr EL = TL ? makeTranspose(L.E->clone()) : L.E->clone();
        ExprPtr ER = TR ? makeTranspose(R.E->clone()) : R.E->clone();
        double MulNs = CP.MatMulNs * dimExtent(DL[0]) * dimExtent(Inner) *
                           dimExtent(DR[1]) +
                       (TL ? TransNs(L) : 0.0) + (TR ? TransNs(R) : 0.0);
        return Result(makeBinary(BinaryOp::Mul, std::move(EL),
                                 std::move(ER)),
                      Dimensionality{DL[0], DR[1]}, MulNs, Reduced);
      }
    }
  }

  if (Opts.EnablePatterns) {
    // Product patterns first (dot product, general matrix forms)...
    for (BinaryOp PatternOp : {BinaryOp::Mul, BinaryOp::DotMul}) {
      if (PatternOp == BinaryOp::DotMul && !BothScalarPerIteration)
        continue; // '.*' reinterpretation only for per-iteration scalars
      for (bool TL : TransposeChoices) {
        for (bool TR : TransposeChoices) {
          if ((TL || TR) && !Opts.EnableTransposes)
            continue;
          Dimensionality DL = TL ? L.Dims.reversed() : L.Dims;
          Dimensionality DR = TR ? R.Dims.reversed() : R.Dims;
          for (const BinaryMatch &Match :
               DB.matchBinaryAll(PatternOp, DL, DR)) {
            ExprPtr EL = TL ? makeTranspose(L.E->clone()) : L.E->clone();
            ExprPtr ER = TR ? makeTranspose(R.E->clone()) : R.E->clone();
            ExprPtr T = Match.Pattern->Transform(
                PatternOp, std::move(EL), std::move(ER),
                patternContext(Match.Bindings));
            if (!T)
              continue;
            // Pattern forms touch both inputs and materialize the output;
            // price them as one pass over each.
            double PatNs =
                CP.ElementwiseNs * (dimsElems(DL) + dimsElems(DR) +
                                    dimsElems(Match.OutDims)) +
                (TL ? TransNs(L) : 0.0) + (TR ? TransNs(R) : 0.0);
            return Result(std::move(T), Match.OutDims, PatNs);
          }
        }
      }
    }
  }

  return std::nullopt;
}

std::optional<CheckedExpr> DimChecker::checkMulChain(const BinaryExpr &E) {
  // Flatten the maximal '*' chain.
  std::vector<const Expr *> Factors;
  std::function<void(const Expr &)> Flatten = [&](const Expr &Node) {
    if (const auto *B = dyn_cast<BinaryExpr>(&Node)) {
      if (B->op() == BinaryOp::Mul) {
        Flatten(*B->lhs());
        Flatten(*B->rhs());
        return;
      }
    }
    Factors.push_back(&Node);
  };
  Flatten(E);

  std::vector<CheckedExpr> Checked;
  Checked.reserve(Factors.size());
  for (const Expr *F : Factors) {
    auto C = check(*F);
    if (!C)
      return std::nullopt;
    Checked.push_back(std::move(*C));
  }

  size_t N = Checked.size();
  assert(N >= 2 && "a Mul node has at least two factors");

  if (!Opts.EnableReassociation || N > 6) {
    // Left-associative folding only.
    CheckedExpr Acc = std::move(Checked[0]);
    for (size_t I = 1; I != N; ++I) {
      auto Next = combineMul(Acc, Checked[I]);
      if (!Next)
        return fail("incompatible '*' operands: " +
                    dimsMismatch(Acc.Dims, Checked[I].Dims));
      Acc = std::move(*Next);
    }
    return Acc;
  }

  // Dynamic programming over associative groupings (Sec. 3.1 footnote 2):
  // Table[Lo][Hi] holds candidate results for the subchain [Lo, Hi].
  constexpr size_t MaxCandidates = 6;
  std::vector<std::vector<std::vector<CheckedExpr>>> Table(N);
  for (auto &Row : Table)
    Row.resize(N);
  for (size_t I = 0; I != N; ++I)
    Table[I][I].push_back(Checked[I].clone());

  auto Signature = [](const CheckedExpr &C) {
    std::string Sig = C.Dims.str();
    for (LoopId Loop : C.Rho)
      Sig += "|" + std::to_string(Loop);
    return Sig;
  };

  for (size_t Len = 2; Len <= N; ++Len) {
    for (size_t Lo = 0; Lo + Len <= N; ++Lo) {
      size_t Hi = Lo + Len - 1;
      std::set<std::string> Seen;
      for (size_t Split = Lo; Split != Hi; ++Split) {
        for (const CheckedExpr &A : Table[Lo][Split]) {
          for (const CheckedExpr &B : Table[Split + 1][Hi]) {
            if (Table[Lo][Hi].size() >= MaxCandidates)
              break;
            auto C = combineMul(A, B);
            if (!C)
              continue;
            std::string Sig = Signature(*C);
            if (!Seen.insert(Sig).second)
              continue;
            Table[Lo][Hi].push_back(std::move(*C));
          }
        }
      }
    }
  }

  std::vector<CheckedExpr> &Final = Table[0][N - 1];
  if (Final.empty())
    return fail("no legal association of the multiplication chain");
  // Prefer groupings that fold the most reductions into native matrix
  // multiplications (fewest leftover Gamma sums and temporaries); ties
  // keep discovery order.
  std::stable_sort(Final.begin(), Final.end(),
                   [](const CheckedExpr &A, const CheckedExpr &B) {
                     return A.Rho.size() > B.Rho.size();
                   });
  if (!Opts.Cost || Final.size() < 2)
    return std::move(Final.front());

  // Cost-model variant selection: re-rank the candidates by modeled
  // kernel cost. A reduction a candidate left unfolded still has to
  // happen as a Gamma sum pass downstream, so each candidate is charged
  // ReduceNs over its intermediate for every loop some sibling managed to
  // fold but it did not — otherwise fewer-folded variants would look
  // artificially cheap. Ties keep the default (Rho-major) order.
  const cost::CostProfile &CP = Opts.Cost->profile();
  std::set<LoopId> Foldable;
  for (const CheckedExpr &C : Final)
    Foldable.insert(C.Rho.begin(), C.Rho.end());
  auto Adjusted = [&](const CheckedExpr &C) {
    double Ns = C.CostNs;
    // The gamma pass walks the candidate's intermediate, whose dims still
    // carry the unfolded range, so dimsElems(C.Dims) already includes it.
    for (LoopId Loop : Foldable)
      if (!C.Rho.count(Loop))
        Ns += CP.ReduceNs * dimsElems(C.Dims);
    return Ns;
  };
  size_t Best = 0;
  double BestNs = Adjusted(Final[0]);
  for (size_t I = 1; I != Final.size(); ++I) {
    double Ns = Adjusted(Final[I]);
    if (Ns < BestNs) {
      Best = I;
      BestNs = Ns;
    }
  }
  if (Best != 0)
    ++VariantOverrides;
  return std::move(Final[Best]);
}

//===----------------------------------------------------------------------===//
// Subscripts and calls
//===----------------------------------------------------------------------===//

std::optional<CheckedExpr> DimChecker::checkCall(const IndexExpr &E,
                                                 const std::string &Name) {
  // Function-call dimensionality signatures from the pattern database
  // (paper Sec. 7): the call's result shape follows from its arguments'.
  if (DB.knowsCall(Name)) {
    std::vector<CheckedExpr> Args;
    std::vector<Dimensionality> ArgDims;
    for (unsigned I = 0, K = E.numArgs(); I != K; ++I) {
      auto Arg = check(*E.arg(I));
      if (!Arg)
        return std::nullopt;
      ArgDims.push_back(Arg->Dims);
      Args.push_back(std::move(*Arg));
    }
    if (auto Out = DB.matchCall(Name, ArgDims)) {
      // Reduced variables of one argument must not appear in another's
      // dimensionality (the Sec. 3.1 consistency rule), and propagate.
      std::set<LoopId> Rho;
      for (size_t I = 0; I != Args.size(); ++I)
        for (size_t J = 0; J != Args.size(); ++J)
          if (I != J && !rhoConsistent(Args[I], Args[J]))
            return fail("inconsistent reductions in call to '" + Name +
                        "'");
      std::vector<ExprPtr> NewArgs;
      for (CheckedExpr &A : Args) {
        Rho.insert(A.Rho.begin(), A.Rho.end());
        NewArgs.push_back(std::move(A.E));
      }
      CheckedExpr C;
      C.E = makeCall(Name, std::move(NewArgs));
      C.Dims = *Out;
      C.Rho = std::move(Rho);
      return C;
    }
    return fail("no call signature for '" + Name +
                "' accepts the argument shapes");
  }

  if (Name == "size" || Name == "numel" || Name == "length") {
    // Loop-invariant queries stay scalar (or a small row vector for
    // size(X)); they must not involve vectorized index variables.
    std::vector<ExprPtr> Args;
    for (unsigned I = 0, K = E.numArgs(); I != K; ++I) {
      for (unsigned L = Level; L <= MaxLevel && L <= Nest.Loops.size(); ++L)
        if (mentionsIdentifier(*E.arg(I), Nest.Loops[L - 1].IndexSym))
          return fail("size query depends on a vectorized index variable");
      Args.push_back(E.arg(I)->clone());
    }
    CheckedExpr C;
    C.E = makeCall(Name, std::move(Args));
    C.Dims = (Name == "size" && E.numArgs() == 1)
                 ? Dimensionality::rowVector()
                 : Dimensionality::scalar();
    return C;
  }

  return fail("call to '" + Name + "' blocks vectorization");
}

std::optional<CheckedExpr> DimChecker::checkIndex(const IndexExpr &E) {
  const auto *BaseIdent = dyn_cast<IdentExpr>(E.base());
  if (!BaseIdent)
    return fail("unsupported subscript base expression");
  const std::string &Name = BaseIdent->name();

  // Calls: a name that is not a known variable but is a builtin.
  if (!Env.knows(Name) && !vectorizedLoop(BaseIdent->sym()) &&
      !isSequentialLoopVar(BaseIdent->sym()) && isBuiltinName(Name))
    return checkCall(E, Name);

  std::optional<Dimensionality> BaseShape = Env.getShape(Name);
  unsigned K = E.numArgs();

  if (K == 0) {
    // x() is just x.
    if (!BaseShape)
      return fail("unknown shape for variable '" + Name + "'");
    CheckedExpr C;
    C.E = makeIdent(Name);
    C.Dims = *BaseShape;
    return C;
  }

  if (K > 2)
    return fail("subscripts with more than two dimensions are unsupported");

  std::vector<ExprPtr> RebuiltArgs;
  Dimensionality Dims;

  if (K == 1) {
    const Expr *Arg = E.arg(0);
    if (isa<MagicColonExpr>(Arg)) {
      if (!BaseShape)
        return fail("unknown shape for variable '" + Name + "'");
      DimSymbol S = BaseShape->isScalarShape() ? DimSymbol::one()
                                               : DimSymbol::star();
      Dims = Dimensionality{S, DimSymbol::one()};
      RebuiltArgs.push_back(std::make_unique<MagicColonExpr>(Arg->loc()));
    } else {
      auto CA = check(*Arg);
      if (!CA)
        return std::nullopt;
      if (!CA->Rho.empty())
        return fail("reduction inside a subscript");
      if (CA->Dims.isMatrixShape() ||
          (BaseShape && BaseShape->isMatrixShape() &&
           CA->Dims.isScalarShape())) {
        // Table 1: M(e1) takes e1's shape when either is a matrix. A
        // scalar subscript is orientation-free, and a matrix-shaped
        // subscript forces its own shape even on a vector base.
        Dims = CA->Dims;
      } else if (BaseShape && BaseShape->isMatrixShape()) {
        // A '*' extent admits 1, so a base declared (*,*) may be a
        // runtime column vector — and MATLAB then orients the slice
        // along the base, not the subscript. The abstract shape of a
        // vector slice is underivable from the annotation: stay
        // sequential rather than guess.
        return fail("vector slice of matrix-shaped '" + Name +
                    "' has data-dependent orientation");
      } else if (BaseShape) {
        auto S = CA->Dims.fmax();
        if (!S)
          return fail("subscript of '" + Name +
                      "' has no single largest dimension");
        // Vector bases orient the result along themselves (A(1:n) is a
        // column for column A).
        if ((*BaseShape)[0].isOne())
          Dims = Dimensionality{DimSymbol::one(), *S};
        else
          Dims = Dimensionality{*S, DimSymbol::one()};
      } else {
        return fail("unknown shape for variable '" + Name + "'");
      }
      RebuiltArgs.push_back(std::move(CA->E));
    }
  } else { // K == 2
    std::vector<DimSymbol> Symbols;
    for (unsigned D = 0; D != 2; ++D) {
      const Expr *Arg = E.arg(D);
      if (isa<MagicColonExpr>(Arg)) {
        if (!BaseShape)
          return fail("unknown shape for variable '" + Name + "'");
        Symbols.push_back((*BaseShape)[D]);
        RebuiltArgs.push_back(std::make_unique<MagicColonExpr>(Arg->loc()));
        continue;
      }
      auto CA = check(*Arg);
      if (!CA)
        return std::nullopt;
      if (!CA->Rho.empty())
        return fail("reduction inside a subscript");
      auto S = CA->Dims.fmax();
      if (!S)
        return fail("subscript of '" + Name +
                    "' has no single largest dimension");
      Symbols.push_back(*S);
      RebuiltArgs.push_back(std::move(CA->E));
    }
    Dims = Dimensionality(std::move(Symbols));
  }

  ExprPtr Rebuilt = std::make_unique<IndexExpr>(
      makeIdent(Name), std::move(RebuiltArgs), E.loc());

  // A repeated range symbol (e.g. the diagonal A(i,i)) must be resolved by
  // a matrix-access pattern (operator class "(.)", Sec. 3).
  if (duplicatedRange(Dims)) {
    if (!Opts.EnablePatterns)
      return fail("repeated range in subscript of '" + Name +
                  "' (patterns disabled)");
    for (const AccessMatch &Match : DB.matchAccessAll(Dims)) {
      ExprPtr T = Match.Pattern->Transform(cast<IndexExpr>(*Rebuilt),
                                           patternContext(Match.Bindings));
      if (!T)
        continue; // the pattern declined; try the next one
      CheckedExpr C;
      C.E = std::move(T);
      C.Dims = Match.OutDims;
      return C;
    }
    return fail("no access pattern accepts subscript dims " + Dims.str());
  }

  CheckedExpr C;
  C.E = std::move(Rebuilt);
  C.Dims = Dims;
  return C;
}
