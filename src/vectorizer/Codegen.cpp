//===- Codegen.cpp - Allen & Kennedy codegen with dim checking --------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "vectorizer/Codegen.h"

#include "frontend/ASTPrinter.h"
#include "frontend/ASTUtils.h"
#include "frontend/Simplify.h"
#include "vectorizer/DimChecker.h"

#include <algorithm>
#include <map>
#include <optional>

using namespace mvec;

namespace {

class CodegenDriver {
public:
  CodegenDriver(const LoopNest &Nest, const DepGraph &Graph,
                const ShapeEnv &Env, const PatternDatabase &DB,
                const VectorizerOptions &Opts, DiagnosticEngine &Diags,
                const CodegenGuards &Guards)
      : Nest(Nest), Graph(Graph), Env(Env), DB(DB), Opts(Opts), Diags(Diags),
        Guards(Guards) {}

  CodegenResult run() {
    // When the root loop's trip count is provably zero, nothing in the
    // nest ever executes; the replacement is no statements at all.
    // (Inner levels don't qualify: statements at shallower levels still
    // run when only a deeper loop is empty. Index-variable liveness was
    // already checked by the caller, so dropping the index assignments
    // is unobservable.)
    if (provablyZeroTrips(1, 1)) {
      remark(Nest.Loops[0].Loop ? Nest.Loops[0].Loop->loc() : SourceLoc(),
             "removed loop nest with provably-zero trip count");
      Result.VectorizedStmts = Nest.Stmts.size();
      return std::move(Result);
    }
    std::vector<unsigned> All;
    for (unsigned I = 0; I != Nest.Stmts.size(); ++I)
      All.push_back(I);
    Result.Stmts = codegen(All, 1);
    return std::move(Result);
  }

private:
  std::vector<StmtPtr> codegen(const std::vector<unsigned> &Active,
                               unsigned Level);
  void emitSingle(unsigned StmtIdx, unsigned Level,
                  std::vector<StmtPtr> &Block);
  std::optional<double> literalValue(const Expr *E) const;
  bool provablyPositiveTrips(unsigned L, unsigned MaxL) const;
  bool provablyZeroTrips(unsigned L, unsigned MaxL) const;
  std::string emptyTripHazard(unsigned L, unsigned MaxL,
                              bool IsReduction) const;

  StmtPtr makeSequentialLoop(unsigned Level) const {
    const LoopHeader &H = Nest.Loops[Level - 1];
    return std::make_unique<ForStmt>(H.IndexSym, H.makeRangeExpr(),
                                     std::vector<StmtPtr>());
  }

  void remark(SourceLoc Loc, const std::string &Message) {
    if (Opts.EmitRemarks)
      Diags.remark(Loc, Message);
  }

  const LoopNest &Nest;
  const DepGraph &Graph;
  const ShapeEnv &Env;
  const PatternDatabase &DB;
  const VectorizerOptions &Opts;
  DiagnosticEngine &Diags;
  const CodegenGuards &Guards;
  CodegenResult Result;
};

/// Evaluates \p E to a number using literals and the caller-provided
/// constant bindings (handles the same operator subset as
/// evaluateConstant, with identifiers resolved through
/// Guards.Constants).
std::optional<double> CodegenDriver::literalValue(const Expr *E) const {
  if (!E)
    return std::nullopt;
  if (const auto *Id = dyn_cast<IdentExpr>(E)) {
    auto It = Guards.Constants.find(Id->sym());
    if (It != Guards.Constants.end())
      return It->second;
    return std::nullopt;
  }
  if (const auto *Un = dyn_cast<UnaryExpr>(E)) {
    std::optional<double> V = literalValue(Un->operand());
    if (!V || Un->op() == UnaryOp::Not)
      return std::nullopt;
    return Un->op() == UnaryOp::Minus ? -*V : *V;
  }
  if (const auto *Bin = dyn_cast<BinaryExpr>(E)) {
    std::optional<double> A = literalValue(Bin->lhs());
    std::optional<double> B = literalValue(Bin->rhs());
    if (!A || !B)
      return std::nullopt;
    switch (Bin->op()) {
    case BinaryOp::Add:
      return *A + *B;
    case BinaryOp::Sub:
      return *A - *B;
    case BinaryOp::Mul:
    case BinaryOp::DotMul:
      return *A * *B;
    case BinaryOp::Div:
    case BinaryOp::DotDiv:
      return *A / *B;
    default:
      return std::nullopt;
    }
  }
  if (const auto *Ix = dyn_cast<IndexExpr>(E)) {
    // size/length/numel of a variable whose construction had literal
    // extents — but only when the name really is the builtin (no
    // assignment anywhere shadows it).
    Symbol FnSym = Ix->baseSym();
    if (FnSym.empty() || Guards.AssignedNames.count(FnSym) ||
        Ix->numArgs() == 0)
      return std::nullopt;
    const std::string &Fn = FnSym.str();
    const auto *Arg0 = dyn_cast<IdentExpr>(Ix->arg(0));
    if (!Arg0)
      return std::nullopt;
    auto DimIt = Guards.KnownDims.find(Arg0->sym());
    if (DimIt == Guards.KnownDims.end())
      return std::nullopt;
    double R = DimIt->second.first, C = DimIt->second.second;
    if (Fn == "size" && Ix->numArgs() == 2) {
      std::optional<double> K = literalValue(Ix->arg(1));
      if (K && *K == 1.0)
        return R;
      if (K && *K == 2.0)
        return C;
    } else if (Fn == "length" && Ix->numArgs() == 1) {
      return (R == 0 || C == 0) ? 0.0 : std::max(R, C);
    } else if (Fn == "numel" && Ix->numArgs() == 1) {
      return R * C;
    }
    return std::nullopt;
  }
  double V;
  if (evaluateConstant(*E, V))
    return V;
  return std::nullopt;
}

/// True when every loop at levels \p L..\p MaxL provably executes at
/// least one iteration.
bool CodegenDriver::provablyPositiveTrips(unsigned L, unsigned MaxL) const {
  for (unsigned K = L; K <= MaxL; ++K) {
    const LoopHeader &H = Nest.Loops[K - 1];
    std::optional<double> Start = literalValue(H.Start);
    std::optional<double> Stop = literalValue(H.Stop);
    if (!Start || !Stop)
      return false;
    double Step = 1.0;
    if (H.Step) {
      std::optional<double> SV = literalValue(H.Step);
      if (!SV)
        return false;
      Step = *SV;
    }
    bool Positive = (Step > 0 && *Start <= *Stop) ||
                    (Step < 0 && *Start >= *Stop);
    if (!Positive)
      return false;
  }
  return true;
}

/// True when some loop at levels \p L..\p MaxL provably executes zero
/// iterations, so the nest's body never runs at all.
bool CodegenDriver::provablyZeroTrips(unsigned L, unsigned MaxL) const {
  for (unsigned K = L; K <= MaxL; ++K) {
    const LoopHeader &H = Nest.Loops[K - 1];
    std::optional<double> Start = literalValue(H.Start);
    std::optional<double> Stop = literalValue(H.Stop);
    if (!Start || !Stop)
      continue;
    double Step = 1.0;
    if (H.Step) {
      std::optional<double> SV = literalValue(H.Step);
      if (!SV)
        continue;
      Step = *SV;
    }
    if (Step == 0 || (Step > 0 && *Start > *Stop) ||
        (Step < 0 && *Start < *Stop))
      return true;
  }
  return false;
}

/// A vectorized statement executes exactly once where the original body
/// ran once per iteration — including zero times when a range is empty.
/// Evaluating the emitted statement over an empty slice is not a
/// faithful stand-in for not executing: empty subscripts flip
/// orientation on degenerate bases, subscripts on the other axes are
/// still bounds-checked eagerly, whole-variable writes happen that the
/// original skipped, and reductions can yield empty instead of the
/// additive identity. Emission is therefore allowed only when every
/// vectorized level's trip count is provably at least one.
/// Returns a diagnostic reason when emission is unsafe, "" when safe.
std::string CodegenDriver::emptyTripHazard(unsigned L, unsigned MaxL,
                                           bool IsReduction) const {
  if (provablyPositiveTrips(L, MaxL))
    return "";
  if (IsReduction)
    return "reduction over a possibly-empty range (trip count not provably "
           "positive)";
  return "statement may execute zero times (trip count not provably "
         "positive)";
}

std::vector<StmtPtr>
CodegenDriver::codegen(const std::vector<unsigned> &Active, unsigned Level) {
  std::vector<StmtPtr> Block;

  // Induced subgraph over the active statements, renumbered locally.
  std::map<unsigned, unsigned> GlobalToLocal;
  for (unsigned I = 0; I != Active.size(); ++I)
    GlobalToLocal[Active[I]] = I;
  DepGraph Local;
  Local.NumNodes = Active.size();
  for (const DepEdge &E : Graph.Edges) {
    auto SrcIt = GlobalToLocal.find(E.Src);
    auto DstIt = GlobalToLocal.find(E.Dst);
    if (SrcIt == GlobalToLocal.end() || DstIt == GlobalToLocal.end())
      continue;
    DepEdge Renumbered = E;
    Renumbered.Src = SrcIt->second;
    Renumbered.Dst = DstIt->second;
    Local.Edges.push_back(Renumbered);
  }

  for (const std::vector<unsigned> &LocalComp :
       stronglyConnectedComponents(Local, Level)) {
    std::vector<unsigned> Comp;
    Comp.reserve(LocalComp.size());
    for (unsigned L : LocalComp)
      Comp.push_back(Active[L]);

    if (Comp.size() == 1) {
      emitSingle(Comp[0], Level, Block);
      continue;
    }

    // A multi-statement recurrence: run the loop at this level
    // sequentially, drop its carried edges and recurse (Algorithm 1,
    // lines 22-26).
    if (Level > Nest.Loops.size()) {
      // No loop left to serialize (cannot happen for well-formed graphs,
      // but degrade gracefully): emit the statements in order.
      for (unsigned StmtIdx : Comp) {
        Block.push_back(Nest.Stmts[StmtIdx].S->clone());
        ++Result.SequentialStmts;
      }
      continue;
    }
    remark(Nest.Stmts[Comp[0]].S->loc(),
           "recurrence among " + std::to_string(Comp.size()) +
               " statements: running loop '" +
               Nest.Loops[Level - 1].indexVar() + "' sequentially");
    StmtPtr Loop = makeSequentialLoop(Level);
    auto *LoopRaw = cast<ForStmt>(Loop.get());
    LoopRaw->body() = codegen(Comp, Level + 1);
    ++Result.SequentialLoops;
    Block.push_back(std::move(Loop));
  }
  return Block;
}

void CodegenDriver::emitSingle(unsigned StmtIdx, unsigned Level,
                               std::vector<StmtPtr> &Block) {
  const NestStmt &NS = Nest.Stmts[StmtIdx];
  unsigned MaxL = NS.Depth;
  std::vector<StmtPtr> *BlockPtr = &Block;

  // Share dim_i results across the per-level attempts below: a subtree
  // indifferent to the level being peeled replays instead of re-deriving.
  // Single-level statements skip the memo — there is nothing to share and
  // the bookkeeping would only cost.
  std::optional<DimCheckMemo> Memo;
  if (MaxL > Level && Nest.Loops.size() <= 32)
    Memo.emplace(Nest);

  for (unsigned L = Level; L <= MaxL; ++L) {
    // Recurrences on the statement itself at the levels still in play.
    std::set<unsigned> CarriedLevels;
    for (const DepEdge &E : Graph.Edges)
      if (E.Src == StmtIdx && E.Dst == StmtIdx && E.Level != 0 &&
          E.Level >= L)
        CarriedLevels.insert(E.Level);

    DimChecker Checker(Nest, L, MaxL, Env, DB, Opts,
                       Memo ? &*Memo : nullptr);
    std::optional<CheckedStmt> Checked;
    std::string Why;
    bool IsReduction = false;

    if (CarriedLevels.empty()) {
      Checked = Checker.checkStatement(*NS.S);
      if (!Checked)
        Why = Checker.failureReason();
    } else if (!Opts.EnableReductions) {
      Why = "recurrence (reduction vectorization disabled)";
    } else {
      // The paper's extension: vectorize the accumulation when every
      // carried level is a reduction variable (a loop absent from the
      // accumulator's subscripts).
      std::set<LoopId> ReductionVars;
      for (unsigned K = L; K <= MaxL; ++K) {
        const LoopHeader &H = Nest.Loops[K - 1];
        if (!mentionsIdentifier(*NS.S->lhs(), H.IndexSym))
          ReductionVars.insert(H.Id);
      }
      bool Covered = !ReductionVars.empty();
      for (unsigned CL : CarriedLevels)
        if (CL > Nest.Loops.size() ||
            !ReductionVars.count(Nest.Loops[CL - 1].Id))
          Covered = false;
      if (Covered) {
        Checked = Checker.checkStatement(*NS.S, ReductionVars);
        IsReduction = true;
        if (!Checked)
          Why = Checker.failureReason();
      } else {
        Why = "recurrence carried by a non-reduction loop";
      }
    }

    if (Checked) {
      ExprPtr LHS = std::move(Checked->LHS);
      ExprPtr RHS = std::move(Checked->RHS);
      for (unsigned K = L; K <= MaxL; ++K) {
        const LoopHeader &H = Nest.Loops[K - 1];
        ExprPtr Range = H.makeRangeExpr();
        LHS = substituteIdentifier(std::move(LHS), H.IndexSym, *Range);
        RHS = substituteIdentifier(std::move(RHS), H.IndexSym, *Range);
      }
      if (Opts.DistributeTransposes) {
        LHS = distributeTransposes(std::move(LHS));
        RHS = distributeTransposes(std::move(RHS));
      }
      LHS = simplifyExpr(std::move(LHS));
      RHS = simplifyExpr(std::move(RHS));
      auto NewStmt = std::make_unique<AssignStmt>(
          std::move(LHS), std::move(RHS), NS.S->loc());
      std::string Hazard = emptyTripHazard(L, MaxL, IsReduction);
      if (Hazard.empty()) {
        remark(NS.S->loc(), "vectorized statement at loop level " +
                                std::to_string(L) + ": " +
                                printStmt(*NewStmt));
        BlockPtr->push_back(std::move(NewStmt));
        ++Result.VectorizedStmts;
        return;
      }
      Checked.reset();
      Why = Hazard;
    }

    if (!Why.empty())
      remark(NS.S->loc(), "level " + std::to_string(L) +
                              " not vectorizable: " + Why);
    StmtPtr Loop = makeSequentialLoop(L);
    auto *LoopRaw = cast<ForStmt>(Loop.get());
    ++Result.SequentialLoops;
    BlockPtr->push_back(std::move(Loop));
    BlockPtr = &LoopRaw->body();
  }

  // No level vectorized: the statement stays inside the sequential loops
  // materialized above.
  BlockPtr->push_back(NS.S->clone());
  ++Result.SequentialStmts;
}

} // namespace

CodegenResult mvec::runCodegen(const LoopNest &Nest, const DepGraph &Graph,
                               const ShapeEnv &Env, const PatternDatabase &DB,
                               const VectorizerOptions &Opts,
                               DiagnosticEngine &Diags,
                               const CodegenGuards &Guards) {
  return CodegenDriver(Nest, Graph, Env, DB, Opts, Diags, Guards).run();
}
