//===- Codegen.cpp - Allen & Kennedy codegen with dim checking --------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "vectorizer/Codegen.h"

#include "cost/CostModel.h"
#include "frontend/ASTPrinter.h"
#include "frontend/ASTUtils.h"
#include "frontend/Simplify.h"
#include "vectorizer/DimChecker.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <optional>

using namespace mvec;

namespace {

class CodegenDriver {
public:
  CodegenDriver(const LoopNest &Nest, const DepGraph &Graph,
                const ShapeEnv &Env, const PatternDatabase &DB,
                const VectorizerOptions &Opts, DiagnosticEngine &Diags,
                const CodegenGuards &Guards)
      : Nest(Nest), Graph(Graph), Env(Env), DB(DB), Opts(Opts), Diags(Diags),
        Guards(Guards) {}

  CodegenResult run() {
    // When the root loop's trip count is provably zero, nothing in the
    // nest ever executes; the replacement is no statements at all.
    // (Inner levels don't qualify: statements at shallower levels still
    // run when only a deeper loop is empty. Index-variable liveness was
    // already checked by the caller, so dropping the index assignments
    // is unobservable.)
    if (provablyZeroTrips(1, 1)) {
      remark(Nest.Loops[0].Loop ? Nest.Loops[0].Loop->loc() : SourceLoc(),
             "removed loop nest with provably-zero trip count");
      Result.VectorizedStmts = Nest.Stmts.size();
      return std::move(Result);
    }
    std::vector<unsigned> All;
    for (unsigned I = 0; I != Nest.Stmts.size(); ++I)
      All.push_back(I);
    Result.Stmts = codegen(All, 1);
    return std::move(Result);
  }

private:
  std::vector<StmtPtr> codegen(const std::vector<unsigned> &Active,
                               unsigned Level);
  void emitSingle(unsigned StmtIdx, unsigned Level,
                  std::vector<StmtPtr> &Block);
  std::optional<double> literalValue(const Expr *E) const;
  double estimatedTrip(unsigned K) const;
  double tripsProduct(unsigned Lo, unsigned Hi) const;
  bool provablyPositiveTrips(unsigned L, unsigned MaxL) const;
  bool provablyZeroTrips(unsigned L, unsigned MaxL) const;
  std::string emptyTripHazard(unsigned L, unsigned MaxL,
                              bool IsReduction) const;

  StmtPtr makeSequentialLoop(unsigned Level) const {
    const LoopHeader &H = Nest.Loops[Level - 1];
    return std::make_unique<ForStmt>(H.IndexSym, H.makeRangeExpr(),
                                     std::vector<StmtPtr>());
  }

  void remark(SourceLoc Loc, const std::string &Message) {
    if (Opts.EmitRemarks)
      Diags.remark(Loc, Message);
  }

  const LoopNest &Nest;
  const DepGraph &Graph;
  const ShapeEnv &Env;
  const PatternDatabase &DB;
  const VectorizerOptions &Opts;
  DiagnosticEngine &Diags;
  const CodegenGuards &Guards;
  CodegenResult Result;
};

/// Evaluates \p E to a number using literals and the caller-provided
/// constant bindings (handles the same operator subset as
/// evaluateConstant, with identifiers resolved through
/// Guards.Constants).
std::optional<double> CodegenDriver::literalValue(const Expr *E) const {
  if (!E)
    return std::nullopt;
  if (const auto *Id = dyn_cast<IdentExpr>(E)) {
    auto It = Guards.Constants.find(Id->sym());
    if (It != Guards.Constants.end())
      return It->second;
    return std::nullopt;
  }
  if (const auto *Un = dyn_cast<UnaryExpr>(E)) {
    std::optional<double> V = literalValue(Un->operand());
    if (!V || Un->op() == UnaryOp::Not)
      return std::nullopt;
    return Un->op() == UnaryOp::Minus ? -*V : *V;
  }
  if (const auto *Bin = dyn_cast<BinaryExpr>(E)) {
    std::optional<double> A = literalValue(Bin->lhs());
    std::optional<double> B = literalValue(Bin->rhs());
    if (!A || !B)
      return std::nullopt;
    switch (Bin->op()) {
    case BinaryOp::Add:
      return *A + *B;
    case BinaryOp::Sub:
      return *A - *B;
    case BinaryOp::Mul:
    case BinaryOp::DotMul:
      return *A * *B;
    case BinaryOp::Div:
    case BinaryOp::DotDiv:
      return *A / *B;
    default:
      return std::nullopt;
    }
  }
  if (const auto *Ix = dyn_cast<IndexExpr>(E)) {
    // size/length/numel of a variable whose construction had literal
    // extents — but only when the name really is the builtin (no
    // assignment anywhere shadows it).
    Symbol FnSym = Ix->baseSym();
    if (FnSym.empty() || Guards.AssignedNames.count(FnSym) ||
        Ix->numArgs() == 0)
      return std::nullopt;
    const std::string &Fn = FnSym.str();
    const auto *Arg0 = dyn_cast<IdentExpr>(Ix->arg(0));
    if (!Arg0)
      return std::nullopt;
    auto DimIt = Guards.KnownDims.find(Arg0->sym());
    if (DimIt == Guards.KnownDims.end())
      return std::nullopt;
    double R = DimIt->second.first, C = DimIt->second.second;
    if (Fn == "size" && Ix->numArgs() == 2) {
      std::optional<double> K = literalValue(Ix->arg(1));
      if (K && *K == 1.0)
        return R;
      if (K && *K == 2.0)
        return C;
    } else if (Fn == "length" && Ix->numArgs() == 1) {
      return (R == 0 || C == 0) ? 0.0 : std::max(R, C);
    } else if (Fn == "numel" && Ix->numArgs() == 1) {
      return R * C;
    }
    return std::nullopt;
  }
  double V;
  if (evaluateConstant(*E, V))
    return V;
  return std::nullopt;
}

/// True when every loop at levels \p L..\p MaxL provably executes at
/// least one iteration.
bool CodegenDriver::provablyPositiveTrips(unsigned L, unsigned MaxL) const {
  for (unsigned K = L; K <= MaxL; ++K) {
    const LoopHeader &H = Nest.Loops[K - 1];
    std::optional<double> Start = literalValue(H.Start);
    std::optional<double> Stop = literalValue(H.Stop);
    if (!Start || !Stop)
      return false;
    double Step = 1.0;
    if (H.Step) {
      std::optional<double> SV = literalValue(H.Step);
      if (!SV)
        return false;
      Step = *SV;
    }
    bool Positive = (Step > 0 && *Start <= *Stop) ||
                    (Step < 0 && *Start >= *Stop);
    if (!Positive)
      return false;
  }
  return true;
}

/// True when some loop at levels \p L..\p MaxL provably executes zero
/// iterations, so the nest's body never runs at all.
bool CodegenDriver::provablyZeroTrips(unsigned L, unsigned MaxL) const {
  for (unsigned K = L; K <= MaxL; ++K) {
    const LoopHeader &H = Nest.Loops[K - 1];
    std::optional<double> Start = literalValue(H.Start);
    std::optional<double> Stop = literalValue(H.Stop);
    if (!Start || !Stop)
      continue;
    double Step = 1.0;
    if (H.Step) {
      std::optional<double> SV = literalValue(H.Step);
      if (!SV)
        continue;
      Step = *SV;
    }
    if (Step == 0 || (Step > 0 && *Start > *Stop) ||
        (Step < 0 && *Start < *Stop))
      return true;
  }
  return false;
}

/// A vectorized statement executes exactly once where the original body
/// ran once per iteration — including zero times when a range is empty.
/// Evaluating the emitted statement over an empty slice is not a
/// faithful stand-in for not executing: empty subscripts flip
/// orientation on degenerate bases, subscripts on the other axes are
/// still bounds-checked eagerly, whole-variable writes happen that the
/// original skipped, and reductions can yield empty instead of the
/// additive identity. Emission is therefore allowed only when every
/// vectorized level's trip count is provably at least one.
/// Returns a diagnostic reason when emission is unsafe, "" when safe.
std::string CodegenDriver::emptyTripHazard(unsigned L, unsigned MaxL,
                                           bool IsReduction) const {
  if (provablyPositiveTrips(L, MaxL))
    return "";
  if (IsReduction)
    return "reduction over a possibly-empty range (trip count not provably "
           "positive)";
  return "statement may execute zero times (trip count not provably "
         "positive)";
}

/// Estimated trip count of nest level \p K: exact when the bounds fold to
/// literals (through Guards.Constants and known sizes), else the model's
/// assume-large fallback. Used only for profitability estimates — safety
/// proofs stay with provablyPositiveTrips/provablyZeroTrips.
double CodegenDriver::estimatedTrip(unsigned K) const {
  const LoopHeader &H = Nest.Loops[K - 1];
  std::optional<double> Start = literalValue(H.Start);
  std::optional<double> Stop = literalValue(H.Stop);
  double Step = 1.0;
  bool StepKnown = true;
  if (H.Step) {
    std::optional<double> SV = literalValue(H.Step);
    if (SV)
      Step = *SV;
    else
      StepKnown = false;
  }
  if (Start && Stop && StepKnown && Step != 0) {
    double Trips = std::floor((*Stop - *Start) / Step) + 1;
    return Trips > 0 ? Trips : 0.0;
  }
  return Opts.Cost ? Opts.Cost->assumedTrip() : 64.0;
}

double CodegenDriver::tripsProduct(unsigned Lo, unsigned Hi) const {
  double Product = 1.0;
  for (unsigned K = Lo; K <= Hi; ++K)
    Product *= estimatedTrip(K);
  return Product;
}

/// Number of interpreter-dispatched operations one execution of \p E
/// performs in scalar (loop-body) form.
unsigned countOps(const Expr *E) {
  if (!E)
    return 0;
  if (const auto *Un = dyn_cast<UnaryExpr>(E))
    return 1 + countOps(Un->operand());
  if (const auto *T = dyn_cast<TransposeExpr>(E))
    return 1 + countOps(T->operand());
  if (const auto *Bin = dyn_cast<BinaryExpr>(E))
    return 1 + countOps(Bin->lhs()) + countOps(Bin->rhs());
  if (const auto *R = dyn_cast<RangeExpr>(E))
    return 1 + countOps(R->start()) + countOps(R->step()) +
           countOps(R->stop());
  if (const auto *Ix = dyn_cast<IndexExpr>(E)) {
    unsigned N = 1;
    for (unsigned I = 0, K = Ix->numArgs(); I != K; ++I)
      N += countOps(Ix->arg(I));
    return N;
  }
  if (const auto *M = dyn_cast<MatrixExpr>(E)) {
    unsigned N = 1;
    for (const auto &Row : M->rows())
      for (const ExprPtr &Elt : Row)
        N += countOps(Elt.get());
    return N;
  }
  return 1; // leaf: number, identifier, colon, end
}

/// Kernel-class census of a vectorized statement's RHS, mirroring how the
/// interpreter will actually execute it: a '+'/'-' directly over a '.*'
/// runs as one fused multiply-add kernel, 'sum' as a reduction, 'repmat'
/// as a materialization, everything else pointwise.
void countKernels(const Expr *E, cost::KernelCounts &K) {
  if (!E)
    return;
  if (const auto *Bin = dyn_cast<BinaryExpr>(E)) {
    BinaryOp Op = Bin->op();
    if (Op == BinaryOp::Mul) {
      ++K.MatMul;
    } else if (Op == BinaryOp::Add || Op == BinaryOp::Sub) {
      const auto *DM = dyn_cast<BinaryExpr>(Bin->lhs());
      if (!(DM && DM->op() == BinaryOp::DotMul)) {
        const auto *RhsBin = dyn_cast<BinaryExpr>(Bin->rhs());
        DM = (RhsBin && RhsBin->op() == BinaryOp::DotMul) ? RhsBin : nullptr;
      }
      if (DM) {
        ++K.FusedMulAdd;
        countKernels(DM->lhs(), K);
        countKernels(DM->rhs(), K);
        countKernels(DM == Bin->lhs() ? Bin->rhs() : Bin->lhs(), K);
        return;
      }
      ++K.Elementwise;
    } else {
      ++K.Elementwise;
    }
    countKernels(Bin->lhs(), K);
    countKernels(Bin->rhs(), K);
    return;
  }
  if (const auto *T = dyn_cast<TransposeExpr>(E)) {
    ++K.Transpose;
    countKernels(T->operand(), K);
    return;
  }
  if (const auto *Un = dyn_cast<UnaryExpr>(E)) {
    ++K.Elementwise;
    countKernels(Un->operand(), K);
    return;
  }
  if (const auto *Ix = dyn_cast<IndexExpr>(E)) {
    Symbol Base = Ix->baseSym();
    if (!Base.empty() && Base.str() == "sum")
      ++K.Reduce;
    else if (!Base.empty() && Base.str() == "repmat")
      ++K.Repmat;
    else
      ++K.Elementwise; // slice read or other call
    for (unsigned I = 0, N = Ix->numArgs(); I != N; ++I)
      countKernels(Ix->arg(I), K);
    return;
  }
  if (const auto *M = dyn_cast<MatrixExpr>(E)) {
    ++K.Elementwise;
    for (const auto &Row : M->rows())
      for (const ExprPtr &Elt : Row)
        countKernels(Elt.get(), K);
    return;
  }
  // Leaves are free: whole-variable reads and literals dispatch no kernel.
}

std::vector<StmtPtr>
CodegenDriver::codegen(const std::vector<unsigned> &Active, unsigned Level) {
  std::vector<StmtPtr> Block;

  // Induced subgraph over the active statements, renumbered locally.
  std::map<unsigned, unsigned> GlobalToLocal;
  for (unsigned I = 0; I != Active.size(); ++I)
    GlobalToLocal[Active[I]] = I;
  DepGraph Local;
  Local.NumNodes = Active.size();
  for (const DepEdge &E : Graph.Edges) {
    auto SrcIt = GlobalToLocal.find(E.Src);
    auto DstIt = GlobalToLocal.find(E.Dst);
    if (SrcIt == GlobalToLocal.end() || DstIt == GlobalToLocal.end())
      continue;
    DepEdge Renumbered = E;
    Renumbered.Src = SrcIt->second;
    Renumbered.Dst = DstIt->second;
    Local.Edges.push_back(Renumbered);
  }

  for (const std::vector<unsigned> &LocalComp :
       stronglyConnectedComponents(Local, Level)) {
    std::vector<unsigned> Comp;
    Comp.reserve(LocalComp.size());
    for (unsigned L : LocalComp)
      Comp.push_back(Active[L]);

    if (Comp.size() == 1) {
      emitSingle(Comp[0], Level, Block);
      continue;
    }

    // A multi-statement recurrence: run the loop at this level
    // sequentially, drop its carried edges and recurse (Algorithm 1,
    // lines 22-26).
    if (Level > Nest.Loops.size()) {
      // No loop left to serialize (cannot happen for well-formed graphs,
      // but degrade gracefully): emit the statements in order.
      for (unsigned StmtIdx : Comp) {
        Block.push_back(Nest.Stmts[StmtIdx].S->clone());
        ++Result.SequentialStmts;
      }
      continue;
    }
    remark(Nest.Stmts[Comp[0]].S->loc(),
           "recurrence among " + std::to_string(Comp.size()) +
               " statements: running loop '" +
               Nest.Loops[Level - 1].indexVar() + "' sequentially");
    StmtPtr Loop = makeSequentialLoop(Level);
    auto *LoopRaw = cast<ForStmt>(Loop.get());
    LoopRaw->body() = codegen(Comp, Level + 1);
    ++Result.SequentialLoops;
    Block.push_back(std::move(Loop));
  }
  return Block;
}

void CodegenDriver::emitSingle(unsigned StmtIdx, unsigned Level,
                               std::vector<StmtPtr> &Block) {
  const NestStmt &NS = Nest.Stmts[StmtIdx];
  unsigned MaxL = NS.Depth;

  // Share dim_i results across the per-level attempts below: a subtree
  // indifferent to the level being peeled replays instead of re-deriving.
  // Single-level statements skip the memo — there is nothing to share and
  // the bookkeeping would only cost.
  std::optional<DimCheckMemo> Memo;
  if (MaxL > Level && Nest.Loops.size() <= 32)
    Memo.emplace(Nest);

  // Phase 1 — collect. Without a cost model the outermost legal level
  // wins and the scan short-circuits there (the paper's behavior, same
  // work as before). With a model every level is a candidate: an outer
  // level vectorizes more loops but may force expensive kernel shapes,
  // an inner one trades shell iterations for cheaper kernels.
  struct Candidate {
    unsigned L = 0;
    std::unique_ptr<AssignStmt> Stmt;
    unsigned Overrides = 0; ///< mul-chain variant overrides in this form
    double CostNs = 0;      ///< modeled cost, filled in phase 2
  };
  std::vector<Candidate> Cands;
  std::map<unsigned, std::string> FailWhy;

  for (unsigned L = Level; L <= MaxL; ++L) {
    // Recurrences on the statement itself at the levels still in play.
    std::set<unsigned> CarriedLevels;
    for (const DepEdge &E : Graph.Edges)
      if (E.Src == StmtIdx && E.Dst == StmtIdx && E.Level != 0 &&
          E.Level >= L)
        CarriedLevels.insert(E.Level);

    DimChecker Checker(Nest, L, MaxL, Env, DB, Opts,
                       Memo ? &*Memo : nullptr);
    std::optional<CheckedStmt> Checked;
    std::string Why;
    bool IsReduction = false;

    if (CarriedLevels.empty()) {
      Checked = Checker.checkStatement(*NS.S);
      if (!Checked)
        Why = Checker.failureReason();
    } else if (!Opts.EnableReductions) {
      Why = "recurrence (reduction vectorization disabled)";
    } else {
      // The paper's extension: vectorize the accumulation when every
      // carried level is a reduction variable (a loop absent from the
      // accumulator's subscripts).
      std::set<LoopId> ReductionVars;
      for (unsigned K = L; K <= MaxL; ++K) {
        const LoopHeader &H = Nest.Loops[K - 1];
        if (!mentionsIdentifier(*NS.S->lhs(), H.IndexSym))
          ReductionVars.insert(H.Id);
      }
      bool Covered = !ReductionVars.empty();
      for (unsigned CL : CarriedLevels)
        if (CL > Nest.Loops.size() ||
            !ReductionVars.count(Nest.Loops[CL - 1].Id))
          Covered = false;
      if (Covered) {
        Checked = Checker.checkStatement(*NS.S, ReductionVars);
        IsReduction = true;
        if (!Checked)
          Why = Checker.failureReason();
      } else {
        Why = "recurrence carried by a non-reduction loop";
      }
    }

    if (Checked) {
      ExprPtr LHS = std::move(Checked->LHS);
      ExprPtr RHS = std::move(Checked->RHS);
      for (unsigned K = L; K <= MaxL; ++K) {
        const LoopHeader &H = Nest.Loops[K - 1];
        ExprPtr Range = H.makeRangeExpr();
        LHS = substituteIdentifier(std::move(LHS), H.IndexSym, *Range);
        RHS = substituteIdentifier(std::move(RHS), H.IndexSym, *Range);
      }
      if (Opts.DistributeTransposes) {
        LHS = distributeTransposes(std::move(LHS));
        RHS = distributeTransposes(std::move(RHS));
      }
      LHS = simplifyExpr(std::move(LHS));
      RHS = simplifyExpr(std::move(RHS));
      auto NewStmt = std::make_unique<AssignStmt>(
          std::move(LHS), std::move(RHS), NS.S->loc());
      std::string Hazard = emptyTripHazard(L, MaxL, IsReduction);
      if (Hazard.empty()) {
        Candidate C;
        C.L = L;
        C.Stmt = std::move(NewStmt);
        C.Overrides = Checker.variantOverrides();
        Cands.push_back(std::move(C));
        if (!Opts.Cost)
          break; // outermost legal level wins, exactly as before
        continue;
      }
      Checked.reset();
      Why = Hazard;
    }

    if (!Why.empty())
      FailWhy[L] = Why;
  }

  // Phase 2 — decide. Without a model: first (outermost) candidate, or
  // keep the loop when none. With a model: cheapest candidate against the
  // interpreted loop form; keep-loop is always semantically safe, so the
  // comparison needs no extra guards.
  int Chosen = -1;
  double LoopNs = 0, BestVecNs = 0;
  if (!Opts.Cost) {
    Chosen = Cands.empty() ? -1 : 0;
  } else {
    LoopNs = Opts.Cost->loopCost(tripsProduct(Level, MaxL),
                                 countOps(NS.S->lhs()) + countOps(NS.S->rhs()));
    for (size_t I = 0; I != Cands.size(); ++I) {
      cost::KernelCounts K;
      countKernels(Cands[I].Stmt->rhs(), K);
      ++K.Elementwise; // the vectorized store itself
      Cands[I].CostNs =
          Opts.Cost->vectorCost(K, tripsProduct(Cands[I].L, MaxL),
                                tripsProduct(Level, Cands[I].L - 1));
      if (Chosen < 0 || Cands[I].CostNs < BestVecNs) {
        Chosen = static_cast<int>(I);
        BestVecNs = Cands[I].CostNs;
      }
    }
    if (Chosen >= 0 && BestVecNs > LoopNs)
      Chosen = -1; // the loop is cheaper; ties vectorize
  }

  if (Opts.Cost && Opts.CostLog) {
    cost::CostDecision D;
    D.Line = NS.S->loc().Line;
    D.Stmt = printStmt(*NS.S);
    while (!D.Stmt.empty() && (D.Stmt.back() == '\n' || D.Stmt.back() == ' '))
      D.Stmt.pop_back();
    D.Vectorized = Chosen >= 0;
    D.ChosenLevel = Chosen >= 0 ? Cands[Chosen].L : 0;
    D.LoopNs = LoopNs;
    D.VariantOverride = Chosen >= 0 && Cands[Chosen].Overrides > 0;
    if (Cands.empty()) {
      D.Detail = "no legal vectorization level";
    } else {
      for (const Candidate &C : Cands) {
        char Buf[64];
        std::snprintf(Buf, sizeof(Buf), "%sL%u: %.0fns",
                      D.Detail.empty() ? "" : ", ", C.L, C.CostNs);
        D.Detail += Buf;
        if (D.VectorNs == 0 || C.CostNs < D.VectorNs)
          D.VectorNs = C.CostNs;
      }
    }
    Opts.CostLog->push_back(std::move(D));
  }

  // Phase 3 — emit: sequential shells down to the chosen level (or all
  // the way when the loop is kept), then the vector statement or the
  // original body.
  std::vector<StmtPtr> *BlockPtr = &Block;
  unsigned ShellEnd = Chosen >= 0 ? Cands[Chosen].L : MaxL + 1;
  for (unsigned L = Level; L != ShellEnd; ++L) {
    auto It = FailWhy.find(L);
    if (It != FailWhy.end())
      remark(NS.S->loc(), "level " + std::to_string(L) +
                              " not vectorizable: " + It->second);
    else if (Opts.Cost)
      remark(NS.S->loc(), "level " + std::to_string(L) +
                              " kept sequential by cost model");
    StmtPtr Loop = makeSequentialLoop(L);
    auto *LoopRaw = cast<ForStmt>(Loop.get());
    ++Result.SequentialLoops;
    BlockPtr->push_back(std::move(Loop));
    BlockPtr = &LoopRaw->body();
  }

  if (Chosen >= 0) {
    Candidate &C = Cands[Chosen];
    remark(NS.S->loc(), "vectorized statement at loop level " +
                            std::to_string(C.L) + ": " + printStmt(*C.Stmt));
    Result.VariantOverrides += C.Overrides;
    BlockPtr->push_back(std::move(C.Stmt));
    ++Result.VectorizedStmts;
    return;
  }

  if (Opts.Cost && !Cands.empty()) {
    ++Result.CostKeptStmts;
    char Buf[96];
    std::snprintf(Buf, sizeof(Buf),
                  "cost model kept loop form (~%.0fns) over vectorized form "
                  "(~%.0fns)",
                  LoopNs, BestVecNs);
    remark(NS.S->loc(), Buf);
  }
  BlockPtr->push_back(NS.S->clone());
  ++Result.SequentialStmts;
}

} // namespace

CodegenResult mvec::runCodegen(const LoopNest &Nest, const DepGraph &Graph,
                               const ShapeEnv &Env, const PatternDatabase &DB,
                               const VectorizerOptions &Opts,
                               DiagnosticEngine &Diags,
                               const CodegenGuards &Guards) {
  return CodegenDriver(Nest, Graph, Env, DB, Opts, Diags, Guards).run();
}
