//===- Codegen.cpp - Allen & Kennedy codegen with dim checking --------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "vectorizer/Codegen.h"

#include "frontend/ASTPrinter.h"
#include "frontend/ASTUtils.h"
#include "frontend/Simplify.h"
#include "vectorizer/DimChecker.h"

#include <map>

using namespace mvec;

namespace {

class CodegenDriver {
public:
  CodegenDriver(const LoopNest &Nest, const DepGraph &Graph,
                const ShapeEnv &Env, const PatternDatabase &DB,
                const VectorizerOptions &Opts, DiagnosticEngine &Diags)
      : Nest(Nest), Graph(Graph), Env(Env), DB(DB), Opts(Opts), Diags(Diags) {
  }

  CodegenResult run() {
    std::vector<unsigned> All;
    for (unsigned I = 0; I != Nest.Stmts.size(); ++I)
      All.push_back(I);
    Result.Stmts = codegen(All, 1);
    return std::move(Result);
  }

private:
  std::vector<StmtPtr> codegen(const std::vector<unsigned> &Active,
                               unsigned Level);
  void emitSingle(unsigned StmtIdx, unsigned Level,
                  std::vector<StmtPtr> &Block);

  StmtPtr makeSequentialLoop(unsigned Level) const {
    const LoopHeader &H = Nest.Loops[Level - 1];
    return std::make_unique<ForStmt>(H.IndexVar, H.makeRangeExpr(),
                                     std::vector<StmtPtr>());
  }

  void remark(SourceLoc Loc, const std::string &Message) {
    if (Opts.EmitRemarks)
      Diags.remark(Loc, Message);
  }

  const LoopNest &Nest;
  const DepGraph &Graph;
  const ShapeEnv &Env;
  const PatternDatabase &DB;
  const VectorizerOptions &Opts;
  DiagnosticEngine &Diags;
  CodegenResult Result;
};

std::vector<StmtPtr>
CodegenDriver::codegen(const std::vector<unsigned> &Active, unsigned Level) {
  std::vector<StmtPtr> Block;

  // Induced subgraph over the active statements, renumbered locally.
  std::map<unsigned, unsigned> GlobalToLocal;
  for (unsigned I = 0; I != Active.size(); ++I)
    GlobalToLocal[Active[I]] = I;
  DepGraph Local;
  Local.NumNodes = Active.size();
  for (const DepEdge &E : Graph.Edges) {
    auto SrcIt = GlobalToLocal.find(E.Src);
    auto DstIt = GlobalToLocal.find(E.Dst);
    if (SrcIt == GlobalToLocal.end() || DstIt == GlobalToLocal.end())
      continue;
    DepEdge Renumbered = E;
    Renumbered.Src = SrcIt->second;
    Renumbered.Dst = DstIt->second;
    Local.Edges.push_back(Renumbered);
  }

  for (const std::vector<unsigned> &LocalComp :
       stronglyConnectedComponents(Local, Level)) {
    std::vector<unsigned> Comp;
    Comp.reserve(LocalComp.size());
    for (unsigned L : LocalComp)
      Comp.push_back(Active[L]);

    if (Comp.size() == 1) {
      emitSingle(Comp[0], Level, Block);
      continue;
    }

    // A multi-statement recurrence: run the loop at this level
    // sequentially, drop its carried edges and recurse (Algorithm 1,
    // lines 22-26).
    if (Level > Nest.Loops.size()) {
      // No loop left to serialize (cannot happen for well-formed graphs,
      // but degrade gracefully): emit the statements in order.
      for (unsigned StmtIdx : Comp) {
        Block.push_back(Nest.Stmts[StmtIdx].S->clone());
        ++Result.SequentialStmts;
      }
      continue;
    }
    remark(Nest.Stmts[Comp[0]].S->loc(),
           "recurrence among " + std::to_string(Comp.size()) +
               " statements: running loop '" +
               Nest.Loops[Level - 1].IndexVar + "' sequentially");
    StmtPtr Loop = makeSequentialLoop(Level);
    auto *LoopRaw = cast<ForStmt>(Loop.get());
    LoopRaw->body() = codegen(Comp, Level + 1);
    ++Result.SequentialLoops;
    Block.push_back(std::move(Loop));
  }
  return Block;
}

void CodegenDriver::emitSingle(unsigned StmtIdx, unsigned Level,
                               std::vector<StmtPtr> &Block) {
  const NestStmt &NS = Nest.Stmts[StmtIdx];
  unsigned MaxL = NS.Depth;
  std::vector<StmtPtr> *BlockPtr = &Block;

  for (unsigned L = Level; L <= MaxL; ++L) {
    // Recurrences on the statement itself at the levels still in play.
    std::set<unsigned> CarriedLevels;
    for (const DepEdge &E : Graph.Edges)
      if (E.Src == StmtIdx && E.Dst == StmtIdx && E.Level != 0 &&
          E.Level >= L)
        CarriedLevels.insert(E.Level);

    DimChecker Checker(Nest, L, MaxL, Env, DB, Opts);
    std::optional<CheckedStmt> Checked;
    std::string Why;

    if (CarriedLevels.empty()) {
      Checked = Checker.checkStatement(*NS.S);
      if (!Checked)
        Why = Checker.failureReason();
    } else if (!Opts.EnableReductions) {
      Why = "recurrence (reduction vectorization disabled)";
    } else {
      // The paper's extension: vectorize the accumulation when every
      // carried level is a reduction variable (a loop absent from the
      // accumulator's subscripts).
      std::set<LoopId> ReductionVars;
      for (unsigned K = L; K <= MaxL; ++K) {
        const LoopHeader &H = Nest.Loops[K - 1];
        if (!mentionsIdentifier(*NS.S->lhs(), H.IndexVar))
          ReductionVars.insert(H.Id);
      }
      bool Covered = !ReductionVars.empty();
      for (unsigned CL : CarriedLevels)
        if (CL > Nest.Loops.size() ||
            !ReductionVars.count(Nest.Loops[CL - 1].Id))
          Covered = false;
      if (Covered) {
        Checked = Checker.checkStatement(*NS.S, ReductionVars);
        if (!Checked)
          Why = Checker.failureReason();
      } else {
        Why = "recurrence carried by a non-reduction loop";
      }
    }

    if (Checked) {
      ExprPtr LHS = std::move(Checked->LHS);
      ExprPtr RHS = std::move(Checked->RHS);
      for (unsigned K = L; K <= MaxL; ++K) {
        const LoopHeader &H = Nest.Loops[K - 1];
        ExprPtr Range = H.makeRangeExpr();
        LHS = substituteIdentifier(std::move(LHS), H.IndexVar, *Range);
        RHS = substituteIdentifier(std::move(RHS), H.IndexVar, *Range);
      }
      if (Opts.DistributeTransposes) {
        LHS = distributeTransposes(std::move(LHS));
        RHS = distributeTransposes(std::move(RHS));
      }
      LHS = simplifyExpr(std::move(LHS));
      RHS = simplifyExpr(std::move(RHS));
      auto NewStmt = std::make_unique<AssignStmt>(
          std::move(LHS), std::move(RHS), NS.S->loc());
      remark(NS.S->loc(), "vectorized statement at loop level " +
                              std::to_string(L) + ": " +
                              printStmt(*NewStmt));
      BlockPtr->push_back(std::move(NewStmt));
      ++Result.VectorizedStmts;
      return;
    }

    if (!Why.empty())
      remark(NS.S->loc(), "level " + std::to_string(L) +
                              " not vectorizable: " + Why);
    StmtPtr Loop = makeSequentialLoop(L);
    auto *LoopRaw = cast<ForStmt>(Loop.get());
    ++Result.SequentialLoops;
    BlockPtr->push_back(std::move(Loop));
    BlockPtr = &LoopRaw->body();
  }

  // No level vectorized: the statement stays inside the sequential loops
  // materialized above.
  BlockPtr->push_back(NS.S->clone());
  ++Result.SequentialStmts;
}

} // namespace

CodegenResult mvec::runCodegen(const LoopNest &Nest, const DepGraph &Graph,
                               const ShapeEnv &Env, const PatternDatabase &DB,
                               const VectorizerOptions &Opts,
                               DiagnosticEngine &Diags) {
  return CodegenDriver(Nest, Graph, Env, DB, Opts, Diags).run();
}
