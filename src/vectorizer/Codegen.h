//===- Codegen.h - Allen & Kennedy codegen with dim checking ----*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Algorithm 1 (codegen_dim): partitions the nest's DDG into
/// SCCs, visits them in topological order, and for each acyclic component
/// tries to vectorize at the outermost possible level, peeling sequential
/// loops one at a time on failure. Recurrences either vectorize as
/// additive reductions (the paper's extension) or serialize their carrier
/// loop and recurse.
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_VECTORIZER_CODEGEN_H
#define MVEC_VECTORIZER_CODEGEN_H

#include "deps/DepAnalysis.h"
#include "deps/DepGraph.h"
#include "deps/LoopNest.h"
#include "patterns/PatternDatabase.h"
#include "shape/ShapeEnv.h"
#include "support/Diagnostics.h"
#include "vectorizer/Options.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace mvec {

/// Program-level facts codegen consults to prove loop trip counts
/// positive. A vectorized statement executes exactly once where the
/// original body ran once per iteration — including zero times when a
/// range is empty — and empty-range slice evaluation is not a faithful
/// stand-in for not executing (orientations flip on degenerate bases,
/// subscripts on sibling axes are still bounds-checked, reductions can
/// yield empty instead of the identity). Emission therefore requires
/// every vectorized level's trip count to be provably at least one.
struct CodegenGuards {
  /// Names bound to a known literal constant at the nest's entry; used
  /// to prove trip counts positive (e.g. "n = 5;" upstream of 1:n).
  /// Symbol keys order by content, so iteration stays deterministic.
  std::map<Symbol, double> Constants;
  /// Row/column extents of variables constructed with known sizes
  /// (x = rand(5,7), zeros(n,1) with n constant, ...); lets bounds like
  /// 1:size(x,2) prove their trip counts.
  std::map<Symbol, std::pair<double, double>> KnownDims;
  /// Every name assigned anywhere in the program. A call like size(A,1)
  /// is only folded when "size" is not among them — an assignment
  /// anywhere shadows the builtin.
  std::set<Symbol> AssignedNames;
};

/// Outcome of code generation for one loop nest.
struct CodegenResult {
  /// Replacement statements for the nest's root loop.
  std::vector<StmtPtr> Stmts;
  /// Number of original statements emitted in vector form.
  unsigned VectorizedStmts = 0;
  /// Number left inside sequential loops.
  unsigned SequentialStmts = 0;
  /// Sequential for-loops materialized in the output (0 when the whole
  /// nest vectorized).
  unsigned SequentialLoops = 0;
  /// Statements a legal vectorization existed for but the cost model
  /// priced slower than the interpreted loop (always 0 without a model).
  unsigned CostKeptStmts = 0;
  /// Mul-chain associations where the cost model overrode the default
  /// most-reductions-folded choice, counted over emitted statements only.
  unsigned VariantOverrides = 0;
};

/// Runs codegen_dim over \p Nest with dependence graph \p Graph.
CodegenResult runCodegen(const LoopNest &Nest, const DepGraph &Graph,
                         const ShapeEnv &Env, const PatternDatabase &DB,
                         const VectorizerOptions &Opts,
                         DiagnosticEngine &Diags,
                         const CodegenGuards &Guards = {});

} // namespace mvec

#endif // MVEC_VECTORIZER_CODEGEN_H
