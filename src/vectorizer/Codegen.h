//===- Codegen.h - Allen & Kennedy codegen with dim checking ----*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Algorithm 1 (codegen_dim): partitions the nest's DDG into
/// SCCs, visits them in topological order, and for each acyclic component
/// tries to vectorize at the outermost possible level, peeling sequential
/// loops one at a time on failure. Recurrences either vectorize as
/// additive reductions (the paper's extension) or serialize their carrier
/// loop and recurse.
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_VECTORIZER_CODEGEN_H
#define MVEC_VECTORIZER_CODEGEN_H

#include "deps/DepAnalysis.h"
#include "deps/DepGraph.h"
#include "deps/LoopNest.h"
#include "patterns/PatternDatabase.h"
#include "shape/ShapeEnv.h"
#include "support/Diagnostics.h"
#include "vectorizer/Options.h"

#include <vector>

namespace mvec {

/// Outcome of code generation for one loop nest.
struct CodegenResult {
  /// Replacement statements for the nest's root loop.
  std::vector<StmtPtr> Stmts;
  /// Number of original statements emitted in vector form.
  unsigned VectorizedStmts = 0;
  /// Number left inside sequential loops.
  unsigned SequentialStmts = 0;
  /// Sequential for-loops materialized in the output (0 when the whole
  /// nest vectorized).
  unsigned SequentialLoops = 0;
};

/// Runs codegen_dim over \p Nest with dependence graph \p Graph.
CodegenResult runCodegen(const LoopNest &Nest, const DepGraph &Graph,
                         const ShapeEnv &Env, const PatternDatabase &DB,
                         const VectorizerOptions &Opts,
                         DiagnosticEngine &Diags);

} // namespace mvec

#endif // MVEC_VECTORIZER_CODEGEN_H
