//===- NestCache.h - Loop-nest vectorization result cache -------*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thread-safe, content-addressed cache of per-loop-nest vectorization
/// outcomes, sitting below the service layer's whole-script ContentCache:
/// two different scripts that share a loop nest (same printed text, same
/// shapes and guard facts for every mentioned variable, same index-liveness
/// verdicts, same configuration) reuse the nest's replacement statements
/// without re-running dependence analysis and dimension checking.
///
/// The key is the full context string, not just its hash, so a 64-bit
/// collision degrades to a miss instead of splicing the wrong code. Values
/// are heap-owned AST clones (allocated outside any arena scope); lookup
/// re-clones them under the caller's active arena, so a cached nest can be
/// spliced into any program. Negative outcomes ("analysis ran, nothing
/// improved") are cached too — they are exactly the expensive case.
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_VECTORIZER_NESTCACHE_H
#define MVEC_VECTORIZER_NESTCACHE_H

#include "frontend/AST.h"
#include "support/ContentHash.h" // fnv1aHash
#include "vectorizer/Options.h"
#include "vectorizer/Vectorizer.h"

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace mvec {

/// Packs every output-affecting VectorizerOptions toggle into a bitmask.
/// New options must be added here, or distinct configurations would share
/// cache entries (both in this cache and in the service's ContentCache).
uint64_t optionsFingerprint(const VectorizerOptions &Opts);

/// Bounded LRU map from a nest context key to the nest's vectorization
/// outcome. All methods are safe to call concurrently; clones handed out
/// by lookup() belong to the calling thread's active arena scope.
class NestCache {
public:
  /// \p Capacity of zero disables caching (every lookup misses, inserts
  /// are dropped).
  explicit NestCache(size_t Capacity = 1024) : Capacity(Capacity) {}

  /// What the driver did with one nest.
  struct Outcome {
    /// False when analysis ran but nothing improved (the nest stays).
    bool Replaced = false;
    /// Replacement statements when Replaced (possibly empty: a provably
    /// zero-trip nest is deleted outright).
    std::vector<StmtPtr> Stmts;
    /// Statistics the nest's analysis contributed, replayed on a hit.
    VectorizeStats Delta;
  };

  /// Returns a clone of the outcome stored under \p Key (statements
  /// cloned under the caller's arena scope) and refreshes its recency.
  std::optional<Outcome> lookup(const std::string &Key);

  /// Stores \p Replaced / \p Stmts / \p Delta under \p Key, evicting the
  /// least recently used entry when full. \p Stmts may be null when the
  /// nest was kept; the statements are cloned to the heap, the caller
  /// keeps ownership of the originals.
  void insert(const std::string &Key, bool Replaced,
              const std::vector<StmtPtr> *Stmts, const VectorizeStats &Delta);

  size_t size() const;
  size_t capacity() const { return Capacity; }
  uint64_t hits() const;
  uint64_t misses() const;
  uint64_t evictions() const;

private:
  struct Entry {
    uint64_t Hash;
    std::string Key;
    bool Replaced;
    /// Shared so a lookup can pin the statements with one refcount bump
    /// and clone them after releasing the mutex; eviction under a
    /// concurrent reader only drops a reference.
    std::shared_ptr<const std::vector<StmtPtr>> Stmts;
    VectorizeStats Delta;
  };

  const size_t Capacity;
  mutable std::mutex Mutex;
  /// Most recently used at the front.
  std::list<Entry> LRU;
  std::unordered_map<uint64_t, std::list<Entry>::iterator> Index;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Evictions = 0;
};

} // namespace mvec

#endif // MVEC_VECTORIZER_NESTCACHE_H
