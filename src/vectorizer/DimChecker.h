//===- DimChecker.h - Vectorized dimensionality checking --------*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The core of the paper: computes vectorized dimensionalities dim_i(e)
/// bottom-up over a statement's parse tree (Table 1), checks compatibility
/// of assignments and pointwise operators (Sec. 2.1), inserts transposes
/// (Sec. 2.2), applies pattern-database transformations (Sec. 3), and
/// handles additive reductions with the Gamma operator, reduced-variable
/// sets rho(e), implicit reduction through matrix multiplication and chain
/// re-association (Sec. 3.1).
///
/// Checking and rewriting are fused: a successful check returns the
/// transformed statement, still containing the loop index variables (index
/// substitution happens in the code generator).
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_VECTORIZER_DIMCHECKER_H
#define MVEC_VECTORIZER_DIMCHECKER_H

#include "deps/LoopNest.h"
#include "patterns/PatternDatabase.h"
#include "shape/ShapeEnv.h"
#include "vectorizer/Options.h"

#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace mvec {

/// A checked (and possibly rewritten) expression with its vectorized
/// dimensionality and reduced-variable set rho.
struct CheckedExpr {
  ExprPtr E;
  Dimensionality Dims;
  std::set<LoopId> Rho;
  /// Modeled kernel cost (ns) accumulated through '*' combinations; only
  /// meaningful relative to sibling candidates of the same mul chain,
  /// where it ranks associative groupings (matrix-chain ordering, dot
  /// product vs matmul) when a cost model is active.
  double CostNs = 0;

  CheckedExpr clone() const {
    CheckedExpr C;
    C.E = E->clone();
    C.Dims = Dims;
    C.Rho = Rho;
    C.CostNs = CostNs;
    return C;
  }
};

/// Result of checking a whole assignment statement.
struct CheckedStmt {
  ExprPtr LHS;
  ExprPtr RHS;
};

/// Cross-level memo for check() results. The code generator retries each
/// statement at successive start levels L, L+1, ... against the same nest,
/// environment, database and options; a subexpression's result depends only
/// on WHICH of its mentioned index variables are vectorized, i.e. on the
/// suffix {m >= L} of its mentioned levels — fully determined by the
/// smallest mentioned level >= L. Entries are keyed by (node, that level),
/// so a subtree indifferent to the newly-sequential level replays its
/// earlier result (including the exact failure diagnostics) instead of
/// re-deriving it. Reduction checks carry gamma state and bypass the memo.
/// An instance is only valid for one (nest, MaxLevel, Env, DB, Opts)
/// configuration and must not outlive the statements it has seen.
class DimCheckMemo {
public:
  explicit DimCheckMemo(const LoopNest &Nest) {
    for (const LoopHeader &H : Nest.Loops)
      LevelSyms.push_back(H.IndexSym);
  }

private:
  friend class DimChecker;

  struct Entry {
    /// check()'s result; nullopt = the subtree failed.
    std::optional<CheckedExpr> Result;
    /// The failure reason this subtree reported when computed fresh (may
    /// be set even on success: an inner alternative can fail before a
    /// later one succeeds). Replayed through fail()'s first-wins rule.
    std::string FailureDelta;
  };

  /// Bitmask with bit L-1 set iff nest level L's index variable occurs
  /// in \p E. Memoized per node.
  uint32_t levelsMask(const Expr &E);
  /// Smallest mentioned level >= \p Level, or 0 when \p E is invariant to
  /// every level from \p Level on.
  unsigned suffixKey(const Expr &E, unsigned Level);

  struct KeyHash {
    size_t operator()(const std::pair<const Expr *, unsigned> &K) const {
      return std::hash<const Expr *>()(K.first) ^
             (static_cast<size_t>(K.second) * 0x9e3779b97f4a7c15ULL);
    }
  };

  std::vector<Symbol> LevelSyms;
  std::unordered_map<const Expr *, uint32_t> Masks;
  std::unordered_map<std::pair<const Expr *, unsigned>, Entry, KeyHash>
      Cache;
};

class DimChecker {
public:
  /// Prepares a checker that vectorizes nest loops [Level, MaxLevel]
  /// (1-based, inclusive); loops below Level run sequentially and their
  /// index variables are treated as scalars.
  /// \p Memo, when given, is shared across the per-level checkers of one
  /// statement (see DimCheckMemo for the validity rules).
  DimChecker(const LoopNest &Nest, unsigned Level, unsigned MaxLevel,
             const ShapeEnv &Env, const PatternDatabase &DB,
             const VectorizerOptions &Opts, DimCheckMemo *Memo = nullptr);

  /// The paper's vectDimsOkay: checks \p S and returns the transformed
  /// statement on success. \p ReductionLoops names the loops to reduce
  /// over (empty for plain statements); when nonempty, \p S must have the
  /// additive-reduction form A(J) = A(J) +/- E.
  std::optional<CheckedStmt>
  checkStatement(const AssignStmt &S,
                 const std::set<LoopId> &ReductionLoops = {});

  /// Why the last checkStatement failed.
  const std::string &failureReason() const { return Failure; }

  /// Times the active cost model picked a mul-chain association other
  /// than the default most-reductions-folded / discovery-order choice.
  /// Always 0 when VectorizerOptions::Cost is null.
  unsigned variantOverrides() const { return VariantOverrides; }

  /// Checks a single expression (exposed for unit tests).
  std::optional<CheckedExpr> checkExpr(const Expr &E);

  /// Identifies the additive-reduction form A(J) = A(J) +/- E. On success
  /// returns the non-accumulator expression E and sets \p IsSub for the
  /// '-' form.
  static const Expr *matchAdditiveReduction(const AssignStmt &S,
                                            bool &IsSub);

private:
  std::optional<CheckedExpr> check(const Expr &E);
  std::optional<CheckedExpr> checkImpl(const Expr &E);
  std::optional<CheckedExpr> checkLValue(const Expr &E);
  std::optional<CheckedExpr> checkBinary(const BinaryExpr &E);
  std::optional<CheckedExpr> checkIndex(const IndexExpr &E);
  std::optional<CheckedExpr> checkCall(const IndexExpr &E,
                                       const std::string &Name);

  /// Pointwise combination with scalar rules, transpose repair and the
  /// pattern database. \p Op is the effective (already elementwise)
  /// operator.
  std::optional<CheckedExpr> combinePointwise(BinaryOp Op, CheckedExpr L,
                                              CheckedExpr R);

  /// One '*' combination: scalar forms, pointwise rewriting to '.*',
  /// implicit reduction by native matrix multiplication, and the product
  /// patterns, each modulo operand transposition.
  std::optional<CheckedExpr> combineMul(const CheckedExpr &L,
                                        const CheckedExpr &R);

  /// Re-associates a maximal multiplication chain (Sec. 3.1 footnote).
  std::optional<CheckedExpr> checkMulChain(const BinaryExpr &E);

  /// The Gamma reduction operator: reduce \p E along loop \p Loop, either
  /// by sum() along the matching dimension or by trip-count scaling.
  CheckedExpr gammaReduce(CheckedExpr E, LoopId Loop);

  /// rho-consistency for non-additive operators: a variable reduced in one
  /// operand must not appear in the other's dimensionality.
  bool rhoConsistent(const CheckedExpr &L, const CheckedExpr &R) const;

  /// Estimated extent of one abstract dimension: 1 for One, the loop's
  /// constant trip count for a Range with literal bounds, else the cost
  /// model's assumed-large fallback. Used only for variant ranking.
  double dimExtent(DimSymbol D) const;
  /// Product of dimExtent over \p D's symbols.
  double dimsElems(const Dimensionality &D) const;

  /// Loop id when \p Name is the index variable of a vectorized loop.
  std::optional<LoopId> vectorizedLoop(Symbol Name) const;
  /// True when \p Name is the index of a sequential (outer) loop.
  bool isSequentialLoopVar(Symbol Name) const;

  const LoopHeader *headerOf(LoopId Id) const { return Nest.headerFor(Id); }

  std::optional<CheckedExpr> fail(const std::string &Reason) {
    if (Failure.empty())
      Failure = Reason;
    return std::nullopt;
  }

  /// Recursion ceiling for check(). The parser caps parse trees far below
  /// this, so the limit only trips on programmatically built ASTs; tripping
  /// is a clean per-statement failure, not a crash. Sized so the guard fires
  /// before the stack runs out even under ASan's inflated frames.
  static constexpr unsigned MaxCheckDepth = 1200;

  PatternContext patternContext(const PatternBindings &Bindings) const;

  const LoopNest &Nest;
  unsigned Level;
  unsigned MaxLevel;
  const ShapeEnv &Env;
  const PatternDatabase &DB;
  const VectorizerOptions &Opts;
  DimCheckMemo *Memo;
  std::set<LoopId> ReductionLoops;
  std::string Failure;
  unsigned Depth = 0;
  unsigned VariantOverrides = 0;
};

} // namespace mvec

#endif // MVEC_VECTORIZER_DIMCHECKER_H
