//===- NestCache.cpp - Loop-nest vectorization result cache -----------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "vectorizer/NestCache.h"

#include "cost/CostModel.h"
#include "support/Arena.h"

using namespace mvec;

uint64_t mvec::optionsFingerprint(const VectorizerOptions &Opts) {
  uint64_t Bits = 0;
  auto Pack = [&Bits](bool Flag) { Bits = (Bits << 1) | (Flag ? 1 : 0); };
  Pack(Opts.EnableTransposes);
  Pack(Opts.EnablePatterns);
  Pack(Opts.EnableReductions);
  Pack(Opts.EnableReassociation);
  Pack(Opts.NormalizeLoops);
  Pack(Opts.DistributeTransposes);
  Pack(Opts.EmitRemarks);
  // An active cost model changes which form a nest compiles to, so its
  // calibration fingerprint (profile checksum + SIMD level) becomes part
  // of the options identity: NestCache, ContentCache, and the daemon
  // DiskStore all key off this value and must never serve a result
  // produced under a different calibration.
  Pack(Opts.Cost != nullptr);
  if (Opts.Cost)
    Bits = fnv1aMix(Opts.Cost->fingerprint(), Bits);
  return Bits;
}

std::optional<NestCache::Outcome> NestCache::lookup(const std::string &Key) {
  uint64_t Hash = fnv1aHash(Key);
  Outcome O;
  std::shared_ptr<const std::vector<StmtPtr>> Pinned;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = Index.find(Hash);
    // A hash collision (different key, same 64 bits) is served as a miss;
    // the subsequent insert then overwrites the colliding entry.
    if (It == Index.end() || It->second->Key != Key) {
      ++Misses;
      return std::nullopt;
    }
    ++Hits;
    LRU.splice(LRU.begin(), LRU, It->second);
    const Entry &E = *It->second;
    O.Replaced = E.Replaced;
    O.Delta = E.Delta;
    Pinned = E.Stmts;
  }
  // Cloning is the expensive half of a hit; the refcount keeps the entry's
  // statements alive even if it is evicted while we copy, so the tree walk
  // runs outside the critical section.
  if (Pinned) {
    O.Stmts.reserve(Pinned->size());
    // Clones land in the calling thread's active arena scope — exactly
    // where the driver wants them spliced.
    for (const StmtPtr &S : *Pinned)
      O.Stmts.push_back(S->clone());
  }
  return O;
}

void NestCache::insert(const std::string &Key, bool Replaced,
                       const std::vector<StmtPtr> *Stmts,
                       const VectorizeStats &Delta) {
  if (Capacity == 0)
    return;
  // Cached statements outlive any one program, so their nodes must come
  // from the heap no matter what arena the caller is running under. The
  // clones are built (and, on overwrite, the old ones destroyed) outside
  // the critical section.
  std::shared_ptr<std::vector<StmtPtr>> Clones;
  if (Stmts) {
    ArenaScope ForceHeap(nullptr);
    Clones = std::make_shared<std::vector<StmtPtr>>();
    Clones->reserve(Stmts->size());
    for (const StmtPtr &S : *Stmts)
      Clones->push_back(S->clone());
  }
  uint64_t Hash = fnv1aHash(Key);
  std::shared_ptr<const std::vector<StmtPtr>> Displaced;
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Index.find(Hash);
  if (It != Index.end()) {
    Entry &E = *It->second;
    E.Key = Key;
    E.Replaced = Replaced;
    Displaced = std::move(E.Stmts);
    E.Stmts = std::move(Clones);
    E.Delta = Delta;
    LRU.splice(LRU.begin(), LRU, It->second);
    return;
  }
  if (LRU.size() >= Capacity) {
    Index.erase(LRU.back().Hash);
    Displaced = std::move(LRU.back().Stmts);
    LRU.pop_back();
    ++Evictions;
  }
  LRU.push_front(Entry{Hash, Key, Replaced, std::move(Clones), Delta});
  Index[Hash] = LRU.begin();
}

size_t NestCache::size() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return LRU.size();
}

uint64_t NestCache::hits() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Hits;
}

uint64_t NestCache::misses() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Misses;
}

uint64_t NestCache::evictions() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Evictions;
}
