//===- Qos.h - Admission control and per-tenant QoS -------------*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The daemon's admission layer, sitting in front of the sharded
/// services. Two mechanisms:
///
///   * Per-tenant token buckets: each client id refills at a configured
///     rate up to a burst ceiling; a request that finds the bucket empty
///     is shed (served as degraded passthrough, never an error). This
///     keeps one hot tenant from starving the rest.
///   * Queue-depth shedding lives in the Daemon itself (it owns the
///     per-shard in-flight counters); this file only defines the verdict
///     vocabulary shared by both.
///
/// Buckets take the current time as a parameter (rather than reading the
/// clock themselves) so tests can drive them deterministically. Limits
/// are hot-reloadable: setLimits() retunes every existing bucket without
/// resetting shed/admit accounting.
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_DAEMON_QOS_H
#define MVEC_DAEMON_QOS_H

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace mvec {
namespace daemon {

/// Why a request was (or wasn't) admitted.
enum class Admission {
  Admitted,
  ShedQos,   ///< the tenant's token bucket was empty
  ShedQueue, ///< the target shard's queue was beyond its depth limit
};

const char *admissionName(Admission A);

/// A standard token bucket. Not internally synchronized — the owner
/// (AdmissionController) serializes access.
struct TokenBucket {
  double RatePerSec = 0; ///< refill rate; 0 disables limiting
  double Burst = 1;      ///< bucket capacity
  double Tokens = 1;
  std::chrono::steady_clock::time_point Last{};

  /// Refills for the elapsed time and tries to take one token.
  bool tryTake(std::chrono::steady_clock::time_point Now);
};

struct TenantStats {
  std::string Tenant;
  uint64_t Admitted = 0;
  uint64_t Shed = 0;
};

/// Tracks one token bucket (plus admit/shed counters) per tenant id.
/// Thread-safe.
class AdmissionController {
public:
  /// \p RatePerSec of 0 admits everything (accounting still runs).
  AdmissionController(double RatePerSec, double Burst)
      : RatePerSec(RatePerSec), Burst(Burst < 1 ? 1 : Burst) {}

  /// Charges one request to \p Tenant's bucket at \p Now.
  bool admit(const std::string &Tenant,
             std::chrono::steady_clock::time_point Now);

  /// Hot-reloads the limits; existing buckets keep their fill level
  /// (clamped to the new burst) and counters.
  void setLimits(double NewRatePerSec, double NewBurst);

  double ratePerSec() const;
  double burst() const;

  /// Per-tenant accounting snapshot, sorted by tenant id.
  std::vector<TenantStats> snapshot() const;
  uint64_t totalShed() const;

private:
  struct Tenant {
    TokenBucket Bucket;
    uint64_t Admitted = 0;
    uint64_t Shed = 0;
  };

  mutable std::mutex Mutex;
  double RatePerSec;
  double Burst;
  std::unordered_map<std::string, Tenant> Tenants;
};

} // namespace daemon
} // namespace mvec

#endif // MVEC_DAEMON_QOS_H
