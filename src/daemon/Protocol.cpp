//===- Protocol.cpp - mvecd wire protocol -----------------------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "daemon/Protocol.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

using namespace mvec::daemon;

const char *mvec::daemon::verbName(Verb V) {
  switch (V) {
  case Verb::Vec:
    return "VEC";
  case Verb::Ping:
    return "PING";
  case Verb::Stats:
    return "STATS";
  case Verb::Config:
    return "CONFIG";
  case Verb::Shutdown:
    return "SHUTDOWN";
  }
  return "PING";
}

bool mvec::daemon::verbFromName(const std::string &Name, Verb &V) {
  for (Verb Candidate : {Verb::Vec, Verb::Ping, Verb::Stats, Verb::Config,
                         Verb::Shutdown}) {
    if (Name == verbName(Candidate)) {
      V = Candidate;
      return true;
    }
  }
  return false;
}

std::string mvec::daemon::escapeHeaderValue(const std::string &Value) {
  std::string Out;
  Out.reserve(Value.size());
  for (char C : Value) {
    if (C == '\\')
      Out += "\\\\";
    else if (C == '\n')
      Out += "\\n";
    else if (C == '\r')
      Out += "\\r";
    else
      Out += C;
  }
  return Out;
}

std::string mvec::daemon::unescapeHeaderValue(const std::string &Value) {
  std::string Out;
  Out.reserve(Value.size());
  for (size_t I = 0; I != Value.size(); ++I) {
    if (Value[I] != '\\' || I + 1 == Value.size()) {
      Out += Value[I];
      continue;
    }
    char Next = Value[++I];
    if (Next == 'n')
      Out += '\n';
    else if (Next == 'r')
      Out += '\r';
    else
      Out += Next;
  }
  return Out;
}

namespace {

void appendHeader(std::string &Out, const char *Name,
                  const std::string &Value) {
  Out += Name;
  Out += ": ";
  Out += escapeHeaderValue(Value);
  Out += '\n';
}

} // namespace

std::string mvec::daemon::serializeRequest(const Request &R) {
  std::string Out = "MVEC/1 ";
  Out += verbName(R.V);
  Out += '\n';
  if (!R.Tenant.empty() && R.Tenant != "anonymous")
    appendHeader(Out, "tenant", R.Tenant);
  if (!R.Name.empty())
    appendHeader(Out, "name", R.Name);
  if (R.V == Verb::Vec)
    appendHeader(Out, "validate", R.Validate ? "1" : "0");
  if (R.DeadlineMs != 0)
    appendHeader(Out, "deadline-ms", std::to_string(R.DeadlineMs));
  appendHeader(Out, "content-length", std::to_string(R.Body.size()));
  Out += '\n';
  Out += R.Body;
  return Out;
}

std::string mvec::daemon::serializeResponse(const Response &R) {
  std::string Out = "MVEC/1 ";
  Out += std::to_string(R.Code);
  Out += R.Code == 200 ? " ok" : " bad-request";
  Out += '\n';
  appendHeader(Out, "status", R.Status);
  appendHeader(Out, "error-class", R.ErrorClass);
  appendHeader(Out, "cache", R.CacheTier);
  appendHeader(Out, "attempts", std::to_string(R.Attempts));
  appendHeader(Out, "shard", std::to_string(R.Shard));
  if (!R.Message.empty())
    appendHeader(Out, "message", R.Message);
  appendHeader(Out, "content-length", std::to_string(R.Body.size()));
  Out += '\n';
  Out += R.Body;
  return Out;
}

std::string
FrameReader::Frame::header(const std::string &Name,
                           const std::string &Default) const {
  for (auto It = Headers.rbegin(); It != Headers.rend(); ++It)
    if (It->first == Name)
      return It->second;
  return Default;
}

FrameReader::Result FrameReader::next(Frame &Out, std::string &Error) {
  if (Poisoned) {
    Error = "reader poisoned by an earlier malformed frame";
    return Result::Malformed;
  }
  // Locate the end of the header block first; the frame is not parsed at
  // all until the blank line has arrived.
  size_t HeaderEnd = Buffer.find("\n\n");
  if (HeaderEnd == std::string::npos) {
    if (Buffer.size() > MaxHeaderBytes) {
      Poisoned = true;
      Error = "header block exceeds " + std::to_string(MaxHeaderBytes) +
              " bytes";
      return Result::Malformed;
    }
    return Result::NeedMore;
  }
  if (HeaderEnd > MaxHeaderBytes) {
    Poisoned = true;
    Error = "header block exceeds " + std::to_string(MaxHeaderBytes) +
            " bytes";
    return Result::Malformed;
  }

  // Parse the start line + headers from the block [0, HeaderEnd).
  Frame F;
  size_t LineStart = 0;
  bool First = true;
  uint64_t ContentLength = 0;
  while (LineStart <= HeaderEnd) {
    size_t LineEnd = Buffer.find('\n', LineStart);
    std::string Line = Buffer.substr(LineStart, LineEnd - LineStart);
    LineStart = LineEnd + 1;
    if (First) {
      First = false;
      size_t Pos = 0;
      while (Pos < Line.size()) {
        size_t Space = Line.find(' ', Pos);
        if (Space == std::string::npos)
          Space = Line.size();
        if (Space > Pos)
          F.StartWords.push_back(Line.substr(Pos, Space - Pos));
        Pos = Space + 1;
      }
      if (F.StartWords.empty() || F.StartWords[0] != "MVEC/1") {
        Poisoned = true;
        Error = "start line is not 'MVEC/1 ...'";
        return Result::Malformed;
      }
      continue;
    }
    if (Line.empty())
      break; // The blank line: header block done.
    size_t Colon = Line.find(": ");
    if (Colon == std::string::npos || Colon == 0) {
      Poisoned = true;
      Error = "malformed header line '" + Line + "'";
      return Result::Malformed;
    }
    std::string Name = Line.substr(0, Colon);
    std::transform(Name.begin(), Name.end(), Name.begin(),
                   [](unsigned char C) { return std::tolower(C); });
    F.Headers.emplace_back(std::move(Name),
                           unescapeHeaderValue(Line.substr(Colon + 2)));
  }

  std::string LenStr = F.header("content-length", "0");
  char *End = nullptr;
  ContentLength = std::strtoull(LenStr.c_str(), &End, 10);
  if (End == LenStr.c_str() || *End != '\0') {
    Poisoned = true;
    Error = "invalid content-length '" + LenStr + "'";
    return Result::Malformed;
  }
  if (ContentLength > BodyLimit) {
    Poisoned = true;
    Error = "body exceeds " + std::to_string(BodyLimit) + " bytes";
    return Result::Malformed;
  }

  size_t BodyStart = HeaderEnd + 2;
  if (Buffer.size() - BodyStart < ContentLength)
    return Result::NeedMore;

  F.Body = Buffer.substr(BodyStart, ContentLength);
  Buffer.erase(0, BodyStart + ContentLength);
  Out = std::move(F);
  return Result::Ready;
}

bool mvec::daemon::requestFromFrame(const FrameReader::Frame &F, Request &Out,
                                    std::string &Error) {
  if (F.StartWords.size() != 2) {
    Error = "request start line must be 'MVEC/1 <verb>'";
    return false;
  }
  Request R;
  if (!verbFromName(F.StartWords[1], R.V)) {
    Error = "unknown verb '" + F.StartWords[1] + "'";
    return false;
  }
  std::string Tenant = F.header("tenant", "anonymous");
  if (!Tenant.empty())
    R.Tenant = std::move(Tenant);
  R.Name = F.header("name");
  std::string Validate = F.header("validate", "1");
  if (Validate != "0" && Validate != "1") {
    Error = "validate must be 0 or 1";
    return false;
  }
  R.Validate = Validate == "1";
  std::string DeadlineStr = F.header("deadline-ms", "0");
  char *End = nullptr;
  uint64_t Deadline = std::strtoull(DeadlineStr.c_str(), &End, 10);
  if (End == DeadlineStr.c_str() || *End != '\0' ||
      Deadline > 24ull * 3600 * 1000) {
    Error = "invalid deadline-ms '" + DeadlineStr + "'";
    return false;
  }
  R.DeadlineMs = static_cast<unsigned>(Deadline);
  R.Body = F.Body;
  Out = std::move(R);
  return true;
}

bool mvec::daemon::responseFromFrame(const FrameReader::Frame &F,
                                     Response &Out, std::string &Error) {
  if (F.StartWords.size() < 2) {
    Error = "response start line must be 'MVEC/1 <code> <reason>'";
    return false;
  }
  Response R;
  char *End = nullptr;
  long Code = std::strtol(F.StartWords[1].c_str(), &End, 10);
  if (End == F.StartWords[1].c_str() || *End != '\0' || Code < 100 ||
      Code > 599) {
    Error = "invalid response code '" + F.StartWords[1] + "'";
    return false;
  }
  R.Code = static_cast<int>(Code);
  R.Status = F.header("status", "ok");
  R.ErrorClass = F.header("error-class", "none");
  R.CacheTier = F.header("cache", "none");
  R.Attempts =
      static_cast<unsigned>(std::strtoul(F.header("attempts", "1").c_str(),
                                         nullptr, 10));
  R.Shard = static_cast<unsigned>(
      std::strtoul(F.header("shard", "0").c_str(), nullptr, 10));
  R.Message = F.header("message");
  R.Body = F.Body;
  Out = std::move(R);
  return true;
}

std::string mvec::daemon::badRequestResponse(const std::string &Error) {
  Response R;
  R.Code = 400;
  R.Status = "bad-request";
  R.Message = Error;
  return serializeResponse(R);
}
