//===- DiskStore.h - On-disk content-addressed result store -----*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The persistent tier under the service's in-memory ContentCache: a
/// directory of content-addressed entries, one file per cache key, so a
/// warm result survives daemon restarts. The file name is the canonical
/// hex spelling of the key (support/ContentHash.h) under a two-hex-digit
/// fan-out directory:
///
///   <dir>/ab/abcdef0123456789.mvr
///
/// Entry format (version MVRS1): one ASCII header line
///
///   MVRS1 <src-len> <msg-len> <status> <6 stat fields> <checksum-hex>\n
///
/// followed by exactly src-len bytes of vectorized source and msg-len
/// bytes of diagnostics. The checksum is FNV-1a over both payloads.
///
/// Durability: writes go to a unique .tmp file in the same directory and
/// are atomically rename(2)d into place, so a crash at any instant leaves
/// either the old entry, the new entry, or an orphaned .tmp — never a
/// half-written entry under the final name. Reads verify the version,
/// the lengths, and the checksum; anything that fails verification is
/// treated as a miss and deleted. Orphaned .tmp files are swept on boot.
///
/// Thread-safe: keys are sharded across a small lock array; distinct keys
/// proceed in parallel, same-key put/get serialize.
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_DAEMON_DISKSTORE_H
#define MVEC_DAEMON_DISKSTORE_H

#include "service/ResultStore.h"

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

namespace mvec {
namespace daemon {

struct DiskStoreConfig {
  /// Root directory (created, with fan-out subdirectories, on boot).
  std::string Dir;
  /// Soft byte budget; when total payload bytes exceed it, the oldest
  /// entries (by mtime) are pruned to ~75% of the budget. 0 = unbounded.
  size_t MaxBytes = size_t(256) << 20;
  /// Remove orphaned .tmp files on open. True for the first process to
  /// open a directory (the daemon); false when a sandboxed worker opens
  /// a store another process is already writing to — a sweep there
  /// would delete a sibling's in-flight temp file. Tmp names are
  /// pid-qualified, so skipping the sweep never causes collisions.
  bool SweepTmps = true;
};

class DiskStore : public ResultStore {
public:
  /// Opens (creating if needed) the store: sweeps orphaned .tmp files,
  /// counts surviving entries and bytes. Throws std::runtime_error when
  /// the directory cannot be created or is unreadable.
  explicit DiskStore(DiskStoreConfig Config);

  std::optional<JobResult> load(uint64_t Key) override;
  void store(uint64_t Key, const JobResult &Result) override;

  /// Removes the entry for \p Key if present (used by tests).
  void erase(uint64_t Key);

  const std::string &dir() const { return Config.Dir; }
  uint64_t hits() const { return Hits.load(std::memory_order_relaxed); }
  uint64_t misses() const { return Misses.load(std::memory_order_relaxed); }
  uint64_t puts() const { return Puts.load(std::memory_order_relaxed); }
  /// Entries dropped because they failed verification (torn/corrupt).
  uint64_t corruptDropped() const {
    return Corrupt.load(std::memory_order_relaxed);
  }
  uint64_t entries() const { return Entries.load(std::memory_order_relaxed); }
  uint64_t payloadBytes() const {
    return Bytes.load(std::memory_order_relaxed);
  }

  /// The entry path for \p Key (exposed for crash-safety tests that
  /// corrupt entries in place).
  std::string entryPath(uint64_t Key) const;

private:
  std::mutex &lockFor(uint64_t Key) {
    return Locks[Key % Locks.size()];
  }
  void pruneIfOver();

  DiskStoreConfig Config;
  std::array<std::mutex, 16> Locks;
  std::mutex PruneMutex;
  std::atomic<uint64_t> Hits{0};
  std::atomic<uint64_t> Misses{0};
  std::atomic<uint64_t> Puts{0};
  std::atomic<uint64_t> Corrupt{0};
  std::atomic<uint64_t> Entries{0};
  std::atomic<uint64_t> Bytes{0};
  std::atomic<uint64_t> TmpCounter{0};
};

} // namespace daemon
} // namespace mvec

#endif // MVEC_DAEMON_DISKSTORE_H
