//===- Qos.cpp - Admission control and per-tenant QoS -----------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "daemon/Qos.h"

#include <algorithm>

using namespace mvec::daemon;

const char *mvec::daemon::admissionName(Admission A) {
  switch (A) {
  case Admission::Admitted:
    return "admitted";
  case Admission::ShedQos:
    return "qos";
  case Admission::ShedQueue:
    return "queue";
  }
  return "admitted";
}

bool TokenBucket::tryTake(std::chrono::steady_clock::time_point Now) {
  if (RatePerSec <= 0)
    return true;
  if (Last.time_since_epoch().count() != 0 && Now > Last)
    Tokens = std::min(Burst,
                      Tokens + std::chrono::duration<double>(Now - Last)
                                       .count() *
                                   RatePerSec);
  Last = Now;
  if (Tokens < 1.0)
    return false;
  Tokens -= 1.0;
  return true;
}

bool AdmissionController::admit(const std::string &TenantId,
                                std::chrono::steady_clock::time_point Now) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto [It, Inserted] = Tenants.try_emplace(TenantId);
  Tenant &T = It->second;
  if (Inserted) {
    T.Bucket.RatePerSec = RatePerSec;
    T.Bucket.Burst = Burst;
    T.Bucket.Tokens = Burst; // New tenants start with a full bucket.
    T.Bucket.Last = Now;
  }
  if (T.Bucket.tryTake(Now)) {
    ++T.Admitted;
    return true;
  }
  ++T.Shed;
  return false;
}

void AdmissionController::setLimits(double NewRatePerSec, double NewBurst) {
  std::lock_guard<std::mutex> Lock(Mutex);
  RatePerSec = NewRatePerSec;
  Burst = NewBurst < 1 ? 1 : NewBurst;
  for (auto &[Id, T] : Tenants) {
    (void)Id;
    T.Bucket.RatePerSec = RatePerSec;
    T.Bucket.Burst = Burst;
    T.Bucket.Tokens = std::min(T.Bucket.Tokens, Burst);
  }
}

double AdmissionController::ratePerSec() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return RatePerSec;
}

double AdmissionController::burst() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Burst;
}

std::vector<TenantStats> AdmissionController::snapshot() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::vector<TenantStats> Out;
  Out.reserve(Tenants.size());
  for (const auto &[Id, T] : Tenants)
    Out.push_back({Id, T.Admitted, T.Shed});
  std::sort(Out.begin(), Out.end(),
            [](const TenantStats &A, const TenantStats &B) {
              return A.Tenant < B.Tenant;
            });
  return Out;
}

uint64_t AdmissionController::totalShed() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  uint64_t Total = 0;
  for (const auto &[Id, T] : Tenants) {
    (void)Id;
    Total += T.Shed;
  }
  return Total;
}
