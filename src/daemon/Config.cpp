//===- Config.cpp - mvecd configuration -------------------------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "daemon/Config.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace mvec::daemon;

namespace {

std::string trim(const std::string &S) {
  size_t B = S.find_first_not_of(" \t\r");
  if (B == std::string::npos)
    return "";
  size_t E = S.find_last_not_of(" \t\r");
  return S.substr(B, E - B + 1);
}

bool parseUnsigned(const std::string &V, uint64_t &Out) {
  char *End = nullptr;
  Out = std::strtoull(V.c_str(), &End, 10);
  return End != V.c_str() && *End == '\0';
}

bool parseDouble(const std::string &V, double &Out) {
  char *End = nullptr;
  Out = std::strtod(V.c_str(), &End);
  return End != V.c_str() && *End == '\0' && Out >= 0;
}

} // namespace

bool mvec::daemon::parseDaemonConfig(const std::string &Text,
                                     DaemonConfig &Out, std::string &Error) {
  DaemonConfig C = Out;
  std::istringstream In(Text);
  std::string Line;
  unsigned LineNo = 0;
  while (std::getline(In, Line)) {
    ++LineNo;
    std::string T = trim(Line);
    if (T.empty() || T[0] == '#')
      continue;
    size_t Eq = T.find('=');
    if (Eq == std::string::npos) {
      Error = "line " + std::to_string(LineNo) + ": expected 'key = value'";
      return false;
    }
    std::string Key = trim(T.substr(0, Eq));
    std::string Value = trim(T.substr(Eq + 1));
    uint64_t U = 0;
    double D = 0;
    if (Key == "shards" && parseUnsigned(Value, U) && U >= 1 && U <= 256)
      C.Shards = static_cast<unsigned>(U);
    else if (Key == "workers_per_shard" && parseUnsigned(Value, U) && U >= 1 &&
             U <= 256)
      C.WorkersPerShard = static_cast<unsigned>(U);
    else if (Key == "cache_capacity" && parseUnsigned(Value, U))
      C.CacheCapacity = U;
    else if (Key == "nest_cache_capacity" && parseUnsigned(Value, U))
      C.NestCacheCapacity = U;
    else if (Key == "max_queue_depth" && parseUnsigned(Value, U) && U >= 1)
      C.MaxQueueDepth = U;
    else if (Key == "store_dir")
      C.StoreDir = Value;
    else if (Key == "store_max_bytes" && parseUnsigned(Value, U))
      C.StoreMaxBytes = U;
    else if (Key == "tenant_rate" && parseDouble(Value, D))
      C.TenantRate = D;
    else if (Key == "tenant_burst" && parseDouble(Value, D) && D >= 1)
      C.TenantBurst = D;
    else if (Key == "deadline_ms" && parseUnsigned(Value, U) &&
             U <= 24ull * 3600 * 1000)
      C.DeadlineMs = static_cast<unsigned>(U);
    else if (Key == "engine" && (Value == "ast" || Value == "vm"))
      C.Engine = Value;
    else if (Key == "code_cache_capacity" && parseUnsigned(Value, U))
      C.CodeCacheCapacity = U;
    else if (Key == "cost_model" && (Value == "off" || Value == "on"))
      C.CostModel = Value;
    else if (Key == "cost_profile")
      C.CostProfile = Value;
    else if (Key == "isolation" && (Value == "inproc" || Value == "process"))
      C.Isolation = Value;
    else if (Key == "worker_memory_mb" && parseUnsigned(Value, U) &&
             U <= (size_t(1) << 20))
      C.WorkerMemoryMB = U;
    else if (Key == "worker_cpu_s" && parseUnsigned(Value, U) &&
             U <= 24ull * 3600)
      C.WorkerCpuSeconds = static_cast<unsigned>(U);
    else if (Key == "heartbeat_interval_ms" && parseUnsigned(Value, U) &&
             U >= 1 && U <= 60000)
      C.HeartbeatIntervalMs = static_cast<unsigned>(U);
    else if (Key == "heartbeat_timeout_ms" && parseUnsigned(Value, U) &&
             U >= 1 && U <= 600000)
      C.HeartbeatTimeoutMs = static_cast<unsigned>(U);
    else if (Key == "quarantine_dir")
      C.QuarantineDir = Value;
    else if (Key == "sandbox_test_hooks" && (Value == "off" || Value == "on"))
      C.SandboxTestHooks = Value == "on";
    else if (Key == "max_frame_bytes" && parseUnsigned(Value, U) && U >= 4096)
      C.MaxFrameBytes = U;
    else {
      Error = "line " + std::to_string(LineNo) + ": bad entry '" + T + "'";
      return false;
    }
  }
  Out = C;
  return true;
}

bool mvec::daemon::loadDaemonConfigFile(const std::string &Path,
                                        DaemonConfig &Out,
                                        std::string &Error) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    Error = "cannot read config file '" + Path + "'";
    return false;
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  return parseDaemonConfig(SS.str(), Out, Error);
}

std::string mvec::daemon::daemonConfigText(const DaemonConfig &Config) {
  std::ostringstream Out;
  Out << "shards = " << Config.Shards << "\n"
      << "workers_per_shard = " << Config.WorkersPerShard << "\n"
      << "cache_capacity = " << Config.CacheCapacity << "\n"
      << "nest_cache_capacity = " << Config.NestCacheCapacity << "\n"
      << "max_queue_depth = " << Config.MaxQueueDepth << "\n"
      << "store_dir = " << Config.StoreDir << "\n"
      << "store_max_bytes = " << Config.StoreMaxBytes << "\n"
      << "tenant_rate = " << Config.TenantRate << "\n"
      << "tenant_burst = " << Config.TenantBurst << "\n"
      << "deadline_ms = " << Config.DeadlineMs << "\n"
      << "engine = " << Config.Engine << "\n"
      << "code_cache_capacity = " << Config.CodeCacheCapacity << "\n"
      << "cost_model = " << Config.CostModel << "\n"
      << "cost_profile = " << Config.CostProfile << "\n"
      << "isolation = " << Config.Isolation << "\n"
      << "worker_memory_mb = " << Config.WorkerMemoryMB << "\n"
      << "worker_cpu_s = " << Config.WorkerCpuSeconds << "\n"
      << "heartbeat_interval_ms = " << Config.HeartbeatIntervalMs << "\n"
      << "heartbeat_timeout_ms = " << Config.HeartbeatTimeoutMs << "\n"
      << "quarantine_dir = " << Config.QuarantineDir << "\n"
      << "sandbox_test_hooks = " << (Config.SandboxTestHooks ? "on" : "off")
      << "\n"
      << "max_frame_bytes = " << Config.MaxFrameBytes << "\n";
  return Out.str();
}
