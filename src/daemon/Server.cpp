//===- Server.cpp - mvecd TCP transport --------------------------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "daemon/Server.h"

#include "support/Io.h"

#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace mvec::daemon;

Server::~Server() {
  stop();
  reapFinished(/*JoinAll=*/true);
  if (ListenFd >= 0)
    ::close(ListenFd);
}

bool Server::start(std::string &Error) {
  ListenFd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (ListenFd < 0) {
    Error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  int One = 1;
  ::setsockopt(ListenFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));

  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Config.Port);
  if (::inet_pton(AF_INET, Config.BindAddress.c_str(), &Addr.sin_addr) != 1) {
    Error = "invalid bind address '" + Config.BindAddress + "'";
    ::close(ListenFd);
    ListenFd = -1;
    return false;
  }
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
      0) {
    Error = std::string("bind: ") + std::strerror(errno);
    ::close(ListenFd);
    ListenFd = -1;
    return false;
  }
  if (::listen(ListenFd, 64) != 0) {
    Error = std::string("listen: ") + std::strerror(errno);
    ::close(ListenFd);
    ListenFd = -1;
    return false;
  }
  socklen_t Len = sizeof(Addr);
  if (::getsockname(ListenFd, reinterpret_cast<sockaddr *>(&Addr), &Len) ==
      0)
    BoundPort = ntohs(Addr.sin_port);
  return true;
}

void Server::run() {
  while (!StopFlag.load(std::memory_order_relaxed) &&
         !D.shutdownRequested()) {
    if (IdleCB)
      IdleCB();
    pollfd PFd{ListenFd, POLLIN, 0};
    int Ready = ::poll(&PFd, 1, 200);
    if (Ready <= 0) {
      reapFinished(/*JoinAll=*/false);
      continue;
    }
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0)
      continue; // EINTR/transient accept errors: back to the poll.
    if (ActiveConnections.load(std::memory_order_relaxed) >=
        Config.MaxConnections) {
      Refused.fetch_add(1, std::memory_order_relaxed);
      ::close(Fd);
      continue;
    }
    Accepted.fetch_add(1, std::memory_order_relaxed);
    ActiveConnections.fetch_add(1, std::memory_order_relaxed);
    auto Done = std::make_shared<std::atomic<bool>>(false);
    std::thread T([this, Fd, Done] {
      serveConnection(Fd);
      ActiveConnections.fetch_sub(1, std::memory_order_relaxed);
      Done->store(true, std::memory_order_relaxed);
    });
    {
      std::lock_guard<std::mutex> Lock(ThreadsMutex);
      Connections.push_back({std::move(T), Done});
    }
    reapFinished(/*JoinAll=*/false);
  }
  // Drain: connection loops notice StopFlag within one receive timeout,
  // finish the frame they are serving, and exit.
  reapFinished(/*JoinAll=*/true);
}

void Server::reapFinished(bool JoinAll) {
  std::vector<Conn> ToJoin;
  {
    std::lock_guard<std::mutex> Lock(ThreadsMutex);
    for (size_t I = 0; I != Connections.size();) {
      if (JoinAll ||
          Connections[I].Done->load(std::memory_order_relaxed)) {
        ToJoin.push_back(std::move(Connections[I]));
        Connections.erase(Connections.begin() +
                          static_cast<ptrdiff_t>(I));
      } else {
        ++I;
      }
    }
  }
  for (Conn &C : ToJoin)
    if (C.Thread.joinable())
      C.Thread.join();
}

void Server::serveConnection(int Fd) {
  // A bounded receive timeout keeps this thread responsive to StopFlag
  // even when the peer goes quiet mid-connection.
  timeval Timeout{};
  Timeout.tv_usec = 250 * 1000;
  ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &Timeout, sizeof(Timeout));
  // Bound individual send() calls too, so the overall sendAll budget is
  // enforced even mid-syscall; io::sendFull treats the EAGAIN ticks as
  // poll points against its wall-clock deadline.
  ::setsockopt(Fd, SOL_SOCKET, SO_SNDTIMEO, &Timeout, sizeof(Timeout));
  int One = 1;
  ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));

  // MSG_NOSIGNAL inside sendFull turns a dead peer into EPIPE rather
  // than SIGPIPE, and the send budget keeps a slow-reading client from
  // wedging this thread (it is disconnected instead).
  int SendBudget = Config.SendTimeoutMs ? static_cast<int>(Config.SendTimeoutMs)
                                        : -1;
  auto sendAll = [Fd, SendBudget](const std::string &Data) {
    return io::sendFull(Fd, Data.data(), Data.size(), SendBudget);
  };

  FrameReader Reader(Config.MaxFrameBytes);
  char Buf[64 * 1024];
  bool Alive = true;
  while (Alive && !StopFlag.load(std::memory_order_relaxed)) {
    ssize_t N = io::recvSome(Fd, Buf, sizeof(Buf));
    if (N == 0)
      break; // peer closed
    if (N < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        continue; // timeout tick: re-check StopFlag
      break;
    }
    Reader.feed(Buf, static_cast<size_t>(N));
    while (Alive) {
      FrameReader::Frame Frame;
      std::string Error;
      FrameReader::Result R = Reader.next(Frame, Error);
      if (R == FrameReader::Result::NeedMore)
        break;
      if (R == FrameReader::Result::Malformed) {
        sendAll(badRequestResponse(Error));
        Alive = false;
        break;
      }
      Request Req;
      if (!requestFromFrame(Frame, Req, Error)) {
        sendAll(badRequestResponse(Error));
        Alive = false;
        break;
      }
      Response Resp = D.handle(Req);
      if (!sendAll(serializeResponse(Resp)))
        Alive = false;
    }
  }
  ::close(Fd);
}
