//===- Daemon.h - Sharded vectorization daemon core -------------*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transport-independent heart of mvecd: N sharded
/// VectorizationService instances (each with its own memory caches) over
/// one shared persistent DiskStore, fronted by admission control.
///
/// Sharding: a request's content key (the same FNV-1a key the caches use)
/// picks its shard as key % N, so repeated submissions of the same script
/// always land on the same shard and its warm caches — the shards never
/// duplicate cache entries for one script.
///
/// Admission: per-tenant token buckets first, then a per-shard in-flight
/// depth gate. A shed request is *served* — degraded passthrough, the
/// original body echoed back with a "degraded:" diagnostic — never
/// refused at the protocol level. Combined with the service layer's own
/// degradation, the daemon-wide invariant is: a well-formed VEC request
/// always yields a 200 whose body the client can run (vectorized on
/// success, byte-exact original otherwise).
///
/// Hot reload: reload() applies QoS limits, queue depth and deadline
/// instantly (atomics); shard-count/worker/cache-size changes build a
/// fresh shard fleet and retire the old one only after its in-flight jobs
/// complete (the old services drain; nothing is dropped). The disk store
/// survives reloads, so the new fleet warms from it immediately.
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_DAEMON_DAEMON_H
#define MVEC_DAEMON_DAEMON_H

#include "cost/CostModel.h"
#include "daemon/Config.h"
#include "daemon/DiskStore.h"
#include "daemon/Protocol.h"
#include "daemon/Qos.h"
#include "sandbox/SandboxPool.h"
#include "service/VectorizationService.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace mvec {
namespace daemon {

class Daemon {
public:
  /// Boots the shard fleet and (when configured) opens the disk store.
  /// Throws std::runtime_error when the store directory is unusable.
  explicit Daemon(DaemonConfig Config);
  /// Drains every shard (all in-flight jobs complete) before returning.
  ~Daemon();

  Daemon(const Daemon &) = delete;
  Daemon &operator=(const Daemon &) = delete;

  /// Serves one parsed request. Never throws; any internal trouble folds
  /// into a degraded-passthrough response. Safe from many threads.
  Response handle(const Request &R);

  /// Applies \p New as described in the class comment. Blocks until any
  /// retired fleet has drained. Returns false (no changes applied) with
  /// \p Error set when the new store directory cannot be opened.
  bool reload(const DaemonConfig &New, std::string &Error);
  /// Parses \p ConfigText on top of the current config, then reload().
  bool reloadFromText(const std::string &ConfigText, std::string &Error);

  /// True after a SHUTDOWN request was served; the transport layer polls
  /// this to begin its drain.
  bool shutdownRequested() const {
    return ShutdownFlag.load(std::memory_order_relaxed);
  }

  DaemonConfig config() const;
  /// The daemon-level metrics document (one JSON object embedding each
  /// shard's ServiceMetrics dump) — the schema BENCH_daemon.json and the
  /// CI smoke job both read.
  std::string metricsJson() const;

  const DiskStore *store() const { return Store.get(); }
  unsigned shardCount() const;
  /// Live sandbox worker pids across every shard (empty with
  /// isolation=inproc). Kill campaigns aim here.
  std::vector<pid_t> workerPids() const;
  uint64_t shedQos() const { return ShedQos.load(std::memory_order_relaxed); }
  uint64_t shedQueue() const {
    return ShedQueue.load(std::memory_order_relaxed);
  }
  uint64_t reloads() const { return Reloads.load(std::memory_order_relaxed); }

private:
  struct Shard {
    /// Exactly one of these is set, per the fleet's isolation mode:
    /// Service runs jobs in-process, Sandbox in forked workers.
    std::unique_ptr<VectorizationService> Service;
    std::unique_ptr<sandbox::SandboxPool> Sandbox;
    std::atomic<uint64_t> InFlight{0};
    std::atomic<uint64_t> Shed{0};
    ServiceMetrics &metrics() {
      return Sandbox ? Sandbox->metrics() : Service->metrics();
    }
    const ServiceMetrics &metrics() const {
      return Sandbox ? Sandbox->metrics() : Service->metrics();
    }
  };
  struct Fleet {
    /// Cost model shared by every shard service of this fleet (null when
    /// cost_model = off). Declared before Shards so the services (which
    /// hold a raw pointer) are destroyed first.
    std::unique_ptr<cost::CostModel> Cost;
    std::vector<std::unique_ptr<Shard>> Shards;
  };

  std::shared_ptr<Fleet> makeFleet(const DaemonConfig &C) const;
  std::shared_ptr<Fleet> fleetSnapshot() const;
  Response handleVec(const Request &R);
  Response degradedPassthrough(const Request &R, const std::string &Why,
                               unsigned ShardIdx) const;

  /// Guards Config and structural swaps (reload is serialized).
  mutable std::mutex ConfigMutex;
  DaemonConfig Config;
  /// Guards only the FleetPtr copy so handle() never waits on a reload.
  mutable std::mutex FleetMutex;
  std::shared_ptr<Fleet> FleetPtr;
  std::unique_ptr<DiskStore> Store;
  AdmissionController Qos;

  std::atomic<unsigned> DeadlineMs;
  std::atomic<size_t> MaxQueueDepth;
  std::atomic<bool> ShutdownFlag{false};

  std::atomic<uint64_t> Requests{0};
  std::atomic<uint64_t> VecRequests{0};
  std::atomic<uint64_t> ShedQos{0};
  std::atomic<uint64_t> ShedQueue{0};
  std::atomic<uint64_t> Reloads{0};
};

} // namespace daemon
} // namespace mvec

#endif // MVEC_DAEMON_DAEMON_H
