//===- Config.h - mvecd configuration ---------------------------*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The daemon's tunables and the trivial `key = value` file format they
/// are loaded from (and hot-reloaded from on SIGHUP or a CONFIG frame):
///
///   # mvecd.conf
///   shards = 4
///   workers_per_shard = 2
///   cache_capacity = 512
///   tenant_rate = 200
///   tenant_burst = 64
///
/// Reload semantics are defined by Daemon::reload(): QoS limits, queue
/// depth and deadline apply instantly; shard/worker/cache-size changes
/// swap in a fresh shard fleet while every in-flight job completes on the
/// old one (nothing is dropped).
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_DAEMON_CONFIG_H
#define MVEC_DAEMON_CONFIG_H

#include <cstddef>
#include <string>

namespace mvec {
struct FaultPlan;
namespace daemon {

struct DaemonConfig {
  /// Worker shards; a request's content key picks its shard (key % N), so
  /// identical scripts always land on the same shard's caches.
  unsigned Shards = 2;
  /// Vectorization workers per shard.
  unsigned WorkersPerShard = 2;
  /// In-memory result-cache entries per shard.
  size_t CacheCapacity = 512;
  /// Per-shard nest-cache entries.
  size_t NestCacheCapacity = 1024;
  /// In-flight requests per shard beyond which new arrivals are shed as
  /// degraded passthrough instead of queueing.
  size_t MaxQueueDepth = 96;
  /// Disk-store directory (empty = memory tiers only, nothing survives a
  /// restart).
  std::string StoreDir;
  /// Disk-store soft byte budget (0 = unbounded).
  size_t StoreMaxBytes = size_t(256) << 20;
  /// Per-tenant admission rate, requests/second (0 = unlimited).
  double TenantRate = 0;
  /// Per-tenant burst ceiling.
  double TenantBurst = 64;
  /// Default per-request deadline in ms (0 = none).
  unsigned DeadlineMs = 10000;
  /// Execution tier for differential validation: "ast" (tree-walker) or
  /// "vm" (register bytecode; compiled programs are cached per shard and
  /// persisted beside results when a store_dir is configured).
  std::string Engine = "ast";
  /// Per-shard compiled-program cache entries (vm engine only).
  size_t CodeCacheCapacity = 64;
  /// Profitability cost model: "off" vectorizes whenever legal, "on"
  /// consults the model (built-in conservative profile unless
  /// cost_profile names a calibrated costs.mvec.json). Hot-reloadable;
  /// a change swaps in a fresh shard fleet because the profile
  /// fingerprint salts every cache tier.
  std::string CostModel = "off";
  /// Path to a calibrated cost profile (empty = built-in defaults). A
  /// malformed or stale file falls back to the defaults with a logged
  /// diagnostic; it never prevents startup.
  std::string CostProfile;
  /// Shard execution placement: "inproc" runs each shard's service in
  /// the daemon process (fastest); "process" runs it in forked sandbox
  /// worker processes behind socketpairs (see src/sandbox/) so a worker
  /// crash, OOM kill, or wedge never takes the daemon down.
  /// Hot-reloadable; a change swaps in a fresh shard fleet.
  std::string Isolation = "inproc";
  /// RLIMIT_AS per sandbox worker in MiB (0 = unlimited; process
  /// isolation only).
  size_t WorkerMemoryMB = 512;
  /// RLIMIT_CPU per sandbox worker in seconds, cumulative over the
  /// worker's lifetime (0 = unlimited; process isolation only).
  unsigned WorkerCpuSeconds = 0;
  /// How often the sandbox supervisor PINGs idle workers.
  unsigned HeartbeatIntervalMs = 250;
  /// Silence budget before an idle worker is SIGKILLed; also the grace
  /// added to a request's deadline before a busy worker counts as stuck.
  unsigned HeartbeatTimeoutMs = 2000;
  /// Where crash-inducing inputs are quarantined (empty disables).
  std::string QuarantineDir = "corpus/quarantine";
  /// Honor %!sandbox-* crash markers in request bodies (crash-campaign
  /// hook; never enable in production).
  bool SandboxTestHooks = false;
  /// Transport frame-size ceiling: a request whose content-length
  /// exceeds this is answered 400 and disconnected before its body is
  /// buffered. Applied per connection at accept time (not retroactive
  /// to connections already open across a reload).
  size_t MaxFrameBytes = size_t(4) << 20;
  /// Fault-injection plan armed in every shard service (test hook; not
  /// settable from a config file). Must outlive the daemon.
  const FaultPlan *Faults = nullptr;
};

/// Parses `key = value` \p Text into \p Out (starting from \p Out's
/// current values, so a partial file only overrides what it names).
/// Returns false with \p Error set on an unknown key or a bad value; \p
/// Out is untouched on failure.
bool parseDaemonConfig(const std::string &Text, DaemonConfig &Out,
                       std::string &Error);

/// Reads \p Path and parses it. Returns false on I/O or parse errors.
bool loadDaemonConfigFile(const std::string &Path, DaemonConfig &Out,
                          std::string &Error);

/// The config rendered back in the file format (used as the CONFIG
/// response body, so a client can read back what is now in force).
std::string daemonConfigText(const DaemonConfig &Config);

} // namespace daemon
} // namespace mvec

#endif // MVEC_DAEMON_CONFIG_H
