//===- Server.h - mvecd TCP transport ---------------------------*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The socket layer around the transport-independent Daemon: a listening
/// TCP socket, one handler thread per connection (bounded), persistent
/// connections carrying a stream of protocol frames. All protocol logic
/// lives in Protocol.h/Daemon.h; this file only moves bytes.
///
/// Shutdown paths, all of which drain cleanly (in-flight requests finish,
/// responses are written, then sockets close):
///   * stop() from any thread (mvecd's SIGINT/SIGTERM handlers set a flag
///     the accept loop watches via the idle callback),
///   * a SHUTDOWN protocol frame (the accept loop polls
///     Daemon::shutdownRequested()).
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_DAEMON_SERVER_H
#define MVEC_DAEMON_SERVER_H

#include "daemon/Daemon.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace mvec {
namespace daemon {

struct ServerConfig {
  /// Address to bind; loopback by default (mvecd is an internal service;
  /// exposing it wider is an explicit operator decision).
  std::string BindAddress = "127.0.0.1";
  /// 0 picks an ephemeral port (see port() after start()).
  uint16_t Port = 0;
  /// Concurrent connections beyond this are accepted and immediately
  /// closed (the client sees EOF and retries elsewhere/later).
  unsigned MaxConnections = 128;
  /// Per-connection frame-size ceiling (FrameReader body limit): a
  /// request announcing a bigger content-length is answered 400 and
  /// disconnected before its body is buffered. mvecd wires the
  /// `max_frame_bytes` config key here at boot.
  size_t MaxFrameBytes = MaxBodyBytes;
  /// Wall-clock budget for writing one response. A client that stops
  /// reading (dead, or maliciously slow) blocks the send once the
  /// socket buffer fills; past this budget the connection is dropped so
  /// it cannot wedge a handler thread forever. 0 = no limit.
  unsigned SendTimeoutMs = 10000;
};

class Server {
public:
  Server(Daemon &D, ServerConfig Config) : D(D), Config(std::move(Config)) {}
  ~Server();

  /// Binds and listens. Returns false with \p Error set on failure.
  bool start(std::string &Error);

  /// The bound port (useful with Port = 0).
  uint16_t port() const { return BoundPort; }

  /// Accept loop; returns after stop() or a served SHUTDOWN frame, once
  /// every connection thread has been joined.
  void run();

  /// Ends run() from another thread (or after a signal flag flips).
  void stop() { StopFlag.store(true, std::memory_order_relaxed); }

  /// Invoked roughly every accept-poll interval (~200 ms) on the accept
  /// thread while idle; mvecd uses it to notice signal flags (SIGHUP
  /// config reload, SIGINT/SIGTERM stop).
  void setIdleCallback(std::function<void()> CB) { IdleCB = std::move(CB); }

  uint64_t connectionsAccepted() const {
    return Accepted.load(std::memory_order_relaxed);
  }
  uint64_t connectionsRefused() const {
    return Refused.load(std::memory_order_relaxed);
  }

private:
  void serveConnection(int Fd);
  void reapFinished(bool JoinAll);

  Daemon &D;
  ServerConfig Config;
  int ListenFd = -1;
  uint16_t BoundPort = 0;
  std::atomic<bool> StopFlag{false};
  std::atomic<unsigned> ActiveConnections{0};
  std::atomic<uint64_t> Accepted{0};
  std::atomic<uint64_t> Refused{0};
  std::function<void()> IdleCB;

  std::mutex ThreadsMutex;
  struct Conn {
    std::thread Thread;
    std::shared_ptr<std::atomic<bool>> Done;
  };
  std::vector<Conn> Connections;
};

} // namespace daemon
} // namespace mvec

#endif // MVEC_DAEMON_SERVER_H
