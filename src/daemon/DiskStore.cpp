//===- DiskStore.cpp - On-disk content-addressed result store ---------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "daemon/DiskStore.h"

#include "support/ContentHash.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

using namespace mvec;
using namespace mvec::daemon;

namespace fs = std::filesystem;

namespace {

// Bumped to 2 when the header grew the cost-model decision counters
// (StmtsCostKept/NestsKeptLoop/VariantOverrides); v1 entries parse as
// misses and are re-derived.
constexpr const char *Magic = "MVRS2";

uint64_t entryChecksum(const std::string &Src, const std::string &Msg) {
  return fnv1aHash(Msg, fnv1aHash(Src));
}

std::string headerLine(const JobResult &R) {
  const VectorizeStats &S = R.Stats;
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf),
                "%s %zu %zu %s %u %u %u %u %u %u %u %u %u %s\n", Magic,
                R.VectorizedSource.size(), R.Message.size(),
                jobStatusName(R.Status), S.LoopNestsConsidered,
                S.LoopNestsImproved, S.StmtsVectorized, S.StmtsSequential,
                S.SequentialLoopsEmitted, S.IneligibleNests, S.StmtsCostKept,
                S.NestsKeptLoop, S.VariantOverrides,
                contentHexKey(entryChecksum(R.VectorizedSource, R.Message))
                    .c_str());
  return Buf;
}

/// Parses one stored entry; returns false on any inconsistency.
bool parseEntry(const std::string &Data, JobResult &R) {
  size_t Eol = Data.find('\n');
  if (Eol == std::string::npos)
    return false;
  std::istringstream Header(Data.substr(0, Eol));
  std::string Version, Status, SumHex;
  size_t SrcLen = 0, MsgLen = 0;
  VectorizeStats S;
  Header >> Version >> SrcLen >> MsgLen >> Status >> S.LoopNestsConsidered >>
      S.LoopNestsImproved >> S.StmtsVectorized >> S.StmtsSequential >>
      S.SequentialLoopsEmitted >> S.IneligibleNests >> S.StmtsCostKept >>
      S.NestsKeptLoop >> S.VariantOverrides >> SumHex;
  if (!Header || Version != Magic)
    return false;
  // Only successful results are ever stored; refuse anything else rather
  // than replay a stale failure forever.
  if (Status != jobStatusName(JobStatus::Succeeded))
    return false;
  size_t PayloadStart = Eol + 1;
  if (Data.size() - PayloadStart != SrcLen + MsgLen)
    return false;
  uint64_t WantSum;
  if (!parseContentHexKey(SumHex, WantSum))
    return false;
  std::string Src = Data.substr(PayloadStart, SrcLen);
  std::string Msg = Data.substr(PayloadStart + SrcLen, MsgLen);
  if (entryChecksum(Src, Msg) != WantSum)
    return false;
  R = JobResult();
  R.Status = JobStatus::Succeeded;
  R.VectorizedSource = std::move(Src);
  R.Message = std::move(Msg);
  R.Stats = S;
  return true;
}

/// Writes \p Data to \p TmpPath and atomically renames it to \p Path.
/// Returns false on any I/O error (leaving no file under \p Path's name
/// that wasn't there before).
bool writeThenRename(const std::string &TmpPath, const std::string &Path,
                     const std::string &Data) {
  int Fd = ::open(TmpPath.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Fd < 0)
    return false;
  size_t Off = 0;
  while (Off < Data.size()) {
    ssize_t N = ::write(Fd, Data.data() + Off, Data.size() - Off);
    if (N <= 0) {
      ::close(Fd);
      ::unlink(TmpPath.c_str());
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  // Flush payload bytes before the rename publishes the name: a torn
  // entry after power loss is caught by the checksum anyway, but this
  // keeps the common crash case (process death) perfectly clean.
  ::fsync(Fd);
  ::close(Fd);
  if (::rename(TmpPath.c_str(), Path.c_str()) != 0) {
    ::unlink(TmpPath.c_str());
    return false;
  }
  return true;
}

} // namespace

DiskStore::DiskStore(DiskStoreConfig Config) : Config(std::move(Config)) {
  std::error_code EC;
  fs::create_directories(this->Config.Dir, EC);
  if (EC || !fs::is_directory(this->Config.Dir))
    throw std::runtime_error("DiskStore: cannot create directory '" +
                             this->Config.Dir + "'");
  // Boot sweep: drop orphaned .tmp files (a crash between write and
  // rename leaves them; they were never published) and take inventory of
  // the surviving entries so capacity accounting starts accurate.
  uint64_t Count = 0, Total = 0;
  for (fs::recursive_directory_iterator It(this->Config.Dir, EC), End;
       It != End && !EC; It.increment(EC)) {
    if (!It->is_regular_file())
      continue;
    fs::path P = It->path();
    if (P.extension() == ".mvr") {
      ++Count;
      Total += static_cast<uint64_t>(It->file_size(EC));
    } else if (this->Config.SweepTmps) {
      fs::remove(P, EC);
    }
  }
  Entries.store(Count, std::memory_order_relaxed);
  Bytes.store(Total, std::memory_order_relaxed);
}

std::string DiskStore::entryPath(uint64_t Key) const {
  std::string Hex = contentHexKey(Key);
  return Config.Dir + "/" + Hex.substr(0, 2) + "/" + Hex + ".mvr";
}

std::optional<JobResult> DiskStore::load(uint64_t Key) {
  std::string Path = entryPath(Key);
  std::string Data;
  {
    std::lock_guard<std::mutex> Lock(lockFor(Key));
    std::ifstream In(Path, std::ios::binary);
    if (!In) {
      Misses.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    std::ostringstream SS;
    SS << In.rdbuf();
    Data = SS.str();
  }
  JobResult R;
  if (!parseEntry(Data, R)) {
    // Torn or corrupt entry: never serve it, and remove it so the next
    // successful run can republish a clean one.
    Corrupt.fetch_add(1, std::memory_order_relaxed);
    Misses.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> Lock(lockFor(Key));
    std::error_code EC;
    if (fs::remove(Path, EC) && !EC) {
      Entries.fetch_sub(1, std::memory_order_relaxed);
      uint64_t Sz = std::min<uint64_t>(Data.size(),
                                       Bytes.load(std::memory_order_relaxed));
      Bytes.fetch_sub(Sz, std::memory_order_relaxed);
    }
    return std::nullopt;
  }
  Hits.fetch_add(1, std::memory_order_relaxed);
  return R;
}

void DiskStore::store(uint64_t Key, const JobResult &Result) {
  if (Result.Status != JobStatus::Succeeded)
    return;
  std::string Path = entryPath(Key);
  std::string Data = headerLine(Result) + Result.VectorizedSource +
                     Result.Message;
  {
    std::lock_guard<std::mutex> Lock(lockFor(Key));
    std::error_code EC;
    fs::create_directories(fs::path(Path).parent_path(), EC);
    uint64_t OldSize = 0;
    bool Existed = false;
    if (fs::exists(Path, EC)) {
      Existed = true;
      OldSize = static_cast<uint64_t>(fs::file_size(Path, EC));
    }
    // Pid-qualified so processes sharing the directory (daemon +
    // sandboxed workers) can never race on the same temp name.
    std::string TmpPath =
        Path + ".tmp" + std::to_string(::getpid()) + "_" +
        std::to_string(TmpCounter.fetch_add(1, std::memory_order_relaxed));
    if (!writeThenRename(TmpPath, Path, Data))
      return;
    Puts.fetch_add(1, std::memory_order_relaxed);
    if (!Existed)
      Entries.fetch_add(1, std::memory_order_relaxed);
    Bytes.fetch_add(Data.size(), std::memory_order_relaxed);
    if (Existed) {
      uint64_t Cur = Bytes.load(std::memory_order_relaxed);
      Bytes.fetch_sub(std::min(OldSize, Cur), std::memory_order_relaxed);
    }
  }
  pruneIfOver();
}

void DiskStore::erase(uint64_t Key) {
  std::lock_guard<std::mutex> Lock(lockFor(Key));
  std::error_code EC;
  std::string Path = entryPath(Key);
  uint64_t Sz = fs::exists(Path, EC)
                    ? static_cast<uint64_t>(fs::file_size(Path, EC))
                    : 0;
  if (fs::remove(Path, EC) && !EC) {
    Entries.fetch_sub(1, std::memory_order_relaxed);
    Bytes.fetch_sub(std::min(Sz, Bytes.load(std::memory_order_relaxed)),
                    std::memory_order_relaxed);
  }
}

void DiskStore::pruneIfOver() {
  if (Config.MaxBytes == 0 ||
      Bytes.load(std::memory_order_relaxed) <= Config.MaxBytes)
    return;
  // One pruner at a time; latecomers see the reduced footprint and skip.
  std::unique_lock<std::mutex> Lock(PruneMutex, std::try_to_lock);
  if (!Lock.owns_lock())
    return;

  struct Victim {
    std::string Path;
    uint64_t Size;
    fs::file_time_type MTime;
  };
  std::vector<Victim> All;
  std::error_code EC;
  for (fs::recursive_directory_iterator It(Config.Dir, EC), End;
       It != End && !EC; It.increment(EC)) {
    if (!It->is_regular_file() || It->path().extension() != ".mvr")
      continue;
    All.push_back({It->path().string(),
                   static_cast<uint64_t>(It->file_size(EC)),
                   It->last_write_time(EC)});
  }
  std::sort(All.begin(), All.end(),
            [](const Victim &A, const Victim &B) { return A.MTime < B.MTime; });
  uint64_t Total = 0;
  for (const Victim &V : All)
    Total += V.Size;
  uint64_t Target = Config.MaxBytes - Config.MaxBytes / 4;
  size_t Removed = 0;
  for (const Victim &V : All) {
    if (Total <= Target)
      break;
    if (fs::remove(V.Path, EC) && !EC) {
      Total -= std::min(V.Size, Total);
      ++Removed;
    }
  }
  Entries.store(All.size() - Removed, std::memory_order_relaxed);
  Bytes.store(Total, std::memory_order_relaxed);
}
