//===- Protocol.h - mvecd wire protocol -------------------------*- C++ -*-===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mvecd wire protocol: a minimal HTTP-shaped, length-prefixed frame
/// that one read loop can parse without ambiguity —
///
///   MVEC/1 VEC\n            request:  "MVEC/1 " verb "\n"
///   tenant: alice\n         headers:  "name: value\n" (no \n in values)
///   validate: 1\n
///   content-length: 58\n
///   \n                      blank line ends the header block
///   <58 bytes of body>      exactly content-length bytes, no terminator
///
///   MVEC/1 200 ok\n         response: "MVEC/1 " code " " reason "\n"
///   status: succeeded\n
///   cache: memory\n
///   content-length: 71\n
///   \n
///   <71 bytes of body>
///
/// Verbs: VEC (body = MATLAB source, response body = vectorized source),
/// PING, STATS (response body = daemon metrics JSON), CONFIG (body = a
/// daemon config file to hot-reload), SHUTDOWN (ask the server to drain
/// and exit). Connections are persistent: frames are processed in order
/// until EOF or a malformed frame.
///
/// Only two response codes exist: 200 (the request was processed — the
/// job-level outcome lives in the `status` header, including degraded
/// passthrough) and 400 (the *frame* was malformed; the server closes the
/// connection after sending it). A valid frame is never answered with
/// 400, which is what makes the daemon's no-protocol-error guarantee
/// mechanically checkable.
///
/// Everything in this file is transport-independent (operates on byte
/// buffers, never sockets) so the framing logic is unit-testable.
///
//===----------------------------------------------------------------------===//

#ifndef MVEC_DAEMON_PROTOCOL_H
#define MVEC_DAEMON_PROTOCOL_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace mvec {
namespace daemon {

/// Default frame-size ceilings: a peer that blows these is answered 400
/// and disconnected before it can balloon server memory. FrameReader
/// instances can tighten (or widen) the body limit per connection — see
/// the `max_frame_bytes` daemon config key — and the content-length
/// check fires *before* any body byte is buffered, so a hostile
/// huge-length header costs at most MaxHeaderBytes of memory.
constexpr size_t MaxHeaderBytes = 64 * 1024;
constexpr size_t MaxBodyBytes = 16 * 1024 * 1024;

enum class Verb { Vec, Ping, Stats, Config, Shutdown };

const char *verbName(Verb V);
bool verbFromName(const std::string &Name, Verb &V);

/// One parsed request frame.
struct Request {
  Verb V = Verb::Ping;
  /// Client/tenant id for QoS accounting ("anonymous" when absent).
  std::string Tenant = "anonymous";
  /// Display name echoed into results (VEC only).
  std::string Name;
  /// Run differential validation (VEC only).
  bool Validate = true;
  /// Per-request deadline override in ms; 0 uses the daemon default.
  unsigned DeadlineMs = 0;
  std::string Body;
};

/// One response frame.
struct Response {
  int Code = 200;
  /// Job-level outcome: "succeeded", "degraded", "failed", ... (matches
  /// jobStatusName), or "ok" for non-VEC verbs.
  std::string Status = "ok";
  /// errorClassName of the failure ("none" otherwise).
  std::string ErrorClass = "none";
  /// Which cache tier served a VEC result: "memory", "disk", or "none".
  std::string CacheTier = "none";
  unsigned Attempts = 1;
  /// Which shard executed the request (VEC only).
  unsigned Shard = 0;
  /// Single-line diagnostic (newlines are escaped on the wire).
  std::string Message;
  std::string Body;
};

std::string serializeRequest(const Request &R);
std::string serializeResponse(const Response &R);

/// Replaces \n and \r with visible escapes so any string can ride in a
/// header value; inverse of unescapeHeaderValue.
std::string escapeHeaderValue(const std::string &Value);
std::string unescapeHeaderValue(const std::string &Value);

/// Incremental frame parser: feed() bytes as they arrive, poll next().
/// One reader per connection direction; a Malformed verdict poisons the
/// reader (the connection must be torn down).
class FrameReader {
public:
  enum class Result { NeedMore, Ready, Malformed };

  FrameReader() = default;
  /// A reader with a custom body-size ceiling (clamped to >= 1; the
  /// header ceiling stays MaxHeaderBytes).
  explicit FrameReader(size_t MaxFrameBytes)
      : BodyLimit(MaxFrameBytes ? MaxFrameBytes : 1) {}

  /// A raw parsed frame: the start line split at spaces, the header list
  /// in arrival order, and the body.
  struct Frame {
    std::vector<std::string> StartWords;
    std::vector<std::pair<std::string, std::string>> Headers;
    std::string Body;

    /// Last value of \p Name (lowercase), or \p Default.
    std::string header(const std::string &Name,
                       const std::string &Default = "") const;
  };

  void feed(const char *Data, size_t Len) { Buffer.append(Data, Len); }
  void feed(const std::string &Data) { Buffer.append(Data); }

  /// Extracts the next complete frame from the buffer. On Malformed,
  /// \p Error says what was wrong and the reader refuses further frames.
  Result next(Frame &Out, std::string &Error);

  /// Bytes buffered but not yet consumed by a complete frame.
  size_t pendingBytes() const { return Buffer.size(); }

  /// The body-size ceiling in force for this reader.
  size_t maxBodyBytes() const { return BodyLimit; }

private:
  std::string Buffer;
  size_t BodyLimit = MaxBodyBytes;
  bool Poisoned = false;
};

/// Interprets a raw frame as a request. Returns false (with \p Error set)
/// on an unknown verb or invalid header values — the caller answers 400.
bool requestFromFrame(const FrameReader::Frame &F, Request &Out,
                      std::string &Error);

/// Interprets a raw frame as a response (client side).
bool responseFromFrame(const FrameReader::Frame &F, Response &Out,
                       std::string &Error);

/// The canned 400 frame for a malformed request.
std::string badRequestResponse(const std::string &Error);

} // namespace daemon
} // namespace mvec

#endif // MVEC_DAEMON_PROTOCOL_H
