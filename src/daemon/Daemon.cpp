//===- Daemon.cpp - Sharded vectorization daemon core -----------------------===//
//
// Part of the mvec project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "daemon/Daemon.h"

#include "interp/simd/SimdDispatch.h"

#include <chrono>
#include <cstdio>
#include <sstream>
#include <thread>

using namespace mvec;
using namespace mvec::daemon;

Daemon::Daemon(DaemonConfig Config)
    : Config(Config), Qos(Config.TenantRate, Config.TenantBurst),
      DeadlineMs(Config.DeadlineMs), MaxQueueDepth(Config.MaxQueueDepth) {
  if (!Config.StoreDir.empty())
    Store = std::make_unique<DiskStore>(
        DiskStoreConfig{Config.StoreDir, Config.StoreMaxBytes});
  FleetPtr = makeFleet(Config);
}

Daemon::~Daemon() {
  std::shared_ptr<Fleet> Old;
  {
    std::lock_guard<std::mutex> Lock(FleetMutex);
    Old = std::move(FleetPtr);
  }
  // Wait for every handler thread to let go of the fleet, then destroy
  // it — the service destructors drain their queues, so in-flight jobs
  // finish and every pending future resolves.
  while (Old.use_count() > 1)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
}

std::shared_ptr<Daemon::Fleet> Daemon::makeFleet(const DaemonConfig &C) const {
  auto F = std::make_shared<Fleet>();
  if (C.Isolation == "process") {
    // Each shard becomes a pool of forked workers; every worker builds
    // its own service (and cost model) after the fork, so the parent
    // fleet carries no in-process execution state at all.
    sandbox::SandboxConfig SC;
    SC.Workers = C.WorkersPerShard;
    SC.CacheCapacity = C.CacheCapacity;
    SC.NestCacheCapacity = C.NestCacheCapacity;
    SC.CodeCacheCapacity = C.CodeCacheCapacity;
    SC.Engine = C.Engine;
    SC.CostModel = C.CostModel;
    SC.CostProfile = C.CostProfile;
    SC.StoreDir = C.StoreDir;
    SC.StoreMaxBytes = C.StoreMaxBytes;
    SC.DeadlineMs = C.DeadlineMs;
    SC.MemoryLimitMB = C.WorkerMemoryMB;
    SC.CpuLimitSeconds = C.WorkerCpuSeconds;
    SC.HeartbeatIntervalMs = C.HeartbeatIntervalMs;
    SC.HeartbeatTimeoutMs = C.HeartbeatTimeoutMs;
    SC.QuarantineDir = C.QuarantineDir;
    SC.TestHooks = C.SandboxTestHooks;
    F->Shards.reserve(C.Shards);
    for (unsigned I = 0; I != C.Shards; ++I) {
      auto S = std::make_unique<Shard>();
      S->Sandbox = std::make_unique<sandbox::SandboxPool>(SC);
      F->Shards.push_back(std::move(S));
    }
    return F;
  }
  if (C.CostModel == "on") {
    std::string Diag;
    F->Cost = std::make_unique<cost::CostModel>(
        cost::loadCostProfileOrDefault(C.CostProfile, Diag));
    if (!Diag.empty())
      std::fprintf(stderr, "mvecd: %s\n", Diag.c_str());
  }
  F->Shards.reserve(C.Shards);
  for (unsigned I = 0; I != C.Shards; ++I) {
    ServiceConfig SC;
    SC.Workers = C.WorkersPerShard;
    // The in-flight gate (MaxQueueDepth) fires before the pool queue can
    // fill, so submit() never blocks a protocol thread on back-pressure.
    SC.QueueCapacity = C.MaxQueueDepth + C.WorkersPerShard + 8;
    SC.CacheCapacity = C.CacheCapacity;
    SC.NestCacheCapacity = C.NestCacheCapacity;
    SC.Store = Store.get();
    SC.Faults = C.Faults;
    SC.Engine = C.Engine == "vm" ? ExecEngine::Vm : ExecEngine::Ast;
    SC.CodeCacheCapacity = C.CodeCacheCapacity;
    SC.Cost = F->Cost.get();
    auto S = std::make_unique<Shard>();
    S->Service = std::make_unique<VectorizationService>(SC);
    F->Shards.push_back(std::move(S));
  }
  return F;
}

std::shared_ptr<Daemon::Fleet> Daemon::fleetSnapshot() const {
  std::lock_guard<std::mutex> Lock(FleetMutex);
  return FleetPtr;
}

unsigned Daemon::shardCount() const {
  auto F = fleetSnapshot();
  return F ? static_cast<unsigned>(F->Shards.size()) : 0;
}

std::vector<pid_t> Daemon::workerPids() const {
  std::vector<pid_t> Out;
  auto F = fleetSnapshot();
  if (!F)
    return Out;
  for (const auto &S : F->Shards) {
    if (!S->Sandbox)
      continue;
    std::vector<pid_t> Pids = S->Sandbox->workerPids();
    Out.insert(Out.end(), Pids.begin(), Pids.end());
  }
  return Out;
}

DaemonConfig Daemon::config() const {
  std::lock_guard<std::mutex> Lock(ConfigMutex);
  return Config;
}

Response Daemon::degradedPassthrough(const Request &R,
                                     const std::string &Why,
                                     unsigned ShardIdx) const {
  Response Resp;
  Resp.Status = jobStatusName(JobStatus::Degraded);
  Resp.ErrorClass = errorClassName(ErrorClass::Resource);
  Resp.Shard = ShardIdx;
  Resp.Message = "degraded: " + Why;
  Resp.Body = R.Body; // Byte-exact: the client can always run this.
  return Resp;
}

Response Daemon::handle(const Request &R) {
  Requests.fetch_add(1, std::memory_order_relaxed);
  try {
    switch (R.V) {
    case Verb::Ping: {
      Response Resp;
      Resp.Message = "pong";
      return Resp;
    }
    case Verb::Stats: {
      Response Resp;
      Resp.Body = metricsJson();
      return Resp;
    }
    case Verb::Config: {
      Response Resp;
      std::string Error;
      if (reloadFromText(R.Body, Error)) {
        Resp.Message = "config applied";
        Resp.Body = daemonConfigText(config());
      } else {
        // A config the daemon cannot apply is the client's problem, not a
        // protocol error: report it as a failed job-level outcome.
        Resp.Status = jobStatusName(JobStatus::Failed);
        Resp.ErrorClass = errorClassName(ErrorClass::Input);
        Resp.Message = Error;
      }
      return Resp;
    }
    case Verb::Shutdown: {
      ShutdownFlag.store(true, std::memory_order_relaxed);
      Response Resp;
      Resp.Message = "draining";
      return Resp;
    }
    case Verb::Vec:
      return handleVec(R);
    }
    Response Resp;
    return Resp;
  } catch (const std::exception &E) {
    return degradedPassthrough(R, std::string("internal daemon error: ") +
                                      E.what(),
                               0);
  } catch (...) {
    return degradedPassthrough(R, "internal daemon error", 0);
  }
}

Response Daemon::handleVec(const Request &R) {
  VecRequests.fetch_add(1, std::memory_order_relaxed);

  // Tenant admission first: a rate-limited tenant must not even consume
  // a shard slot.
  if (!Qos.admit(R.Tenant, std::chrono::steady_clock::now())) {
    ShedQos.fetch_add(1, std::memory_order_relaxed);
    return degradedPassthrough(
        R, "tenant '" + R.Tenant + "' over rate limit, load shed", 0);
  }

  JobSpec Spec;
  Spec.Name = R.Name.empty() ? "request" : R.Name;
  Spec.Source = R.Body;
  Spec.Validate = R.Validate;
  unsigned ResolvedDeadline =
      R.DeadlineMs != 0 ? R.DeadlineMs
                        : DeadlineMs.load(std::memory_order_relaxed);
  Spec.Deadline = std::chrono::milliseconds(ResolvedDeadline);

  std::shared_ptr<Fleet> F = fleetSnapshot();
  uint64_t Key = cacheKeyFor(Spec);
  auto ShardIdx = static_cast<unsigned>(Key % F->Shards.size());
  Shard &S = *F->Shards[ShardIdx];

  // Queue-depth gate: beyond the limit the shard is drowning; shedding
  // with a runnable body beats queueing into a deadline miss.
  uint64_t Depth = S.InFlight.fetch_add(1, std::memory_order_relaxed) + 1;
  if (Depth > MaxQueueDepth.load(std::memory_order_relaxed)) {
    S.InFlight.fetch_sub(1, std::memory_order_relaxed);
    S.Shed.fetch_add(1, std::memory_order_relaxed);
    ShedQueue.fetch_add(1, std::memory_order_relaxed);
    return degradedPassthrough(R,
                               "shard " + std::to_string(ShardIdx) +
                                   " queue full, load shed",
                               ShardIdx);
  }

  if (S.Sandbox) {
    // Forward the already-parsed frame to an isolated worker with the
    // deadline resolved; any failure to get a response (crash, watchdog
    // kill, breaker open) degrades — never a protocol error.
    Request Fwd = R;
    Fwd.DeadlineMs = ResolvedDeadline;
    Response Resp;
    std::string Why;
    bool Ok = S.Sandbox->handle(Fwd, Key, Resp, Why);
    S.InFlight.fetch_sub(1, std::memory_order_relaxed);
    if (!Ok)
      return degradedPassthrough(R, Why, ShardIdx);
    Resp.Shard = ShardIdx;
    return Resp;
  }

  JobResult Result;
  try {
    Result = S.Service->submit(std::move(Spec)).get();
  } catch (...) {
    S.InFlight.fetch_sub(1, std::memory_order_relaxed);
    return degradedPassthrough(R, "internal daemon error during submit",
                               ShardIdx);
  }
  S.InFlight.fetch_sub(1, std::memory_order_relaxed);

  Response Resp;
  Resp.Status = jobStatusName(Result.Status);
  Resp.ErrorClass = errorClassName(Result.Class);
  Resp.CacheTier =
      Result.DiskHit ? "disk" : (Result.CacheHit ? "memory" : "none");
  Resp.Attempts = Result.Attempts;
  Resp.Shard = ShardIdx;
  Resp.Message = Result.Message;
  Resp.Body = std::move(Result.VectorizedSource);
  return Resp;
}

bool Daemon::reload(const DaemonConfig &New, std::string &Error) {
  std::lock_guard<std::mutex> Lock(ConfigMutex);

  DaemonConfig Applied = New;
  // The fault plan is a constructor-time test hook, never reloadable.
  Applied.Faults = Config.Faults;

  bool StoreChanged = Applied.StoreDir != Config.StoreDir ||
                      Applied.StoreMaxBytes != Config.StoreMaxBytes;
  bool FleetChanged = StoreChanged || Applied.Shards != Config.Shards ||
                      Applied.WorkersPerShard != Config.WorkersPerShard ||
                      Applied.CacheCapacity != Config.CacheCapacity ||
                      Applied.NestCacheCapacity != Config.NestCacheCapacity ||
                      Applied.MaxQueueDepth != Config.MaxQueueDepth ||
                      // A cost-model change re-fingerprints every cache
                      // key, so the memory tiers must be rebuilt anyway.
                      Applied.CostModel != Config.CostModel ||
                      Applied.CostProfile != Config.CostProfile ||
                      // Isolation and the sandbox knobs are baked into
                      // the worker processes at spawn time.
                      Applied.Isolation != Config.Isolation ||
                      Applied.WorkerMemoryMB != Config.WorkerMemoryMB ||
                      Applied.WorkerCpuSeconds != Config.WorkerCpuSeconds ||
                      Applied.HeartbeatIntervalMs !=
                          Config.HeartbeatIntervalMs ||
                      Applied.HeartbeatTimeoutMs != Config.HeartbeatTimeoutMs ||
                      Applied.QuarantineDir != Config.QuarantineDir ||
                      Applied.SandboxTestHooks != Config.SandboxTestHooks;

  if (FleetChanged) {
    // The old store must outlive the old fleet (its services hold a raw
    // pointer), so it is parked here and destroyed last.
    std::unique_ptr<DiskStore> Retired;
    if (StoreChanged) {
      std::unique_ptr<DiskStore> NewStore;
      if (!Applied.StoreDir.empty()) {
        try {
          NewStore = std::make_unique<DiskStore>(
              DiskStoreConfig{Applied.StoreDir, Applied.StoreMaxBytes});
        } catch (const std::exception &E) {
          Error = E.what();
          return false;
        }
      }
      Retired = std::move(Store);
      Store = std::move(NewStore);
    }

    // Build the replacement fleet against the (possibly new) store, swap
    // it in, and only then wait out the old one: new requests go to the
    // new shards immediately while in-flight jobs finish where they are.
    std::shared_ptr<Fleet> Old;
    try {
      std::shared_ptr<Fleet> Fresh = makeFleet(Applied);
      std::lock_guard<std::mutex> FLock(FleetMutex);
      Old = std::move(FleetPtr);
      FleetPtr = std::move(Fresh);
    } catch (...) {
      if (StoreChanged)
        Store = std::move(Retired);
      Error = "failed to build the new shard fleet";
      return false;
    }
    while (Old.use_count() > 1)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    Old.reset(); // Drains the old services; their jobs all complete.
    // Retired (the old store) dies at this scope's end, after its users.
  }

  // Fast knobs apply last so a failed fleet rebuild leaves everything
  // untouched.
  Qos.setLimits(Applied.TenantRate, Applied.TenantBurst);
  DeadlineMs.store(Applied.DeadlineMs, std::memory_order_relaxed);
  MaxQueueDepth.store(Applied.MaxQueueDepth, std::memory_order_relaxed);

  Config = Applied;
  Reloads.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool Daemon::reloadFromText(const std::string &ConfigText,
                            std::string &Error) {
  DaemonConfig New = config();
  if (!parseDaemonConfig(ConfigText, New, Error))
    return false;
  return reload(New, Error);
}

std::string Daemon::metricsJson() const {
  std::shared_ptr<Fleet> F = fleetSnapshot();
  std::ostringstream Out;
  Out << "{\"daemon\":{\"requests\":"
      << Requests.load(std::memory_order_relaxed)
      << ",\"vec_requests\":" << VecRequests.load(std::memory_order_relaxed)
      << ",\"shed_qos\":" << ShedQos.load(std::memory_order_relaxed)
      << ",\"shed_queue\":" << ShedQueue.load(std::memory_order_relaxed)
      << ",\"reloads\":" << Reloads.load(std::memory_order_relaxed)
      << ",\"isolation\":\"" << config().Isolation << "\""
      // One kernel table per process: the active ISA is daemon-wide, so
      // STATS surfaces it once at the top level (per-shard metrics repeat
      // the shared dispatch counters).
      << ",\"simd_isa\":\"" << simd::levelName(simd::activeLevel()) << "\""
      << ",\"disk_store\":";
  if (Store) {
    Out << "{\"configured\":true,\"hits\":" << Store->hits()
        << ",\"misses\":" << Store->misses() << ",\"puts\":" << Store->puts()
        << ",\"corrupt_dropped\":" << Store->corruptDropped()
        << ",\"entries\":" << Store->entries()
        << ",\"payload_bytes\":" << Store->payloadBytes() << "}";
  } else {
    Out << "{\"configured\":false}";
  }
  Out << ",\"tenants\":[";
  std::vector<TenantStats> Tenants = Qos.snapshot();
  for (size_t I = 0; I != Tenants.size(); ++I) {
    Out << (I ? "," : "") << "{\"tenant\":\"" << Tenants[I].Tenant
        << "\",\"admitted\":" << Tenants[I].Admitted
        << ",\"shed\":" << Tenants[I].Shed << "}";
  }
  Out << "],\"shards\":[";
  if (F) {
    for (size_t I = 0; I != F->Shards.size(); ++I) {
      const Shard &S = *F->Shards[I];
      Out << (I ? "," : "") << "{\"shard\":" << I << ",\"queue_depth\":"
          << S.InFlight.load(std::memory_order_relaxed)
          << ",\"shed_queue\":" << S.Shed.load(std::memory_order_relaxed);
      if (S.Sandbox) {
        std::vector<pid_t> Pids = S.Sandbox->workerPids();
        Out << ",\"worker_pids\":[";
        for (size_t P = 0; P != Pids.size(); ++P)
          Out << (P ? "," : "") << Pids[P];
        Out << "]";
      }
      Out << ",\"metrics\":" << S.metrics().json() << "}";
    }
  }
  Out << "]}}";
  return Out.str();
}
