% fuzz-finding: kind=mismatch status=fixed
% bucket: mismatch:missing:t
% family: mutate:jitter-num,dup-stmt
% Zero-trip nest removal deleted a level-1 statement together with the
% provably-empty inner loop; 't' vanished from the workspace.
m = 1;
n = 1;
%! m(1) n(1) t(1)
for i=1:m
  t = 0;
  for j=3:n
  end
end
