% fuzz-finding: kind=mismatch status=fixed
% bucket: mismatch:var:s
% family: generate:reduction
% sum() reassociates the floating-point accumulation; byte-exact
% workspace comparison flagged 1-ulp differences as divergence.
n = 6;
v = rand(1,n);
s = 0;
%! v(1,*) s(1) n(1)
for i=1:n
  s = s+v(i);
end
