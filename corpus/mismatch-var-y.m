% fuzz-finding: kind=mismatch status=fixed
% bucket: mismatch:var:y
% family: mutate:splice,dup-stmt,splice
% Strong-SIV refined the carried direction in index-value space, so for
% a negative-step loop the flow dependence from x(i)=1 to y=x(i+1) was
% oriented backwards and loop distribution emitted the reading loop
% before the vectorized write; y then observed the stale rand values.
n=5;
x=rand(1,11);
for i=n:-1:1
  x(i)=1;
  y=x(i+1);
end
