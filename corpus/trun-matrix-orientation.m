% fuzz-finding: kind=transformed-run-error status=fixed
% bucket: trun:matrix dimensions must agree (#x# vs #x#)
% family: mutate:jitter-ann,splice,jitter-num
% Table 1 gave M(e1) the subscript's shape whenever the base was
% declared (*,*), but '*' admits extent 1: here x is a runtime column
% vector, so the slice x(1:n) is column-oriented and the rewritten
% z(1:n)=x(1:n).*y(1:n) stored a 6x1 into a 1x6 target. Vector slices
% of matrix-shaped bases now stay sequential.
%! x(*,*) z(1,*)
n=6;
x=rand(n,1);
y=rand(n,1);
for i=1:n
  z(i)=x(i).*y(i);
end
x=rand(2,n);
