% fuzz-finding: kind=mismatch status=fixed
% bucket: mismatch:var:u
% family: mutate:splice-stmt
% The interpreter leaves a loop's index variable holding its final value;
% vectorizing the nest (and normalizing its indices) lost that value for
% the later read 'u = i'.
n = 3;
x = rand(1,n);
z = zeros(1,n);
%! x(1,*) z(1,*) n(1) u(1)
for i=1:n
  z(i) = x(i);
end
u = i;
