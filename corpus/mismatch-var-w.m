% fuzz-finding: kind=mismatch status=fixed
% bucket: mismatch:var:w
% family: generate:pointwise
% Growing an empty 0x1 variable by one whole-slice assignment disagreed
% with growing it element-at-a-time (the orientation flipped).
v = rand(1,3);
w = zeros(0,1);
%! v(1,*) w(1,*)
for i=1:3
  w(i) = v(i);
end
