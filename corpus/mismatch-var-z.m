% fuzz-finding: kind=mismatch status=fixed
% bucket: mismatch:var:z
% family: generate:compound
% Hoisting rand() out of the loop changed how many values the
% deterministic stream yields and which element receives which draw.
n = 2;
z = zeros(1,n);
%! z(1,*) n(1) s(1)
for i=1:n
  z(i) = rand(1,1);
end
s = z(1)+z(2);
