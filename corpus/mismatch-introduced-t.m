% fuzz-finding: kind=mismatch status=fixed
% bucket: mismatch:introduced:t
% family: mutate:jitter-annotation
% A whole-variable write was hoisted out of a loop whose bound is only
% known at runtime; with k(1)=0 the original never defines 't' but the
% transformed program did.
k = zeros(1,2);
u = 7;
%! k(1,*) u(1) t(1)
for i=1:k(1)
  t = u*2;
end
