% fuzz-finding: kind=transformed-run-error status=fixed
% bucket: trun:index # out of bounds
% family: mutate:perm-loops
% The emitted slice assignment evaluated B's out-of-range subscript on a
% non-empty axis eagerly, where the original's zero-trip inner loop ran
% nothing at all.
m = 1;
B = 5;
A = zeros(1,2);
%! m(1) B(1) A(1,*)
for i=1:m
  for j=2:1
    A(i,j) = B(j,i);
  end
end
